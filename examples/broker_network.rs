//! A 31-broker overlay under three covering policies: flooding, exact
//! covering and approximate covering. Shows the routing-table and
//! subscription-traffic savings while verifying deliveries stay identical.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example broker_network
//! ```

use acd::prelude::*;
use acd_workload::EventWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_subscriptions = 2_000;
    let n_events = 200;

    let config = Scenario::SensorNetwork.workload_config(7);
    let mut sub_workload = SubscriptionWorkload::new(&config)?;
    let schema = sub_workload.schema().clone();
    let subscriptions = sub_workload.take(n_subscriptions);
    let mut event_workload = EventWorkload::with_schema(&config, &schema)?;
    let events = event_workload.take(n_events);

    let topology = Topology::balanced_tree(2, 4)?; // 31 brokers
    println!(
        "sensor-network scenario: {} brokers, {} subscriptions, {} events",
        topology.brokers(),
        n_subscriptions,
        n_events
    );
    println!(
        "{:<22} {:>10} {:>12} {:>16} {:>12} {:>12}",
        "policy", "sub msgs", "suppressed", "routing entries", "event msgs", "deliveries"
    );

    let mut reference: Option<u64> = None;
    for policy in [
        CoveringPolicy::None,
        CoveringPolicy::ExactSfc,
        CoveringPolicy::Approximate { epsilon: 0.05 },
    ] {
        let net = BrokerConfig::new(topology.clone(), &schema)
            .policy(policy)
            .build()?;
        for (i, s) in subscriptions.iter().enumerate() {
            net.subscribe((i * 5) % topology.brokers(), i as u64, s)?;
        }
        for (i, e) in events.iter().enumerate() {
            net.publish((i * 11) % topology.brokers(), e)?;
        }
        let m = net.metrics();
        match reference {
            None => reference = Some(m.deliveries),
            Some(expected) => assert_eq!(
                m.deliveries, expected,
                "covering must never change deliveries"
            ),
        }
        println!(
            "{:<22} {:>10} {:>12} {:>16} {:>12} {:>12}",
            policy.label(),
            m.subscription_messages,
            m.subscriptions_suppressed,
            m.routing_table_entries,
            m.event_messages,
            m.deliveries
        );
    }
    println!("\nall policies delivered exactly the same events — covering is a safe optimization");
    Ok(())
}
