//! A churn-heavy broker deployment: the `Scenario::Churn` mixed stream of
//! subscribes, unsubscribes and publishes runs through a broker overlay
//! whose links use the sharded covering index, and the covering-off
//! baseline runs alongside for comparison.
//!
//! ```text
//! cargo run --example churn_network --release
//! ```

use acd::prelude::*;
use acd_workload::{ChurnOp, ChurnWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ops = 3_000usize;
    let config = Scenario::Churn.churn_config(42);
    println!(
        "churn mix: subscribe {}, unsubscribe {}, publish {} (warmup {})",
        config.subscribe_weight,
        config.unsubscribe_weight,
        config.publish_weight,
        config.warmup_subscriptions
    );

    for policy in [
        CoveringPolicy::None,
        CoveringPolicy::ExactSfc,
        CoveringPolicy::ShardedSfc { shards: 4 },
    ] {
        let mut churn = ChurnWorkload::new(&config)?;
        let schema = churn.schema().clone();
        let topology = Topology::balanced_tree(2, 3)?;
        let brokers = topology.brokers();
        let net = BrokerConfig::new(topology, &schema)
            .policy(policy)
            .build()?;

        let mut deliveries = 0u64;
        for (step, op) in churn.take(ops).into_iter().enumerate() {
            match op {
                ChurnOp::Subscribe(sub) => {
                    let broker = sub.id() as usize % brokers;
                    net.subscribe(broker, 1000 + sub.id(), &sub)?;
                }
                ChurnOp::Unsubscribe(id) => {
                    net.unsubscribe(id as usize % brokers, id)?;
                }
                ChurnOp::Publish(event) => {
                    deliveries += net.publish(step % brokers, &event)?.len() as u64;
                }
            }
        }
        let m = net.metrics();
        println!(
            "{:24} sub-msgs {:>6}  suppressed {:>6}  unsub-msgs {:>6}  \
             routing entries {:>5}  deliveries {deliveries:>6}",
            policy.label(),
            m.subscription_messages,
            m.subscriptions_suppressed,
            m.unsubscription_messages,
            m.routing_table_entries,
        );
    }
    println!(
        "\nDeliveries are identical under every policy; covering policies cut\n\
         subscription traffic and routing state, and unsubscription retracts\n\
         covers while re-advertising whatever they were masking."
    );
    Ok(())
}
