//! Visualizes how the Z-order and Hilbert curves decompose 2-D query regions
//! into standard cubes and runs — an ASCII rendition of the paper's Figures 1
//! and 2.
//!
//! Run with:
//!
//! ```text
//! cargo run --example sfc_explorer
//! ```

use acd::sfc::{
    decompose::decompose_rect, runs::runs_of_cubes, CurveKind, Rect, SpaceFillingCurve, Universe,
};

/// Renders a small universe, labelling each cell with the index of the run
/// (within the region's decomposition) that contains it.
fn render(curve: &dyn SpaceFillingCurve, universe: &Universe, rect: &Rect) -> String {
    let cubes = decompose_rect(universe, rect).expect("region fits the universe");
    let runs = runs_of_cubes(curve, &cubes).expect("cubes belong to the universe");
    let side = universe.side();
    let mut grid = vec![vec!['.'; side as usize]; side as usize];
    for x in 0..side {
        for y in 0..side {
            if !rect.contains_coords(&[x, y]) {
                continue;
            }
            let key = curve
                .key_of_point(&acd::sfc::Point::new(vec![x, y]).unwrap())
                .unwrap();
            let run_index = runs
                .iter()
                .position(|r| r.range().contains(&key))
                .expect("every cell of the region lies in some run");
            grid[y as usize][x as usize] =
                char::from_digit((run_index % 36) as u32, 36).unwrap_or('#');
        }
    }
    let mut out = String::new();
    for row in grid.iter().rev() {
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!(
        "{}: {} cubes merged into {} runs\n",
        curve.name(),
        cubes.len(),
        runs.len()
    ));
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let universe = Universe::new(2, 4)?; // a 16x16 toy universe
    let regions = [
        (
            "6x3 rectangle straddling the midline",
            Rect::new(vec![5, 6], vec![10, 8])?,
        ),
        (
            "aligned 8x8 extremal square",
            Rect::new(vec![8, 8], vec![15, 15])?,
        ),
        (
            "misaligned 9x9 extremal square",
            Rect::new(vec![7, 7], vec![15, 15])?,
        ),
    ];

    for (label, rect) in &regions {
        println!("=== {label} ===");
        for kind in [CurveKind::Z, CurveKind::Hilbert] {
            let curve = kind.build(universe.clone());
            println!("{}", render(curve.as_ref(), &universe, rect));
        }
    }
    println!("cells are labelled by the run that contains them ('.' = outside the region)");
    Ok(())
}
