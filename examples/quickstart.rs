//! Quickstart: build a covering index, insert subscriptions, and see which
//! arriving subscriptions would not need to be propagated.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use acd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small stock-feed schema: messages carry a traded volume and a price.
    let schema = Schema::builder()
        .attribute("volume", 0.0, 10_000.0)
        .attribute("price", 0.0, 500.0)
        .bits_per_attribute(10)
        .build()?;

    // The router keeps an approximate covering index: every query searches at
    // least 95% (by volume) of the region where covering subscriptions live.
    let mut index = SfcCoveringIndex::approximate(&schema, ApproxConfig::with_epsilon(0.05)?)?;

    // Existing subscriptions at the router.
    let existing = vec![
        SubscriptionBuilder::new(&schema)
            .at_least("volume", 500.0)
            .at_most("price", 95.0)
            .build(1)?,
        SubscriptionBuilder::new(&schema)
            .range("volume", 0.0, 2_000.0)
            .range("price", 100.0, 300.0)
            .build(2)?,
    ];
    for s in &existing {
        index.insert(s)?;
        println!("registered  {s}");
    }

    // New subscriptions arrive; covered ones need not be forwarded upstream.
    let arrivals = vec![
        SubscriptionBuilder::new(&schema)
            .range("volume", 1_000.0, 2_000.0)
            .range("price", 50.0, 90.0)
            .build(10)?,
        SubscriptionBuilder::new(&schema)
            .range("volume", 3_000.0, 4_000.0)
            .range("price", 200.0, 400.0)
            .build(11)?,
        SubscriptionBuilder::new(&schema)
            .range("volume", 500.0, 1_500.0)
            .range("price", 120.0, 250.0)
            .build(12)?,
    ];

    for arrival in &arrivals {
        let outcome = index.find_covering(arrival)?;
        match outcome.covering {
            Some(id) => println!(
                "covered     {arrival}\n            -> already covered by subscription {id} \
                 ({} runs probed, {:.1}% of the region searched)",
                outcome.stats.runs_probed,
                100.0 * outcome.stats.volume_fraction_searched
            ),
            None => {
                println!(
                    "forwarding  {arrival}\n            -> no covering subscription found \
                     ({} runs probed, {:.1}% of the region searched)",
                    outcome.stats.runs_probed,
                    100.0 * outcome.stats.volume_fraction_searched
                );
                index.insert(arrival)?;
            }
        }
    }

    // Matching still works as usual.
    let event = Event::new(&schema, vec![1_000.0, 88.0])?;
    let matching: Vec<u64> = existing
        .iter()
        .filter(|s| s.matches(&event))
        .map(|s| s.id())
        .collect();
    println!("event {event} matches subscriptions {matching:?}");
    Ok(())
}
