//! A single stock-ticker router under a skewed (Zipf) subscription
//! population: compares the covering detection cost and recall of the
//! approximate SFC index against the exact linear scan.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example stock_ticker
//! ```

use std::time::Instant;

use acd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_existing = 10_000;
    let n_arrivals = 500;

    // The stock-ticker scenario: interest is heavily skewed toward a few hot
    // symbols (Zipf-distributed centers over symbol rank, volume and price).
    let config = Scenario::StockTicker.workload_config(42);
    let mut workload = SubscriptionWorkload::new(&config)?;
    let schema = workload.schema().clone();
    let existing = workload.take(n_existing);
    let arrivals = workload.take(n_arrivals);

    // Exact baseline: scan every stored subscription.
    let mut linear = LinearScanIndex::new(&schema);
    // The paper's index: 0.05-approximate dominance search on the Z curve.
    let mut approx = SfcCoveringIndex::approximate(&schema, ApproxConfig::with_epsilon(0.05)?)?;

    for s in &existing {
        linear.insert(s)?;
        approx.insert(s)?;
    }

    let start = Instant::now();
    let truth: Vec<bool> = arrivals
        .iter()
        .map(|a| linear.find_covering(a).unwrap().is_covered())
        .collect();
    let linear_time = start.elapsed();

    let start = Instant::now();
    let mut detected = 0usize;
    let mut missed = 0usize;
    for (arrival, &covered) in arrivals.iter().zip(&truth) {
        let outcome = approx.find_covering(arrival)?;
        if outcome.is_covered() {
            assert!(
                covered,
                "the approximate index never reports false positives"
            );
            detected += 1;
        } else if covered {
            missed += 1;
        }
    }
    let approx_time = start.elapsed();

    let truly_covered = truth.iter().filter(|&&c| c).count();
    println!("stock-ticker router, {n_existing} existing subscriptions, {n_arrivals} arrivals");
    println!(
        "  truly covered arrivals      : {truly_covered} ({:.1}%)",
        100.0 * truly_covered as f64 / n_arrivals as f64
    );
    println!(
        "  linear scan                 : {:>8.1} ms total, {:.1} us/query",
        linear_time.as_secs_f64() * 1e3,
        linear_time.as_micros() as f64 / n_arrivals as f64
    );
    println!(
        "  sfc approximate (eps = 0.05): {:>8.1} ms total, {:.1} us/query",
        approx_time.as_secs_f64() * 1e3,
        approx_time.as_micros() as f64 / n_arrivals as f64
    );
    println!(
        "  detected / missed           : {detected} / {missed} (recall {:.1}%)",
        if truly_covered == 0 {
            100.0
        } else {
            100.0 * detected as f64 / truly_covered as f64
        }
    );
    println!(
        "  mean runs probed per query  : {:.1}",
        approx.stats().mean_runs_per_query()
    );
    Ok(())
}
