//! Sweeps the approximation parameter ε on a fixed router state and prints
//! the cost/recall trade-off — the knob the paper introduces.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example approximate_tradeoff
//! ```

use acd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_existing = 8_000;
    let n_arrivals = 400;

    let config = WorkloadConfig::builder()
        .attributes(2)
        .bits_per_attribute(12)
        .seed(9)
        .build()?;
    let mut workload = SubscriptionWorkload::new(&config)?;
    let schema = workload.schema().clone();
    let existing = workload.take(n_existing);
    let arrivals = workload.take(n_arrivals);

    // Ground truth with the exact linear scan.
    let mut exact = LinearScanIndex::new(&schema);
    for s in &existing {
        exact.insert(s)?;
    }
    let truth: Vec<bool> = arrivals
        .iter()
        .map(|a| exact.find_covering(a).unwrap().is_covered())
        .collect();
    let truly_covered = truth.iter().filter(|&&c| c).count().max(1);

    println!(
        "{} existing subscriptions, {} arrivals, {} of them covered",
        n_existing,
        n_arrivals,
        truth.iter().filter(|&&c| c).count()
    );
    println!(
        "{:>8} {:>16} {:>14} {:>18}",
        "epsilon", "mean runs/query", "recall", "volume searched"
    );

    for eps in [0.5, 0.3, 0.1, 0.05, 0.01, 0.001] {
        // The ε trade-off is a property of the paper's eager probe-every-run
        // algorithm, so this sweep pins it explicitly — the default
        // populated-key skip engine is exact at every ε and would print six
        // identical rows.
        let cfg = ApproxConfig::with_epsilon(eps)?.engine(QueryEngine::EagerRuns);
        let mut index = SfcCoveringIndex::approximate(&schema, cfg)?;
        for s in &existing {
            index.insert(s)?;
        }
        let mut detected = 0usize;
        for (arrival, &covered) in arrivals.iter().zip(&truth) {
            if index.find_covering(arrival)?.is_covered() {
                assert!(covered);
                detected += 1;
            }
        }
        let stats = index.stats();
        println!(
            "{:>8} {:>16.1} {:>13.1}% {:>17.1}%",
            eps,
            stats.mean_runs_per_query(),
            100.0 * detected as f64 / truly_covered as f64,
            100.0 * stats.total_volume_fraction / stats.queries as f64
        );
    }
    println!("\nsmaller epsilon searches more volume (more runs) and recovers more covering pairs");
    Ok(())
}
