//! Offline stand-in for the subset of [`serde_json`](https://crates.io/crates/serde_json)
//! this workspace uses.
//!
//! Renders the in-tree `serde` stub's [`Value`] data model to JSON text and
//! parses JSON text back into it, providing [`to_string`] / [`from_str`] with
//! the real crate's signatures. Only what the workspace serializes is
//! supported: finite numbers, strings, booleans, null, arrays and
//! string-keyed objects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes an instance of `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if !n.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            if n.fract() == 0.0 && n.abs() < 1e15 {
                // Keep integral floats round-trippable without an exponent.
                out.push_str(&format!("{n:.1}"));
            } else {
                out.push_str(&n.to_string());
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("a\"b\\c\n".to_string())),
            ("count".to_string(), Value::U64(7)),
            ("offset".to_string(), Value::I64(-3)),
            ("ratio".to_string(), Value::F64(0.25)),
            ("whole".to_string(), Value::F64(2.0)),
            ("flag".to_string(), Value::Bool(true)),
            ("missing".to_string(), Value::Null),
            (
                "items".to_string(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }
}
