//! Offline stand-in for the subset of [`serde`](https://crates.io/crates/serde)
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal self-serialization framework with serde's surface: a
//! [`Serialize`] / [`Deserialize`] trait pair and derive macros for
//! named-field structs and for enums with unit or named-field variants
//! (externally tagged, exactly like serde's default representation).
//!
//! Instead of serde's visitor architecture, both traits speak a single
//! concrete data model, [`Value`], which the in-tree `serde_json` crate
//! renders to and parses from JSON text. This supports everything the
//! workspace serializes (configs, schemas, keys, topologies, metrics) while
//! staying a few hundred lines with no dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (JSON number without sign or fraction).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (fields preserve declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// A numeric view of this value, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }
}

/// Looks up a field in a serialized struct map; missing fields deserialize
/// as [`Value::Null`] (so `Option` fields tolerate omission).
pub fn get_field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::F64(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::F64(n) if n.fract() == 0.0 => Ok(n as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| Error::custom("expected number"))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_smart_ptr {
    ($($ptr:ident),*) => {$(
        impl<T: Serialize + ?Sized> Serialize for $ptr<T> {
            fn to_value(&self) -> Value {
                (**self).to_value()
            }
        }
        impl<T: Deserialize> Deserialize for $ptr<T> {
            fn from_value(v: &Value) -> Result<Self, Error> {
                T::from_value(v).map($ptr::new)
            }
        }
    )*};
}
impl_serde_smart_ptr!(Box, Rc, Arc);

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected tuple"))?;
                let mut it = seq.iter();
                let result = ($(
                    {
                        let _ = $idx;
                        $name::from_value(
                            it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                        )?
                    },
                )+);
                if it.next().is_some() {
                    return Err(Error::custom("tuple too long"));
                }
                Ok(result)
            }
        }
    )+};
}
impl_serde_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
