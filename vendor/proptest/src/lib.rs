//! Offline stand-in for the subset of the [`proptest`](https://crates.io/crates/proptest)
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal property-testing harness with the same surface: the
//! [`proptest!`] macro, [`Strategy`] with [`Strategy::prop_map`], range and
//! tuple strategies, [`any`], [`Just`], `prop::collection::vec`,
//! [`prop_oneof!`], [`prop_assert!`] / [`prop_assert_eq!`] and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike the real proptest there is **no shrinking** and no persistence of
//! failing cases: each test function simply runs `cases` deterministic
//! pseudo-random samples (seeded from the test's name, so failures
//! reproduce across runs). On failure the case's sampled inputs are reported
//! through the normal panic message of the underlying `assert!`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The deterministic RNG handed to strategies by [`proptest!`].
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// A generator for the given test name and case number; the same pair
    /// always produces the same stream.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Returns a uniform index in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of pseudo-random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing a single fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// A uniform choice among boxed alternatives ([`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// A union over the given sampling closures.
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Collection sizes: either exact (`usize`) or sampled from a range.
    pub trait SizeRange {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The `proptest::prelude` equivalent: everything test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };

    /// The `prop::` namespace (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs are unsuitable. Unlike the real
/// proptest, the skipped case still counts toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $({
                let s = $strategy;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::sample(&s, rng))
            }),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..10, 0.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            (n, x) in pair(),
            m in 5u32..=6,
            seed in any::<u64>(),
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(m == 5 || m == 6);
            let _ = seed;
        }

        #[test]
        fn vec_map_and_oneof(
            v in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2).prop_map(|pairs| {
                pairs.into_iter().map(|(a, b)| a.min(b)).collect::<Vec<_>>()
            }),
            w in prop::collection::vec(0usize..40, 0..10),
            pick in prop_oneof![Just(1usize), (2usize..5), Just(9usize)],
        ) {
            prop_assert_eq!(v.len(), 2);
            prop_assert!(w.len() < 10);
            prop_assert!(pick == 1 || (2..5).contains(&pick) || pick == 9);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
