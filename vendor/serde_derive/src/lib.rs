//! Offline stand-in for the `serde_derive` proc macros.
//!
//! Generates impls of the in-tree `serde` crate's [`Serialize`] /
//! [`Deserialize`] traits (which speak the concrete `serde::Value` data
//! model rather than serde's visitor architecture). Supported shapes are
//! exactly what this workspace derives on: non-generic named-field structs
//! and non-generic enums whose variants are unit or named-field. Unit
//! variants serialize as their name string and data variants as externally
//! tagged single-entry maps, matching serde's default representation.
//!
//! The input is parsed directly from the `proc_macro` token stream (no
//! `syn`/`quote`, which are unavailable offline); unsupported shapes produce
//! a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: just its name (types are irrelevant to generation).
type Fields = Vec<String>;

enum Shape {
    /// A named-field struct.
    Struct(Fields),
    /// An enum: each variant is a name plus `None` (unit) or named fields.
    Enum(Vec<(String, Option<Fields>)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Splits a token slice at top-level commas, treating `<...>` angle-bracket
/// nesting as one level (angle brackets are not `proc_macro` groups).
fn split_on_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Removes leading attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`) from a token slice.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#` then the bracketed attribute body.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// Parses `{ field: Type, .. }` group contents into field names.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Fields, String> {
    let mut fields = Vec::new();
    for piece in split_on_commas(tokens) {
        let piece = skip_attrs_and_vis(&piece);
        if piece.is_empty() {
            continue;
        }
        match &piece[0] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => return Err(format!("unsupported field starting with `{other}`")),
        }
    }
    Ok(fields)
}

fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = skip_attrs_and_vis(&tokens);
    let mut it = tokens.iter();
    let kind = loop {
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let id = id.to_string();
                if id == "struct" || id == "enum" {
                    break id;
                }
            }
            Some(_) => {}
            None => return Err("expected `struct` or `enum`".to_string()),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".to_string()),
    };
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "derive on generic type `{name}` is not supported by the vendored serde_derive"
            ))
        }
        _ => {
            return Err(format!(
                "derive on `{name}` requires a braced body (tuple/unit shapes unsupported)"
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();
    if kind == "struct" {
        return Ok(Parsed {
            name,
            shape: Shape::Struct(parse_named_fields(&body)?),
        });
    }
    let mut variants = Vec::new();
    for piece in split_on_commas(&body) {
        let piece = skip_attrs_and_vis(&piece);
        if piece.is_empty() {
            continue;
        }
        let vname = match &piece[0] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unsupported variant starting with `{other}`")),
        };
        let fields = match piece.get(1) {
            None => None,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Some(parse_named_fields(&body)?)
            }
            Some(_) => {
                return Err(format!(
                    "variant `{name}::{vname}` is not unit or named-field; unsupported"
                ))
            }
        };
        variants.push((vname, fields));
    }
    Ok(Parsed {
        name,
        shape: Shape::Enum(variants),
    })
}

/// Derives the in-tree `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    None => format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from({vname:?})),"
                    ),
                    Some(fields) => {
                        let binders = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from({vname:?}), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
    .parse()
    .unwrap()
}

/// Derives the in-tree `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(_entries, {f:?}))?"
                    )
                })
                .collect();
            format!(
                "let _entries = v.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected map for struct {name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, fields)| fields.is_none())
                .map(|(vname, _)| {
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, fields)| fields.as_ref().map(|f| (vname, f)))
                .map(|(vname, fields)| {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::get_field(_fields, {f:?}))?"
                            )
                        })
                        .collect();
                    format!(
                        "{vname:?} => {{ let _fields = _inner.as_map().ok_or_else(|| \
                         ::serde::Error::custom(\"expected map for variant {name}::{vname}\"))?; \
                         ::std::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                        inits.join(", ")
                    )
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(tag) = v.as_str() {{ \
                   return match tag {{ {unit} \
                     _ => ::std::result::Result::Err(::serde::Error::custom(\
                       \"unknown unit variant of {name}\")) }}; }} \
                 let entries = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                   \"expected string or map for enum {name}\"))?; \
                 if entries.len() != 1 {{ \
                   return ::std::result::Result::Err(::serde::Error::custom(\
                     \"expected single-entry map for enum {name}\")); }} \
                 let _inner = &entries[0].1; \
                 match entries[0].0.as_str() {{ {data} \
                   _ => ::std::result::Result::Err(::serde::Error::custom(\
                     \"unknown variant of {name}\")) }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
    .parse()
    .unwrap()
}
