//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation with the same module layout and
//! method names: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`. The generator
//! is xoshiro256++ seeded through SplitMix64 — high-quality, fast and fully
//! deterministic, which is all the workload generators and tests require.
//! It makes no attempt to be statistically identical to the real `StdRng`
//! (ChaCha12); seeds produce different streams than upstream `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core + extension trait: the subset of `rand::Rng` the workspace uses.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Samples one value from the standard distribution for this type.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly ([`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 generator of the real `rand` crate, but the same
    /// name and construction API so call sites compile unchanged.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            // xoshiro forbids the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 10);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5.0f64..=5.0);
            assert!((-5.0..=5.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
