//! Offline stand-in for the subset of the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free harness with the same surface: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It actually measures — each benchmark is
//! warmed up briefly, then timed over an adaptive number of iterations and
//! reported as mean ns/iter on stdout — but it performs no statistical
//! analysis, produces no reports and accepts no command-line filters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as the real criterion provides.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a displayed parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the displayed parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`]; implemented for string types and ids.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    warm_up_time: Duration,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn run<S, I, R, O>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }
        // Measurement: adaptive iteration count within the time budget.
        let mut elapsed = Duration::ZERO;
        let mut iterations = 0u64;
        while elapsed < self.measurement_time {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iterations += 1;
        }
        self.elapsed = elapsed;
        self.iterations = iterations;
    }

    /// Times `routine`, called repeatedly in a loop.
    pub fn iter<R, O>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.run(|| (), |()| routine());
    }

    /// Times `routine` on fresh inputs produced by `setup`; the setup cost
    /// is excluded from the measurement.
    pub fn iter_batched<S, I, R, O>(&mut self, setup: S, routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.run(setup, routine);
    }
}

/// A group of related benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// Sets the sample count; accepted for API compatibility and ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    fn run_one<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measurement_time: self
                .measurement_time
                .min(self.criterion.max_measurement_time),
            warm_up_time: self.warm_up_time.min(self.criterion.max_warm_up_time),
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iterations == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64
        };
        println!(
            "{}/{}: {:.1} ns/iter ({} iterations)",
            self.name, id.id, mean_ns, bencher.iterations
        );
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<ID, F>(&mut self, id: ID, f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.into_benchmark_id(), f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<ID, I, F>(&mut self, id: ID, input: &I, mut f: F) -> &mut Self
    where
        ID: IntoBenchmarkId,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.into_benchmark_id(), |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    max_measurement_time: Duration,
    max_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the stand-in quick: cap per-benchmark budgets well below the
        // real criterion defaults. `CRITERION_STUB_FAST=1` (set by CI and the
        // smoke tests) caps them near zero so `cargo bench` only checks that
        // every benchmark runs.
        let fast = std::env::var_os("CRITERION_STUB_FAST").is_some();
        Criterion {
            max_measurement_time: if fast {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(300)
            },
            max_warm_up_time: if fast {
                Duration::ZERO
            } else {
                Duration::from_millis(50)
            },
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let (mt, wt) = (self.max_measurement_time, self.max_warm_up_time);
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            measurement_time: mt,
            warm_up_time: wt,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name)
            .bench_function(name.to_string(), f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
