//! Workspace-level invariant gate: the whole repository must pass `acd-lint`,
//! and the lint's static lock-rank table must agree with the runtime table
//! compiled into `acd-covering`. Running under `cargo test` means a violation
//! fails the same command CI runs — no separate lint step can drift.

use std::path::PathBuf;

use acd_analysis::{lint_paths, lint_workspace, Config};

/// `CARGO_MANIFEST_DIR` of the root `acd` package is the workspace root.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let report = lint_workspace(&Config::new(workspace_root())).expect("workspace readable");
    assert!(
        report.is_clean(),
        "acd-lint found {} violation(s):\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(|d| d.render())
            .collect::<String>()
    );
    // Guard against a silently-broken walker reporting "clean" because it
    // looked at nothing: the workspace has many sources and one manifest per
    // crate plus the root's.
    assert!(
        report.sources >= 40,
        "walker found {} sources",
        report.sources
    );
    assert!(
        report.manifests >= 7,
        "walker found {} manifests",
        report.manifests
    );
}

/// The broker crate is the wire boundary — it parses untrusted bytes — so it
/// is additionally held to `--strict-indexing`: no bare slice/array indexing,
/// only `get`/`get_mut`, destructuring, or reasoned suppressions. Mirrors the
/// dedicated CI step so a violation also fails plain `cargo test`.
#[test]
fn broker_crate_passes_strict_indexing() {
    let config = Config {
        root: workspace_root(),
        strict_indexing: true,
    };
    let report = lint_paths(&config, &[workspace_root().join("crates/broker/src")])
        .expect("broker sources readable");
    assert!(
        report.is_clean(),
        "acd-lint --strict-indexing found {} violation(s) in crates/broker/src:\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(|d| d.render())
            .collect::<String>()
    );
    assert!(
        report.sources >= 10,
        "walker found {} sources",
        report.sources
    );
}

#[test]
fn static_and_runtime_rank_tables_agree() {
    let runtime = acd_covering::ordered::rank_table();
    let stat = acd_analysis::lints::lock_order::LOCK_CLASSES;
    assert_eq!(
        runtime.len(),
        stat.len(),
        "lock class tables differ in length; update LOCKING.md and both tables together"
    );
    for (&(rank, name), class) in runtime.iter().zip(stat) {
        assert_eq!(
            (rank, name),
            (class.rank, class.name),
            "lock class mismatch between acd_covering::ordered::rank_table() and \
             acd_analysis LOCK_CLASSES; update LOCKING.md and both tables together"
        );
    }
    // Both tables must list classes in acquisition (ascending-rank) order.
    assert!(runtime.windows(2).all(|w| w[0].0 < w[1].0));
}
