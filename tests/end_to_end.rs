//! Cross-crate integration tests: workload generation → covering indexes →
//! broker overlay, exercised through the facade crate's public API.

use acd::prelude::*;
use acd_workload::{ChurnOp, ChurnWorkload, EventWorkload};

#[test]
fn generated_workload_through_all_indexes() {
    // Generate a reproducible population, index it three ways, and check the
    // answers are mutually consistent.
    let config = WorkloadConfig::builder()
        .attributes(2)
        .bits_per_attribute(9)
        .seed(1234)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(500);
    let queries = workload.take(80);

    let mut linear = LinearScanIndex::new(&schema);
    let mut exhaustive = SfcCoveringIndex::exhaustive(&schema).unwrap();
    let mut approximate =
        SfcCoveringIndex::approximate(&schema, ApproxConfig::with_epsilon(0.05).unwrap()).unwrap();
    for s in &population {
        linear.insert(s).unwrap();
        exhaustive.insert(s).unwrap();
        approximate.insert(s).unwrap();
    }
    let mut truly_covered = 0;
    let mut approx_detected = 0;
    for q in &queries {
        let truth = linear.find_covering(q).unwrap();
        let exact = exhaustive.find_covering(q).unwrap();
        let approx = approximate.find_covering(q).unwrap();
        assert_eq!(truth.is_covered(), exact.is_covered());
        if let Some(id) = exact.covering {
            assert!(exhaustive.get(id).unwrap().covers(q));
        }
        if approx.is_covered() {
            assert!(truth.is_covered(), "approximate index false positive");
            approx_detected += 1;
        }
        if truth.is_covered() {
            truly_covered += 1;
        }
    }
    assert!(truly_covered > 0, "workload must contain covering pairs");
    assert!(
        approx_detected as f64 >= truly_covered as f64 * 0.6,
        "approximate index detected only {approx_detected} of {truly_covered}"
    );
}

#[test]
fn broker_overlay_with_scenario_workloads_is_safe_and_saves_traffic() {
    for scenario in Scenario::all() {
        let config = scenario.workload_config(99);
        let mut sub_workload = SubscriptionWorkload::new(&config).unwrap();
        let schema = sub_workload.schema().clone();
        let subscriptions = sub_workload.take(300);
        let mut event_workload = EventWorkload::with_schema(&config, &schema).unwrap();
        let events = event_workload.take(40);
        let topology = Topology::balanced_tree(2, 3).unwrap();

        let run = |policy: CoveringPolicy| {
            let net = BrokerConfig::new(topology.clone(), &schema)
                .policy(policy)
                .build()
                .unwrap();
            for (i, s) in subscriptions.iter().enumerate() {
                net.subscribe(i % topology.brokers(), i as u64, s).unwrap();
            }
            let mut deliveries = Vec::new();
            for (i, e) in events.iter().enumerate() {
                deliveries.push(net.publish((i * 3) % topology.brokers(), e).unwrap());
            }
            (deliveries, net.metrics())
        };

        let (flood_deliveries, flood) = run(CoveringPolicy::None);
        let (approx_deliveries, approx) = run(CoveringPolicy::Approximate { epsilon: 0.05 });
        assert_eq!(
            flood_deliveries, approx_deliveries,
            "scenario {scenario}: covering changed deliveries"
        );
        assert!(
            approx.subscription_messages <= flood.subscription_messages,
            "scenario {scenario}: covering increased subscription traffic"
        );
        assert!(approx.routing_table_entries <= flood.routing_table_entries);
    }
}

#[test]
fn churn_scenario_through_broker_network_matches_naive_oracle() {
    // Run the churn scenario's mixed subscribe/unsubscribe/publish stream
    // through a 3-broker overlay under several covering policies. After
    // every publish, the delivered set must equal the naive oracle's: match
    // the event against every currently-live subscription, no covering, no
    // routing — if retraction or re-advertisement ever corrupted routing
    // state, deliveries would diverge.
    let seed = 20_260_731;
    let brokers = 3usize;
    for policy in [
        CoveringPolicy::None,
        CoveringPolicy::ExactSfc,
        CoveringPolicy::ShardedSfc { shards: 4 },
    ] {
        let config = Scenario::Churn.churn_config(seed);
        let mut churn = ChurnWorkload::new(&config).unwrap();
        let schema = churn.schema().clone();
        let net = BrokerConfig::new(Topology::line(brokers).unwrap(), &schema)
            .policy(policy)
            .build()
            .unwrap();

        // The oracle: every live subscription with its home broker/client.
        let mut live: std::collections::HashMap<u64, (usize, u64, Subscription)> =
            std::collections::HashMap::new();
        let home = |id: u64| (id as usize % brokers, 1000 + id);

        let mut publishes = 0usize;
        let mut unsubscribes = 0usize;
        for (step, op) in churn.take(420).into_iter().enumerate() {
            match op {
                ChurnOp::Subscribe(sub) => {
                    let (broker, client) = home(sub.id());
                    net.subscribe(broker, client, &sub).unwrap();
                    live.insert(sub.id(), (broker, client, sub));
                }
                ChurnOp::Unsubscribe(id) => {
                    let (broker, _) = home(id);
                    net.unsubscribe(broker, id).unwrap();
                    live.remove(&id);
                    unsubscribes += 1;
                }
                ChurnOp::Publish(event) => {
                    let at = step % brokers;
                    let got = net.publish(at, &event).unwrap();
                    let mut want: Vec<(usize, u64)> = live
                        .values()
                        .filter(|(_, _, s)| s.matches(&event))
                        .map(|&(b, c, _)| (b, c))
                        .collect();
                    want.sort_unstable();
                    want.dedup();
                    assert_eq!(
                        got,
                        want,
                        "policy {} step {step}: deliveries diverged from oracle",
                        policy.label()
                    );
                    publishes += 1;
                }
            }
        }
        assert!(publishes > 20, "stream exercised too few publishes");
        assert!(unsubscribes > 20, "stream exercised too few unsubscribes");
        assert_eq!(net.metrics().unsubscriptions, unsubscribes as u64);
        // Routing state stays bounded by the live population: every entry
        // refers to a live subscription on each of the (at most 2) links it
        // crossed.
        assert!(
            net.metrics().routing_table_entries <= (live.len() * (brokers - 1)) as u64,
            "routing tables leak entries under churn ({} > {})",
            net.metrics().routing_table_entries,
            live.len() * (brokers - 1)
        );
    }
}

#[test]
fn removal_keeps_indexes_consistent_end_to_end() {
    let schema = Schema::builder()
        .attribute("x", 0.0, 100.0)
        .attribute("y", 0.0, 100.0)
        .bits_per_attribute(8)
        .build()
        .unwrap();
    let mut index = SfcCoveringIndex::exhaustive(&schema).unwrap();
    let wide = SubscriptionBuilder::new(&schema)
        .range("x", 0.0, 100.0)
        .range("y", 0.0, 100.0)
        .build(1)
        .unwrap();
    let mid = SubscriptionBuilder::new(&schema)
        .range("x", 10.0, 90.0)
        .range("y", 10.0, 90.0)
        .build(2)
        .unwrap();
    let narrow = SubscriptionBuilder::new(&schema)
        .range("x", 40.0, 60.0)
        .range("y", 40.0, 60.0)
        .build(3)
        .unwrap();
    index.insert(&wide).unwrap();
    index.insert(&mid).unwrap();

    // Covered by both; removing the wide one must still find the mid one,
    // removing both must find nothing.
    assert!(index.find_covering(&narrow).unwrap().is_covered());
    index.remove(1).unwrap();
    let outcome = index.find_covering(&narrow).unwrap();
    assert_eq!(outcome.covering, Some(2));
    index.remove(2).unwrap();
    assert!(!index.find_covering(&narrow).unwrap().is_covered());

    // Reverse queries stay consistent too.
    index.insert(&narrow).unwrap();
    let covered = index.find_covered_by(&wide).unwrap();
    assert_eq!(covered, vec![3]);
}

#[test]
fn curves_are_interchangeable_for_correctness() {
    let config = WorkloadConfig::builder()
        .attributes(2)
        .bits_per_attribute(8)
        .seed(555)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(200);
    let queries = workload.take(40);

    let mut indexes: Vec<SfcCoveringIndex> = CurveKind::all()
        .into_iter()
        .map(|kind| {
            SfcCoveringIndex::with_curve(&schema, ApproxConfig::exhaustive(), kind).unwrap()
        })
        .collect();
    for s in &population {
        for idx in indexes.iter_mut() {
            idx.insert(s).unwrap();
        }
    }
    for q in &queries {
        let answers: Vec<bool> = indexes
            .iter_mut()
            .map(|idx| idx.find_covering(q).unwrap().is_covered())
            .collect();
        assert!(
            answers.windows(2).all(|w| w[0] == w[1]),
            "curves disagree on query {}",
            q.id()
        );
    }
}
