//! # acd — approximate covering detection among content-based subscriptions
//!
//! A from-scratch Rust implementation of the system described in
//! *"Approximate Covering Detection among Content-Based Subscriptions Using
//! Space Filling Curves"* (Shen & Tirthapura): content-based
//! publish/subscribe routers can skip propagating a subscription when an
//! already-known subscription *covers* it, and an ε-approximate
//! point-dominance search over a space-filling-curve index detects most such
//! covering relationships at a small fraction of the cost of an exhaustive
//! search.
//!
//! This crate is a facade: it re-exports the workspace's crates under short
//! module names and offers a [`prelude`] with the types most applications
//! need. See the individual crates for the full APIs:
//!
//! * [`sfc`] — space filling curves (Z-order, Hilbert, Gray-code), standard
//!   cubes, greedy decomposition, runs and the sorted key array;
//! * [`subscription`] — schemas, range predicates, subscriptions, events and
//!   the Edelsbrunner–Overmars transform to point dominance;
//! * [`covering`] — the covering-detection indexes (linear baseline,
//!   exhaustive SFC and ε-approximate SFC) and covering policies;
//! * [`broker`] — a Siena-style acyclic broker overlay simulator with
//!   covering-aware subscription propagation;
//! * [`workload`] — reproducible synthetic subscription and event workloads.
//!
//! ## Quick start
//!
//! ```
//! use acd::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Describe the message schema.
//! let schema = Schema::builder()
//!     .attribute("volume", 0.0, 10_000.0)
//!     .attribute("price", 0.0, 500.0)
//!     .bits_per_attribute(10)
//!     .build()?;
//!
//! // 2. Build an approximate covering index (search >= 95% of the region).
//! let mut index = SfcCoveringIndex::approximate(&schema, ApproxConfig::with_epsilon(0.05)?)?;
//!
//! // 3. Register subscriptions; ask whether each newcomer is covered.
//! let wide = SubscriptionBuilder::new(&schema)
//!     .at_least("volume", 500.0)
//!     .at_most("price", 95.0)
//!     .build(1)?;
//! index.insert(&wide)?;
//!
//! let narrow = SubscriptionBuilder::new(&schema)
//!     .range("volume", 1_000.0, 2_000.0)
//!     .range("price", 50.0, 90.0)
//!     .build(2)?;
//! let outcome = index.find_covering(&narrow)?;
//! assert_eq!(outcome.covering, Some(1)); // no need to propagate `narrow`
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use acd_broker as broker;
pub use acd_covering as covering;
pub use acd_sfc as sfc;
pub use acd_subscription as subscription;
pub use acd_workload as workload;

/// The types most applications need, importable with a single `use`.
pub mod prelude {
    pub use acd_broker::{BrokerConfig, BrokerNetwork, Topology};
    pub use acd_covering::{
        ApproxConfig, CoveringIndex, CoveringPolicy, LinearScanIndex, QueryEngine,
        SfcCoveringIndex, ShardedCoveringIndex,
    };
    pub use acd_sfc::{CurveKind, Universe};
    pub use acd_subscription::{Event, RangePredicate, Schema, Subscription, SubscriptionBuilder};
    pub use acd_workload::{
        ChurnConfig, ChurnOp, ChurnWorkload, Scenario, SubscriptionWorkload, WorkloadConfig,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_core_types() {
        use crate::prelude::*;
        let schema = Schema::builder().attribute("x", 0.0, 1.0).build().unwrap();
        let index = SfcCoveringIndex::exhaustive(&schema).unwrap();
        assert_eq!(index.len(), 0);
        assert_eq!(CurveKind::Z.name(), "z-order");
    }
}
