//! Segment files: column-wise encoding of a covering index's flat sorted
//! arrays, split into a thin `.meta` descriptor and a fat `.dat` payload.
//!
//! One segment persists one `SfcCoveringIndex` (one shard of a sharded
//! index): the subscription table plus the *forward* and *mirrored*
//! dominance arrays. Each array section stores three contiguous columns in
//! key order — the packed key mirror, the point coordinates, and the
//! values — exactly the stream [`SfcArray::sorted_cells`] exports and
//! [`SfcArray::from_sorted_packed`] gathers back, so opening a segment
//! skips both the keying pass and the sort that a cold rebuild pays.
//! Keys and coordinates are stored at the minimal byte width their
//! universe needs (e.g. 2-byte coordinates for a 10-bit dimension), which
//! nearly halves typical segments and with them the cold open's read and
//! checksum cost.
//! (Universes wider than 128 bits have no packed mirror; their sections
//! store points and values only and reload through the generic
//! [`SfcArray::from_sorted`] path.)
//!
//! The meta file **pins** the data file: it records the data file's exact
//! length, its checksum, and its entry counts, and both files carry the
//! same generation in their envelope headers. [`SegmentReader::open`]
//! refuses any disagreement as a typed corruption error — a meta from one
//! generation can never read a data file from another.

use std::path::Path;

use acd_sfc::{CurveKind, Point, SfcArray, SpaceFillingCurve};
use acd_subscription::{SubId, Subscription};

use crate::codec::{self, file_kind, Cursor};
use crate::commit::ShardRef;
use crate::error::StorageError;
use crate::Result;

/// Section kinds inside a segment data file.
mod section {
    /// The subscription table: `(id, raw bounds)` rows.
    pub const SUBS: u8 = 1;
    /// The forward dominance array's columns.
    pub const FORWARD: u8 = 2;
    /// The mirrored dominance array's columns.
    pub const MIRRORED: u8 = 3;
}

/// The on-disk tag of a curve family (recorded in commit manifests).
pub fn curve_tag(kind: CurveKind) -> u8 {
    match kind {
        CurveKind::Z => 0,
        CurveKind::Hilbert => 1,
        CurveKind::Gray => 2,
    }
}

/// Decodes a curve tag written by [`curve_tag`], or `None` for a foreign
/// value (which readers surface as corruption).
pub fn curve_from_tag(tag: u8) -> Option<CurveKind> {
    match tag {
        0 => Some(CurveKind::Z),
        1 => Some(CurveKind::Hilbert),
        2 => Some(CurveKind::Gray),
        _ => None,
    }
}

/// What a segment's meta file records about its data file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Commit generation both files were written under.
    pub generation: u64,
    /// Exact byte length of the data file.
    pub data_len: u64,
    /// The data file's footer CRC-32, re-recorded here so the meta pins
    /// one specific data file.
    pub data_crc: u32,
    /// Rows in the subscription table.
    pub sub_count: u64,
    /// Entries in the forward array section.
    pub forward_entries: u64,
    /// Entries in the mirrored array section.
    pub mirrored_entries: u64,
}

/// Builds one segment (a `.meta`/`.dat` pair) in memory and writes it
/// atomically. Sections are appended with the borrowed-export APIs of the
/// index layers and nothing is copied twice: each column is streamed
/// straight into the output buffer.
pub struct SegmentWriter {
    generation: u64,
    data: Vec<u8>,
    sections: u8,
    sub_count: u64,
    forward_entries: u64,
    mirrored_entries: u64,
}

impl SegmentWriter {
    /// Starts a segment for the given commit generation.
    pub fn new(generation: u64) -> Self {
        let mut data = codec::begin_file(file_kind::DATA, generation);
        data.push(0); // section count, patched in `write`
        SegmentWriter {
            generation,
            data,
            sections: 0,
            sub_count: 0,
            forward_entries: 0,
            mirrored_entries: 0,
        }
    }

    /// Opens a section: writes its fixed prefix and returns the position of
    /// the body-length field to patch once the body is complete.
    fn begin_section(&mut self, kind: u8, entries: u64) -> usize {
        self.data.push(kind);
        let len_at = self.data.len();
        self.data.extend_from_slice(&0u64.to_le_bytes());
        self.data.extend_from_slice(&entries.to_le_bytes());
        self.sections += 1;
        len_at
    }

    fn end_section(&mut self, len_at: usize) {
        // The body starts after the 8-byte length and 8-byte entry count.
        let body_len = (self.data.len() - len_at - 16) as u64;
        self.data
            .get_mut(len_at..len_at + 8)
            .expect("begin_section reserved the length field")
            .copy_from_slice(&body_len.to_le_bytes());
    }

    /// Appends the subscription table: one `(id, raw bounds)` row per
    /// subscription, bounds in schema attribute order.
    pub fn subscriptions<'a, I>(&mut self, arity: usize, subs: I)
    where
        I: IntoIterator<Item = &'a Subscription>,
    {
        let len_at = self.begin_section(section::SUBS, 0);
        self.data.extend_from_slice(&(arity as u16).to_le_bytes());
        let mut count = 0u64;
        for sub in subs {
            self.data.extend_from_slice(&sub.id().to_le_bytes());
            for &(lo, hi) in sub.raw_bounds() {
                self.data.extend_from_slice(&lo.to_le_bytes());
                self.data.extend_from_slice(&hi.to_le_bytes());
            }
            count += 1;
        }
        self.sub_count = count;
        // Patch the entry count (it sits right after the body length).
        self.data
            .get_mut(len_at + 8..len_at + 16)
            .expect("begin_section reserved the entry-count field")
            .copy_from_slice(&count.to_le_bytes());
        self.end_section(len_at);
    }

    /// Appends the forward dominance array's columns.
    pub fn forward_array<C: SpaceFillingCurve>(&mut self, array: &SfcArray<SubId, C>) {
        self.forward_entries = array.len() as u64;
        self.array_section(section::FORWARD, array);
    }

    /// Appends the mirrored dominance array's columns.
    pub fn mirrored_array<C: SpaceFillingCurve>(&mut self, array: &SfcArray<SubId, C>) {
        self.mirrored_entries = array.len() as u64;
        self.array_section(section::MIRRORED, array);
    }

    fn array_section<C: SpaceFillingCurve>(&mut self, kind: u8, array: &SfcArray<SubId, C>) {
        let universe = array.curve().universe();
        let dims = universe.dims();
        let bits = universe.key_bits();
        let pack = bits <= 128;
        // Keys and coordinates are stored at their minimal little-endian
        // byte width (derived from the universe, so the decoder recomputes
        // the same widths from the section header). A 6-dim/10-bit
        // dominance universe stores 8-byte keys and 2-byte coordinates
        // instead of 16 and 8 — nearly halving the file, and with it the
        // cold open's read + checksum time.
        let key_width = key_byte_width(bits);
        let coord_width = coord_byte_width(universe.bits_per_dim());
        let len_at = self.begin_section(kind, array.len() as u64);
        self.data.extend_from_slice(&(dims as u16).to_le_bytes());
        self.data
            .extend_from_slice(&universe.bits_per_dim().to_le_bytes());
        self.data.push(pack as u8);
        // Column 1 (packed universes only): the packed key mirror, one key
        // per entry (a duplicate cell repeats its key — the load-side
        // gather re-groups equal neighbours into one bucket).
        if pack {
            for (key, entries) in array.sorted_cells() {
                let packed = key.to_u128().expect("≤128-bit keys fit");
                for _ in entries {
                    self.data
                        .extend_from_slice(&packed.to_le_bytes()[..key_width]);
                }
            }
        }
        // Column 2: point coordinates, row-major.
        for (_, entries) in array.sorted_cells() {
            for entry in entries {
                for &c in entry.point.coords() {
                    self.data.extend_from_slice(&c.to_le_bytes()[..coord_width]);
                }
            }
        }
        // Column 3: values.
        for (_, entries) in array.sorted_cells() {
            for entry in entries {
                self.data.extend_from_slice(&entry.value.to_le_bytes());
            }
        }
        self.end_section(len_at);
    }

    /// Finishes the segment and writes `{stem}.dat` then `{stem}.meta`
    /// into `dir`, both atomically (temp file + rename). Returns the
    /// [`ShardRef`] a commit manifest records for this segment.
    pub fn write(mut self, dir: &Path, stem: &str) -> Result<ShardRef> {
        *self
            .data
            .get_mut(codec::HEADER_LEN)
            .expect("begin_file reserved the section-count byte") = self.sections;
        let data = codec::finish_file(self.data);
        let data_crc = u32::from_le_bytes(
            *data
                .last_chunk::<{ codec::FOOTER_LEN }>()
                .expect("finish_file appends a 4-byte footer"),
        );

        let mut meta = codec::begin_file(file_kind::META, self.generation);
        meta.extend_from_slice(&(data.len() as u64).to_le_bytes());
        meta.extend_from_slice(&data_crc.to_le_bytes());
        meta.extend_from_slice(&self.sub_count.to_le_bytes());
        meta.extend_from_slice(&self.forward_entries.to_le_bytes());
        meta.extend_from_slice(&self.mirrored_entries.to_le_bytes());
        let meta = codec::finish_file(meta);

        codec::write_atomic(&dir.join(format!("{stem}.dat")), &data)?;
        codec::write_atomic(&dir.join(format!("{stem}.meta")), &meta)?;
        Ok(ShardRef {
            stem: stem.to_owned(),
            data_crc,
            entries: self.sub_count,
        })
    }
}

/// One decoded section: kind, the body's range in the data payload, and
/// its entry count.
#[derive(Debug)]
struct Section {
    kind: u8,
    body: std::ops::Range<usize>,
    entries: u64,
}

/// One decoded subscription-table row: the id plus its raw `(low, high)`
/// bounds in schema attribute order.
pub type SubscriptionRow = (SubId, Vec<(f64, f64)>);

/// Reads one segment back: verifies both envelopes, the meta/data pairing
/// (generation, length, checksum), and the section directory up front;
/// the column decoders then hand back validated index structures.
#[derive(Debug)]
pub struct SegmentReader {
    /// The verified meta descriptor.
    pub meta: SegmentMeta,
    data: Vec<u8>,
    sections: Vec<Section>,
    file: String,
}

impl SegmentReader {
    /// Opens `{stem}.meta` + `{stem}.dat` in `dir` and cross-checks them.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if either file cannot be read;
    /// [`StorageError::CorruptSegment`] on any malformation — in either
    /// envelope, in the pairing, or in the section directory.
    pub fn open(dir: &Path, stem: &str) -> Result<Self> {
        let meta_name = format!("{stem}.meta");
        let meta_path = dir.join(&meta_name);
        let meta_bytes = std::fs::read(&meta_path)
            .map_err(|e| StorageError::io(meta_path.display().to_string(), e))?;
        let (meta_gen, meta_payload) =
            codec::open_envelope(&meta_bytes, file_kind::META, &meta_name)?;
        let mut c = Cursor::new(meta_payload, &meta_name);
        let meta = SegmentMeta {
            generation: meta_gen,
            data_len: c.take_u64()?,
            data_crc: c.take_u32()?,
            sub_count: c.take_u64()?,
            forward_entries: c.take_u64()?,
            mirrored_entries: c.take_u64()?,
        };
        c.finish()?;

        let data_name = format!("{stem}.dat");
        let data_path = dir.join(&data_name);
        let data = std::fs::read(&data_path)
            .map_err(|e| StorageError::io(data_path.display().to_string(), e))?;
        let (data_gen, _) = codec::open_envelope(&data, file_kind::DATA, &data_name)?;
        if data_gen != meta.generation {
            return Err(StorageError::corrupt(
                &data_name,
                format!(
                    "data file is generation {data_gen} but its meta file is generation {}",
                    meta.generation
                ),
            ));
        }
        if data.len() as u64 != meta.data_len {
            return Err(StorageError::corrupt(
                &data_name,
                format!(
                    "data file is {} bytes but its meta file pins {}",
                    data.len(),
                    meta.data_len
                ),
            ));
        }
        let footer = u32::from_le_bytes(
            *data
                .last_chunk::<{ codec::FOOTER_LEN }>()
                .expect("envelope check guarantees a footer"),
        );
        if footer != meta.data_crc {
            return Err(StorageError::corrupt(
                &data_name,
                format!(
                    "data checksum 0x{footer:08x} does not match the 0x{:08x} its meta file pins",
                    meta.data_crc
                ),
            ));
        }

        // Walk the section directory once; bodies are bounds-checked here
        // so the column decoders below can slice without re-validating.
        let payload = codec::HEADER_LEN..data.len() - codec::FOOTER_LEN;
        let mut sections = Vec::new();
        {
            let body = data
                .get(payload.clone())
                .expect("envelope check guarantees header and footer room");
            let mut c = Cursor::new(body, &data_name);
            let count = c.take_u8()?;
            for _ in 0..count {
                let kind = c.take_u8()?;
                let body_len = c.take_u64()?;
                let entries = c.take_u64()?;
                let body_len = usize::try_from(body_len).map_err(|_| {
                    StorageError::corrupt(&data_name, "section length exceeds the address space")
                })?;
                let before = c.remaining();
                c.take(body_len)?;
                let start = payload.start + (payload.len() - before);
                sections.push(Section {
                    kind,
                    body: start..start + body_len,
                    entries,
                });
            }
            c.finish()?;
        }
        Ok(SegmentReader {
            meta,
            data,
            sections,
            file: data_name,
        })
    }

    fn section(&self, kind: u8) -> Result<&Section> {
        self.sections
            .iter()
            .find(|s| s.kind == kind)
            .ok_or_else(|| {
                StorageError::corrupt(&self.file, format!("segment has no section of kind {kind}"))
            })
    }

    /// Decodes the subscription table: `(id, raw bounds)` rows in stored
    /// order.
    pub fn subscription_bounds(&self) -> Result<Vec<SubscriptionRow>> {
        let mut rows = Vec::with_capacity(self.meta.sub_count as usize);
        self.for_each_subscription_row(|id, bounds| {
            rows.push((id, bounds.to_vec()));
            Ok(())
        })?;
        Ok(rows)
    }

    /// Streams the subscription table without allocating per row: `f` is
    /// called once per `(id, raw bounds)` row, bounds borrowed from a
    /// scratch buffer reused across rows. This is the cold-open fast path —
    /// a caller reconstructing subscriptions copies the bounds into its own
    /// structure exactly once.
    ///
    /// The first error from `f` aborts the walk and is returned.
    pub fn for_each_subscription_row(
        &self,
        mut f: impl FnMut(SubId, &[(f64, f64)]) -> Result<()>,
    ) -> Result<()> {
        let s = self.section(section::SUBS)?;
        if s.entries != self.meta.sub_count {
            return Err(StorageError::corrupt(
                &self.file,
                format!(
                    "subscription section claims {} rows but the meta file pins {}",
                    s.entries, self.meta.sub_count
                ),
            ));
        }
        let body = self
            .data
            .get(s.body.clone())
            .expect("section bodies were bounds-checked at open");
        let mut c = Cursor::new(body, &self.file);
        let arity = c.take_u16()? as usize;
        let n = usize::try_from(s.entries).map_err(|_| {
            StorageError::corrupt(&self.file, "row count exceeds the address space")
        })?;
        c.check_remaining(n, 8 + arity * 16)?;
        let mut bounds = vec![(0.0f64, 0.0f64); arity];
        for _ in 0..n {
            let id = c.take_u64()?;
            for b in bounds.iter_mut() {
                *b = (c.take_f64()?, c.take_f64()?);
            }
            f(id, &bounds)?;
        }
        c.finish()?;
        Ok(())
    }

    /// Decodes one dominance array section into an [`SfcArray`] ordered by
    /// `curve`, through the no-sort gather path when the universe packs
    /// into 128 bits.
    pub fn array<C: SpaceFillingCurve>(
        &self,
        mirrored: bool,
        curve: C,
    ) -> Result<SfcArray<SubId, C>> {
        let (kind, pinned) = if mirrored {
            (section::MIRRORED, self.meta.mirrored_entries)
        } else {
            (section::FORWARD, self.meta.forward_entries)
        };
        let s = self.section(kind)?;
        if s.entries != pinned {
            return Err(StorageError::corrupt(
                &self.file,
                format!(
                    "array section claims {} entries but the meta file pins {pinned}",
                    s.entries
                ),
            ));
        }
        let n = usize::try_from(s.entries).map_err(|_| {
            StorageError::corrupt(&self.file, "entry count exceeds the address space")
        })?;
        let universe = curve.universe();
        let body = self
            .data
            .get(s.body.clone())
            .expect("section bodies were bounds-checked at open");
        let mut c = Cursor::new(body, &self.file);
        let dims = c.take_u16()? as usize;
        let bits_per_dim = c.take_u32()?;
        let pack = c.take_u8()? != 0;
        if dims != universe.dims() || bits_per_dim != universe.bits_per_dim() {
            return Err(StorageError::corrupt(
                &self.file,
                format!(
                    "array section is over a {dims}-dim/{bits_per_dim}-bit universe but the \
                     index expects {}-dim/{}-bit",
                    universe.dims(),
                    universe.bits_per_dim()
                ),
            ));
        }
        let expect_pack = universe.key_bits() <= 128;
        if pack != expect_pack {
            return Err(StorageError::corrupt(
                &self.file,
                "array section's packed flag disagrees with the universe width",
            ));
        }
        // Widths are recomputed from the (already cross-checked) universe
        // shape, so writer and reader can never disagree on them.
        let key_width = key_byte_width(universe.key_bits());
        let coord_width = coord_byte_width(bits_per_dim);
        let row = dims * coord_width;
        let per_entry = if pack { key_width + row + 8 } else { row + 8 };
        c.check_remaining(n, per_entry)?;

        let built = if pack {
            let keys = c.take(n * key_width)?;
            let coords = c.take(n * row)?;
            let values = c.take(n * 8)?;
            // Rows are decoded lazily off the column slices as
            // `from_sorted_packed` consumes the iterator — the cold-open
            // path never materializes an intermediate entry vector, and
            // `chunks_exact` keeps the per-row slicing bounds-check-free.
            let entries = keys
                .chunks_exact(key_width)
                .zip(coords.chunks_exact(row))
                .zip(values.chunks_exact(8))
                .map(|((key, row_bytes), value)| {
                    (
                        decode_narrow_u128(key),
                        decode_point(row_bytes, dims, coord_width),
                        decode_narrow_u64(value),
                    )
                });
            SfcArray::from_sorted_packed(curve, entries)
        } else {
            let coords = c.take(n * row)?;
            let values = c.take(n * 8)?;
            let entries = coords
                .chunks_exact(row)
                .zip(values.chunks_exact(8))
                .map(|(row_bytes, value)| {
                    (
                        decode_point(row_bytes, dims, coord_width),
                        decode_narrow_u64(value),
                    )
                })
                .collect();
            SfcArray::from_sorted(curve, entries)
        };
        c.finish()?;
        built.map_err(|e| {
            StorageError::corrupt(
                &self.file,
                format!("array section fails index validation: {e}"),
            )
        })
    }
}

/// Bytes needed to store a packed curve key of `key_bits` bits.
fn key_byte_width(key_bits: u32) -> usize {
    (key_bits.div_ceil(8) as usize).max(1)
}

/// Bytes needed to store one coordinate of a `bits_per_dim`-bit dimension.
fn coord_byte_width(bits_per_dim: u32) -> usize {
    (bits_per_dim.div_ceil(8) as usize).max(1)
}

/// Little-endian decode of a `width ≤ 16` byte field into a `u128`.
#[inline]
fn decode_narrow_u128(bytes: &[u8]) -> u128 {
    let mut buf = [0u8; 16];
    let (dst, _) = buf.split_at_mut(bytes.len());
    dst.copy_from_slice(bytes);
    u128::from_le_bytes(buf)
}

/// Little-endian decode of a `width ≤ 8` byte field into a `u64`.
#[inline]
fn decode_narrow_u64(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let (dst, _) = buf.split_at_mut(bytes.len());
    dst.copy_from_slice(bytes);
    u64::from_le_bytes(buf)
}

/// Decodes one row-major coordinate row into a [`Point`] — through the
/// allocation-free inline constructor, since this runs once per stored
/// entry on the cold-open critical path. `bytes` is exactly
/// `dims * coord_width` long (the caller slices it from a bounds-checked
/// column); `Point::build` calls its closure once per dimension in
/// ascending order, so the coordinate chunks stream straight off it.
fn decode_point(bytes: &[u8], dims: usize, coord_width: usize) -> Point {
    debug_assert_eq!(bytes.len(), dims * coord_width);
    let mut coords = bytes.chunks_exact(coord_width).map(decode_narrow_u64);
    Point::build(dims, |_| coords.next().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use acd_sfc::{Universe, ZCurve};

    fn sample_array() -> SfcArray<SubId, ZCurve> {
        let universe = Universe::new(4, 8).unwrap();
        let curve = ZCurve::new(universe);
        let entries: Vec<(Point, SubId)> = (0..200u64)
            .map(|i| {
                let p = Point::new(vec![i % 17, (i * 7) % 31, i % 5, (i * 3) % 29]).unwrap();
                (p, i)
            })
            .collect();
        SfcArray::from_sorted(curve, entries).unwrap()
    }

    #[test]
    fn array_sections_round_trip_without_resorting() {
        let array = sample_array();
        let dir = std::env::temp_dir().join(format!("acd-storage-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::new(1);
        w.forward_array(&array);
        w.mirrored_array(&array);
        let shard = w.write(&dir, "seg-0000000001-000").unwrap();
        assert_eq!(shard.stem, "seg-0000000001-000");

        let r = SegmentReader::open(&dir, "seg-0000000001-000").unwrap();
        assert_eq!(r.meta.generation, 1);
        assert_eq!(r.meta.forward_entries, 200);
        let loaded = r
            .array(false, ZCurve::new(Universe::new(4, 8).unwrap()))
            .unwrap();
        assert_eq!(loaded.len(), array.len());
        assert_eq!(loaded.occupied_cells(), array.occupied_cells());
        let a: Vec<_> = array
            .sorted_cells()
            .map(|(k, e)| (k.clone(), e.to_vec()))
            .collect();
        let b: Vec<_> = loaded
            .sorted_cells()
            .map(|(k, e)| (k.clone(), e.to_vec()))
            .collect();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_pins_its_data_file() {
        let array = sample_array();
        let dir = std::env::temp_dir().join(format!("acd-storage-pin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = SegmentWriter::new(3);
        w.forward_array(&array);
        w.write(&dir, "pin").unwrap();

        // Rewriting the data file under the same meta must be refused,
        // even though the replacement is itself a well-formed data file.
        let mut other = SegmentWriter::new(3);
        other.forward_array(&sample_array());
        other.mirrored_array(&sample_array());
        other.write(&dir, "other").unwrap();
        std::fs::copy(dir.join("other.dat"), dir.join("pin.dat")).unwrap();
        let err = SegmentReader::open(&dir, "pin").unwrap_err();
        assert!(err.is_corrupt(), "swapped data file must be corrupt: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn curve_tags_round_trip_and_reject_foreign_values() {
        for kind in [CurveKind::Z, CurveKind::Hilbert, CurveKind::Gray] {
            assert_eq!(curve_from_tag(curve_tag(kind)), Some(kind));
        }
        assert_eq!(curve_from_tag(9), None);
    }
}
