//! The broker daemon's subscription journal and snapshot.
//!
//! The journal (`journal.acd`) is an **append-only** record log: each
//! accepted subscribe/unsubscribe is encoded as a length-prefixed,
//! CRC-framed record and fsynced (`fdatasync`) before the daemon
//! acknowledges the request, so even an OS crash or power loss can lose
//! at most operations that were never acked — not just a kill -9.
//! On restart the journal is replayed up to its **durable prefix**:
//! replay stops at the first truncated or corrupt record (a torn tail
//! from a crash mid-append is expected, not an error) and the file is
//! truncated back to that prefix so subsequent appends never interleave
//! with garbage. This prefix-tolerance is deliberately looser than the
//! segment codec's all-or-nothing discipline — a journal's tail is the
//! one place where a half-written record is a normal crash artifact.
//!
//! The snapshot (`snapshot.acd`) compacts the journal on graceful
//! shutdown: the live subscription set is written as one
//! checksummed-envelope file (temp + rename, so it is never seen
//! half-written) and the journal is reset. Start-up state is
//! `snapshot ∘ journal`: load the snapshot if present, then replay the
//! journal tail over it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use acd_subscription::SubId;

use crate::codec::{self, file_kind, Cursor};
use crate::error::StorageError;
use crate::Result;

/// One journaled operation. Broker and client identifiers travel as raw
/// `u64`s so the storage layer stays independent of the broker crate.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A subscription was registered (or re-registered) at a broker.
    Subscribe {
        /// Broker the subscription is registered at.
        at: u64,
        /// The owning client.
        client: u64,
        /// Network-unique subscription identifier.
        id: SubId,
        /// Per-attribute `[lo, hi]` ranges in schema attribute order.
        bounds: Vec<(f64, f64)>,
    },
    /// A subscription was retracted.
    Unsubscribe {
        /// Broker the subscription was registered at.
        at: u64,
        /// The identifier that was retracted.
        id: SubId,
    },
}

mod record_kind {
    pub const SUBSCRIBE: u8 = 1;
    pub const UNSUBSCRIBE: u8 = 2;
}

fn encode_record(record: &JournalRecord, out: &mut Vec<u8>) {
    out.clear();
    // Record envelope: payload_len u32 | payload | crc32 over the payload.
    out.extend_from_slice(&[0, 0, 0, 0]);
    match record {
        JournalRecord::Subscribe {
            at,
            client,
            id,
            bounds,
        } => {
            out.push(record_kind::SUBSCRIBE);
            out.extend_from_slice(&at.to_le_bytes());
            out.extend_from_slice(&client.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(bounds.len() as u32).to_le_bytes());
            for (lo, hi) in bounds {
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
        }
        JournalRecord::Unsubscribe { at, id } => {
            out.push(record_kind::UNSUBSCRIBE);
            out.extend_from_slice(&at.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    let payload_len = (out.len() - 4) as u32;
    let (len_field, payload) = out.split_at_mut(4);
    len_field.copy_from_slice(&payload_len.to_le_bytes());
    let crc = codec::crc32(payload);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes the records in `buf`, stopping at the durable prefix. Returns
/// the records and the byte length of the prefix they occupy.
fn decode_records(buf: &[u8], file: &str) -> (Vec<JournalRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(len_bytes) = buf.get(at..at + 4) {
        let len = u32::from_le_bytes(len_bytes.try_into().expect("slice of 4")) as usize;
        let Some(payload) = buf.get(at + 4..at + 4 + len) else {
            break;
        };
        let Some(crc_bytes) = buf.get(at + 4 + len..at + 8 + len) else {
            break;
        };
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("slice of 4"));
        if stored != codec::crc32(payload) {
            break;
        }
        let Ok(record) = decode_payload(payload, file) else {
            break;
        };
        records.push(record);
        at += 8 + len;
    }
    (records, at)
}

fn decode_payload(payload: &[u8], file: &str) -> Result<JournalRecord> {
    let mut c = Cursor::new(payload, file);
    let record = match c.take_u8()? {
        record_kind::SUBSCRIBE => {
            let at = c.take_u64()?;
            let client = c.take_u64()?;
            let id = c.take_u64()?;
            let n = c.take_u32()? as usize;
            c.check_remaining(n, 16)?;
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                bounds.push((c.take_f64()?, c.take_f64()?));
            }
            JournalRecord::Subscribe {
                at,
                client,
                id,
                bounds,
            }
        }
        record_kind::UNSUBSCRIBE => JournalRecord::Unsubscribe {
            at: c.take_u64()?,
            id: c.take_u64()?,
        },
        other => {
            return Err(StorageError::corrupt(
                file,
                format!("unknown journal record kind {other}"),
            ))
        }
    };
    c.finish()?;
    Ok(record)
}

/// The append-only subscription journal.
pub struct SubscriptionJournal {
    file: File,
    path: PathBuf,
    scratch: Vec<u8>,
}

impl std::fmt::Debug for SubscriptionJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriptionJournal")
            .field("path", &self.path)
            .finish()
    }
}

impl SubscriptionJournal {
    /// Opens (creating if absent) the journal at `path` and replays its
    /// durable prefix. A torn or corrupt tail is truncated away — the
    /// returned records are exactly what survives — but a malformed
    /// *header* means the file is not a journal at all and is a typed
    /// error, never silently clobbered.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on filesystem failure;
    /// [`StorageError::CorruptSegment`] / [`StorageError::UnsupportedVersion`]
    /// if an existing file's header is not a valid journal header.
    pub fn open(path: &Path) -> Result<(Self, Vec<JournalRecord>)> {
        let display = path.display().to_string();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StorageError::io(&display, e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| StorageError::io(&display, e))?;

        let records = if bytes.is_empty() {
            let header = codec::begin_file(file_kind::JOURNAL, 0);
            file.write_all(&header)
                .and_then(|()| file.sync_data())
                .map_err(|e| StorageError::io(&display, e))?;
            Vec::new()
        } else {
            if bytes.len() < codec::HEADER_LEN {
                return Err(StorageError::corrupt(
                    &display,
                    "journal shorter than its header",
                ));
            }
            codec::check_index_header(
                // The journal has no footer; validate the header fields
                // against a synthetic minimal envelope length.
                &pad_for_header_check(&bytes),
                file_kind::JOURNAL,
                &display,
            )?;
            let body = bytes.get(codec::HEADER_LEN..).unwrap_or_default();
            let (replayed, durable) = decode_records(body, &display);
            let durable_end = (codec::HEADER_LEN + durable) as u64;
            if durable_end < bytes.len() as u64 {
                file.set_len(durable_end)
                    .map_err(|e| StorageError::io(&display, e))?;
            }
            file.seek(SeekFrom::Start(durable_end))
                .map_err(|e| StorageError::io(&display, e))?;
            replayed
        };
        Ok((
            SubscriptionJournal {
                file,
                path: path.to_owned(),
                scratch: Vec::new(),
            },
            records,
        ))
    }

    /// Appends one record and syncs it to stable storage (`fdatasync`)
    /// before returning, so an acknowledgement sent after this call
    /// survives not just the death of the process but an OS crash or
    /// power loss.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the write or sync fails.
    pub fn append(&mut self, record: &JournalRecord) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        encode_record(record, &mut scratch);
        let outcome = self
            .file
            .write_all(&scratch)
            .and_then(|()| self.file.sync_data());
        self.scratch = scratch;
        outcome.map_err(|e| StorageError::io(self.path.display().to_string(), e))
    }

    /// Resets the journal to empty (header only). Called after the live
    /// set has been compacted into a snapshot.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the truncation fails.
    pub fn reset(&mut self) -> Result<()> {
        let display = self.path.display().to_string();
        self.file
            .set_len(codec::HEADER_LEN as u64)
            .and_then(|_| self.file.sync_all())
            .and_then(|_| self.file.seek(SeekFrom::Start(codec::HEADER_LEN as u64)))
            .map(|_| ())
            .map_err(|e| StorageError::io(&display, e))
    }
}

/// `check_index_header` insists on room for a footer because every other
/// storage file has one; the journal does not. Hand it the real header
/// padded to the minimum envelope length.
fn pad_for_header_check(bytes: &[u8]) -> Vec<u8> {
    let (head, _) = bytes.split_at(codec::HEADER_LEN.min(bytes.len()));
    let mut padded = head.to_vec();
    padded.resize(codec::HEADER_LEN + codec::FOOTER_LEN, 0);
    padded
}

/// Atomically writes the live subscription set as a snapshot file.
///
/// # Errors
///
/// [`StorageError::Io`] if the write fails.
pub fn write_snapshot(path: &Path, records: &[JournalRecord]) -> Result<()> {
    let mut out = codec::begin_file(file_kind::SNAPSHOT, 0);
    out.extend_from_slice(&(records.len() as u64).to_le_bytes());
    let mut scratch = Vec::new();
    for record in records {
        encode_record(record, &mut scratch);
        out.extend_from_slice(&scratch);
    }
    let out = codec::finish_file(out);
    codec::write_atomic(path, &out)
}

/// Reads a snapshot file back; `Ok(None)` if it does not exist.
///
/// Unlike the journal, a snapshot is written atomically, so any
/// malformation inside it is real corruption and surfaces as a typed
/// error — never as a silently shortened subscription set.
///
/// # Errors
///
/// [`StorageError::Io`] / [`StorageError::CorruptSegment`] as above.
pub fn read_snapshot(path: &Path) -> Result<Option<Vec<JournalRecord>>> {
    let display = path.display().to_string();
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::io(&display, e)),
    };
    let (_, payload) = codec::open_envelope(&bytes, file_kind::SNAPSHOT, &display)?;
    let mut c = Cursor::new(payload, &display);
    let count = c.take_u64()?;
    let count = usize::try_from(count)
        .map_err(|_| StorageError::corrupt(&display, "record count exceeds the address space"))?;
    c.check_remaining(count, 8 + 1)?;
    let rest = c.take(c.remaining())?;
    let (records, used) = decode_records(rest, &display);
    if records.len() != count || used != rest.len() {
        return Err(StorageError::corrupt(
            &display,
            format!(
                "snapshot claims {count} records but {} decode cleanly",
                records.len()
            ),
        ));
    }
    Ok(Some(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Subscribe {
                at: 0,
                client: 7,
                id: 100,
                bounds: vec![(0.0, 1.0), (-3.5, 2.25)],
            },
            JournalRecord::Unsubscribe { at: 0, id: 100 },
            JournalRecord::Subscribe {
                at: 2,
                client: 8,
                id: 101,
                bounds: vec![(10.0, 20.0), (30.0, 40.0)],
            },
        ]
    }

    #[test]
    fn journal_replays_what_was_appended() {
        let path = std::env::temp_dir().join(format!("acd-journal-{}.acd", std::process::id()));
        std::fs::remove_file(&path).ok();
        let (mut journal, replayed) = SubscriptionJournal::open(&path).unwrap();
        assert!(replayed.is_empty());
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        let (_, replayed) = SubscriptionJournal::open(&path).unwrap();
        assert_eq!(replayed, sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_durable_prefix() {
        let path =
            std::env::temp_dir().join(format!("acd-journal-torn-{}.acd", std::process::id()));
        std::fs::remove_file(&path).ok();
        let (mut journal, _) = SubscriptionJournal::open(&path).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        drop(journal);
        // Simulate a crash mid-append: chop bytes off the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut journal, replayed) = SubscriptionJournal::open(&path).unwrap();
        assert_eq!(replayed, sample_records()[..2].to_vec());
        // The truncated journal stays appendable and consistent.
        journal
            .append(&JournalRecord::Unsubscribe { at: 1, id: 55 })
            .unwrap();
        drop(journal);
        let (_, replayed) = SubscriptionJournal::open(&path).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[2], JournalRecord::Unsubscribe { at: 1, id: 55 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_round_trips_and_rejects_corruption() {
        let path = std::env::temp_dir().join(format!("acd-snap-{}.acd", std::process::id()));
        std::fs::remove_file(&path).ok();
        assert!(read_snapshot(&path).unwrap().is_none());
        write_snapshot(&path, &sample_records()).unwrap();
        assert_eq!(read_snapshot(&path).unwrap().unwrap(), sample_records());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path).unwrap_err().is_corrupt());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_the_journal() {
        let path =
            std::env::temp_dir().join(format!("acd-journal-reset-{}.acd", std::process::id()));
        std::fs::remove_file(&path).ok();
        let (mut journal, _) = SubscriptionJournal::open(&path).unwrap();
        journal
            .append(&JournalRecord::Unsubscribe { at: 0, id: 1 })
            .unwrap();
        journal.reset().unwrap();
        journal
            .append(&JournalRecord::Unsubscribe { at: 0, id: 2 })
            .unwrap();
        drop(journal);
        let (_, replayed) = SubscriptionJournal::open(&path).unwrap();
        assert_eq!(replayed, vec![JournalRecord::Unsubscribe { at: 0, id: 2 }]);
        std::fs::remove_file(&path).ok();
    }
}
