//! Generation commit files: the atomicity point of a multi-file save.
//!
//! A save writes its segment pairs first, under names no live commit
//! references, then writes `commit-<generation>.acd` — a manifest naming
//! every segment of the new generation (with each data file's checksum
//! re-pinned) plus the index-level configuration (schema, query config,
//! curve, shard boundaries). The commit file itself lands via temp +
//! rename, so it either exists whole or not at all:
//!
//! * a crash before the commit leaves stray `seg-*` files and the previous
//!   commit intact — readers never see the half-written generation;
//! * a crash after the commit is a completed save.
//!
//! Readers pick the **highest-numbered** commit file. Old generations'
//! files are deleted only after a newer commit has landed ([`prune`]), so
//! there is always one fully-readable generation on disk.

use std::path::{Path, PathBuf};

use crate::codec::{self, file_kind, Cursor};
use crate::error::StorageError;
use crate::Result;

/// One segment referenced by a commit manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRef {
    /// File stem of the segment pair (`{stem}.meta` / `{stem}.dat`).
    pub stem: String,
    /// The data file's footer CRC-32, re-pinned by the commit.
    pub data_crc: u32,
    /// Subscriptions stored in the segment.
    pub entries: u64,
}

/// The decoded contents of a commit file: everything needed to reopen an
/// index without re-deriving any of it.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitManifest {
    /// The generation this commit completes.
    pub generation: u64,
    /// Curve family tag ([`crate::curve_tag`]).
    pub curve_tag: u8,
    /// The schema, JSON-serialized (schemas are structural and
    /// self-describing; everything on the bulk path stays binary).
    pub schema_json: String,
    /// The query configuration, JSON-serialized.
    pub config_json: String,
    /// Shard key-range boundaries (empty for an unsharded index).
    pub starts: Vec<u64>,
    /// The segments of this generation, in shard order.
    pub shards: Vec<ShardRef>,
}

/// Canonical name of a generation's commit file.
pub fn commit_file_name(generation: u64) -> String {
    format!("commit-{generation:010}.acd")
}

/// Canonical file stem of one shard's segment pair within a generation.
pub fn segment_stem(generation: u64, shard: usize) -> String {
    format!("seg-{generation:010}-{shard:03}")
}

/// Encodes and atomically writes `manifest` as its generation's commit
/// file.
///
/// # Errors
///
/// [`StorageError::Io`] if the write fails.
pub fn write_commit(dir: &Path, manifest: &CommitManifest) -> Result<()> {
    let mut out = codec::begin_file(file_kind::COMMIT, manifest.generation);
    out.push(manifest.curve_tag);
    codec::put_bytes(&mut out, manifest.schema_json.as_bytes());
    codec::put_bytes(&mut out, manifest.config_json.as_bytes());
    out.extend_from_slice(&(manifest.starts.len() as u32).to_le_bytes());
    for &s in &manifest.starts {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out.extend_from_slice(&(manifest.shards.len() as u32).to_le_bytes());
    for shard in &manifest.shards {
        codec::put_bytes(&mut out, shard.stem.as_bytes());
        out.extend_from_slice(&shard.data_crc.to_le_bytes());
        out.extend_from_slice(&shard.entries.to_le_bytes());
    }
    let out = codec::finish_file(out);
    codec::write_atomic(&dir.join(commit_file_name(manifest.generation)), &out)
}

/// Reads and validates one commit file.
///
/// # Errors
///
/// [`StorageError::Io`] if the file cannot be read,
/// [`StorageError::CorruptSegment`] on any malformation.
pub fn read_commit(path: &Path) -> Result<CommitManifest> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let bytes = std::fs::read(path).map_err(|e| StorageError::io(path.display().to_string(), e))?;
    let (generation, payload) = codec::open_envelope(&bytes, file_kind::COMMIT, &name)?;
    let mut c = Cursor::new(payload, &name);
    let curve_tag = c.take_u8()?;
    let schema_json = c.take_string()?;
    let config_json = c.take_string()?;
    let n_starts = c.take_u32()? as usize;
    c.check_remaining(n_starts, 8)?;
    let mut starts = Vec::with_capacity(n_starts);
    for _ in 0..n_starts {
        starts.push(c.take_u64()?);
    }
    let n_shards = c.take_u32()? as usize;
    c.check_remaining(n_shards, 4 + 4 + 8)?;
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let stem = c.take_string()?;
        // Stems become file paths: refuse anything that could escape the
        // directory, even inside a checksum-valid file.
        if stem.is_empty() || stem.contains(['/', '\\']) || stem.contains("..") {
            return Err(StorageError::corrupt(
                &name,
                format!("shard stem {stem:?} is not a plain file name"),
            ));
        }
        shards.push(ShardRef {
            stem,
            data_crc: c.take_u32()?,
            entries: c.take_u64()?,
        });
    }
    c.finish()?;
    Ok(CommitManifest {
        generation,
        curve_tag,
        schema_json,
        config_json,
        starts,
        shards,
    })
}

/// Scans `dir` for the highest-numbered commit file.
///
/// Returns the generation and path without opening the file (corruption
/// inside it surfaces from [`read_commit`]); `Ok(None)` if the directory
/// exists but holds no commit.
///
/// # Errors
///
/// [`StorageError::Io`] if the directory cannot be listed.
pub fn latest_commit(dir: &Path) -> Result<Option<(u64, PathBuf)>> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| StorageError::io(dir.display().to_string(), e))?;
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir.display().to_string(), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(generation) = name
            .strip_prefix("commit-")
            .and_then(|rest| rest.strip_suffix(".acd"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(g, _)| generation > *g) {
            best = Some((generation, entry.path()));
        }
    }
    Ok(best)
}

/// Deletes commit files older than `live`, segment files `live` does not
/// reference, and any leftover `*.tmp` file (commit *or* segment — every
/// live file landed via rename, so a surviving temp name is always a
/// crashed write's debris). Called only after `live`'s commit file has
/// landed, so the deletions can never touch the readable generation.
/// Returns the number of files removed; deletion failures are ignored (a
/// stray file is garbage, not corruption — the next prune retries).
pub fn prune(dir: &Path, live: &CommitManifest) -> Result<usize> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| StorageError::io(dir.display().to_string(), e))?;
    let mut removed = 0;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io(dir.display().to_string(), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = if name.ends_with(".tmp") {
            // A temp name that survived to a prune pass is a crashed
            // write's leftover: every live file (commit included) was
            // renamed away from its temp name before this prune ran.
            true
        } else if let Some(generation) = name
            .strip_prefix("commit-")
            .and_then(|rest| rest.strip_suffix(".acd"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            generation < live.generation
        } else if let Some(stem) = name
            .strip_suffix(".dat")
            .or_else(|| name.strip_suffix(".meta"))
        {
            stem.starts_with("seg-") && !live.shards.iter().any(|s| s.stem == stem)
        } else {
            false
        };
        if stale && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(generation: u64) -> CommitManifest {
        CommitManifest {
            generation,
            curve_tag: 0,
            schema_json: "{\"attrs\":[]}".into(),
            config_json: "{\"mode\":\"exhaustive\"}".into(),
            starts: vec![0, 9, 42],
            shards: vec![
                ShardRef {
                    stem: segment_stem(generation, 0),
                    data_crc: 0xDEAD_BEEF,
                    entries: 10,
                },
                ShardRef {
                    stem: segment_stem(generation, 1),
                    data_crc: 0x1234_5678,
                    entries: 11,
                },
            ],
        }
    }

    #[test]
    fn commits_round_trip_and_the_latest_wins() {
        let dir = std::env::temp_dir().join(format!("acd-storage-commit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_commit(&dir, &manifest(1)).unwrap();
        write_commit(&dir, &manifest(2)).unwrap();
        let (generation, path) = latest_commit(&dir).unwrap().unwrap();
        assert_eq!(generation, 2);
        let read = read_commit(&path).unwrap();
        assert_eq!(read, manifest(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_only_the_live_generation() {
        let dir = std::env::temp_dir().join(format!("acd-storage-prune-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Old generation's files plus crashed-write temp leftovers — a
        // commit temp and a segment temp whose stem matches a *live*
        // segment (the temp is still debris: the real file was renamed).
        for name in [
            "seg-0000000001-000.dat",
            "seg-0000000001-000.meta",
            "commit-0000000099.acd.tmp",
            "seg-0000000002-000.dat.tmp",
        ] {
            std::fs::write(dir.join(name), b"old").unwrap();
        }
        write_commit(&dir, &manifest(1)).unwrap();
        let live = manifest(2);
        for shard in &live.shards {
            std::fs::write(dir.join(format!("{}.dat", shard.stem)), b"new").unwrap();
            std::fs::write(dir.join(format!("{}.meta", shard.stem)), b"new").unwrap();
        }
        write_commit(&dir, &live).unwrap();
        let removed = prune(&dir, &live).unwrap();
        assert_eq!(
            removed, 5,
            "two old segment files, one old commit, two temp leftovers"
        );
        assert!(!dir.join("commit-0000000099.acd.tmp").exists());
        assert!(!dir.join("seg-0000000002-000.dat.tmp").exists());
        assert!(dir.join(commit_file_name(2)).exists());
        for shard in &live.shards {
            assert!(dir.join(format!("{}.dat", shard.stem)).exists());
        }
        assert!(!dir.join("seg-0000000001-000.dat").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hostile_stems_are_rejected() {
        let dir = std::env::temp_dir().join(format!("acd-storage-stem-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut bad = manifest(1);
        bad.shards[0].stem = "../../etc/passwd".into();
        write_commit(&dir, &bad).unwrap();
        let (_, path) = latest_commit(&dir).unwrap().unwrap();
        assert!(read_commit(&path).unwrap_err().is_corrupt());
        std::fs::remove_dir_all(&dir).ok();
    }
}
