use std::error::Error;
use std::fmt;

/// Error type for the segment storage layer.
///
/// The variant that matters for robustness is [`CorruptSegment`]: **every**
/// malformation of on-disk bytes — a flipped bit anywhere in a file, a
/// truncation, a meta/data mismatch, an entry count that disagrees with the
/// bytes behind it — surfaces as this typed error. Decoding never panics on
/// file bytes and never constructs a silently wrong index.
///
/// [`CorruptSegment`]: StorageError::CorruptSegment
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// The operating system failed an I/O operation.
    Io {
        /// File (or directory) the operation touched.
        file: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file's bytes are not a valid segment: bad magic, checksum
    /// mismatch, truncation, impossible lengths or counts, or a meta file
    /// that does not match its data file.
    CorruptSegment {
        /// File the corruption was detected in.
        file: String,
        /// Human-readable description of the malformation.
        reason: String,
    },
    /// The file checks out (magic and checksum are valid) but was written
    /// by a newer codec version this build cannot read.
    UnsupportedVersion {
        /// File carrying the foreign version.
        file: String,
        /// The version byte found.
        found: u8,
    },
    /// A directory was opened for reading but holds no commit file.
    NoCommit {
        /// The directory that was scanned.
        dir: String,
    },
}

impl StorageError {
    /// Shorthand constructor for [`StorageError::CorruptSegment`].
    pub fn corrupt(file: impl Into<String>, reason: impl Into<String>) -> Self {
        StorageError::CorruptSegment {
            file: file.into(),
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`StorageError::Io`].
    pub fn io(file: impl Into<String>, source: std::io::Error) -> Self {
        StorageError::Io {
            file: file.into(),
            source,
        }
    }

    /// Whether this error is the typed corruption variant.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, StorageError::CorruptSegment { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { file, source } => write!(f, "i/o error on {file}: {source}"),
            StorageError::CorruptSegment { file, reason } => {
                write!(f, "corrupt segment {file}: {reason}")
            }
            StorageError::UnsupportedVersion { file, found } => write!(
                f,
                "{file} was written by codec version {found}, which this build cannot read"
            ),
            StorageError::NoCommit { dir } => {
                write!(f, "no commit file found in {dir}")
            }
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: Send + Sync + 'static>() {}
        assert_traits::<StorageError>();
    }

    #[test]
    fn corrupt_is_typed_and_displayed() {
        let e = StorageError::corrupt("seg-0000000001-000.dat", "checksum mismatch");
        assert!(e.is_corrupt());
        let s = e.to_string();
        assert!(s.contains("seg-0000000001-000.dat") && s.contains("checksum"));
    }
}
