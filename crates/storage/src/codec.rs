//! The on-disk codec: the CRC-32 kernel, the file envelope shared by every
//! storage file, and a bounds-checked cursor for decoding payloads.
//!
//! Every file this crate writes has the same envelope:
//!
//! ```text
//! +--------+---------+------+------------+----------------+----------+
//! | magic  | version | kind | generation | payload        | checksum |
//! | u32 LE | u8      | u8   | u64 LE     | length-defined | u32 LE   |
//! +--------+---------+------+------------+----------------+----------+
//! ```
//!
//! * `magic` is [`MAGIC`] (`"ACDS"`): a file that is not a storage file at
//!   all is rejected on its first four bytes;
//! * `version` is [`VERSION`]; a file from a future codec surfaces as
//!   [`StorageError::UnsupportedVersion`], never a misparse;
//! * `kind` says what the file *is* ([`file_kind`]) so a meta file handed
//!   to the data decoder (or vice versa) is a typed error;
//! * `generation` ties the file to one commit generation — a meta and data
//!   file only pair up when their generations agree;
//! * `checksum` is a CRC-32 (IEEE polynomial) over **everything before
//!   it**, header included, so a flipped bit anywhere in the file is
//!   caught before a single payload byte is interpreted.
//!
//! The validation order in `open_envelope` is deliberate: magic, then
//! footer checksum, then version and kind. Checking the checksum *before*
//! the version byte means a bit flip in the version field reads as the
//! corruption it is ([`StorageError::CorruptSegment`]); only a file whose
//! checksum is intact can claim to be from a future codec.

use crate::error::StorageError;
use crate::Result;

/// First four bytes of every storage file: `"ACDS"` as a little-endian u32.
pub const MAGIC: u32 = u32::from_le_bytes(*b"ACDS");

/// Codec version this build reads and writes.
pub const VERSION: u8 = 1;

/// Envelope bytes before the payload: magic + version + kind + generation.
pub const HEADER_LEN: usize = 14;

/// Envelope bytes after the payload: the CRC-32.
pub const FOOTER_LEN: usize = 4;

/// The `kind` byte of the file envelope: what a storage file is.
pub mod file_kind {
    /// Segment metadata (`.meta`): describes and pins a data file.
    pub const META: u8 = 1;
    /// Segment data (`.dat`): the column-encoded index payload.
    pub const DATA: u8 = 2;
    /// Generation commit manifest (`commit-*.acd`).
    pub const COMMIT: u8 = 3;
    /// Append-only subscription journal (`journal.acd`).
    pub const JOURNAL: u8 = 4;
    /// Compacted subscription snapshot (`snapshot.acd`).
    pub const SNAPSHOT: u8 = 5;
}

// CRC-32 (IEEE 802.3 polynomial, reflected), slice-by-16 table-driven:
// sixteen 256-entry tables built at compile time, so the hot loop folds 16
// input bytes per iteration with independent lookups instead of one byte
// per iteration. `TABLES[0]` is the classic byte-at-a-time table (used for
// the unaligned tail); `TABLES[k][v]` is the CRC of byte `v` followed by
// `k` zero bytes, which is what lets the 16 per-chunk contributions be
// computed independently and XOR-combined.
const CRC_TABLES: [[u32; 256]; 16] = {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // acd-lint: allow(panic-hygiene) const-fn table builder; `i` is the loop bound over the table length
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 16 {
        let mut i = 0;
        while i < 256 {
            // acd-lint: allow(panic-hygiene) const-fn table builder; `k` and `i` are the loop bounds
            let prev = tables[k - 1][i];
            // acd-lint: allow(panic-hygiene) index is masked to 0..256 on a 256-entry table
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 (IEEE) of `bytes`.
///
/// Slice-by-16: segment opens checksum the whole data file before trusting
/// a byte of it, so this kernel sits on the cold-open critical path and is
/// several times faster than a byte-at-a-time loop.
pub fn crc32(bytes: &[u8]) -> u32 {
    #[inline]
    fn le32(b: &[u8]) -> u32 {
        u32::from_le_bytes(b.try_into().expect("caller slices exactly four bytes"))
    }
    #[inline]
    fn tab(t: &[u32; 256], v: u32) -> u32 {
        // acd-lint: allow(panic-hygiene) index is masked to 0..256 on a 256-entry table
        t[(v & 0xFF) as usize]
    }
    let [t0, t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, t11, t12, t13, t14, t15] = &CRC_TABLES;
    let mut crc = u32::MAX;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        let (w0, rest) = chunk.split_at(4);
        let (w1, rest) = rest.split_at(4);
        let (w2, w3) = rest.split_at(4);
        let a = le32(w0) ^ crc;
        let b = le32(w1);
        let c = le32(w2);
        let d = le32(w3);
        crc = tab(t15, a)
            ^ tab(t14, a >> 8)
            ^ tab(t13, a >> 16)
            ^ tab(t12, a >> 24)
            ^ tab(t11, b)
            ^ tab(t10, b >> 8)
            ^ tab(t9, b >> 16)
            ^ tab(t8, b >> 24)
            ^ tab(t7, c)
            ^ tab(t6, c >> 8)
            ^ tab(t5, c >> 16)
            ^ tab(t4, c >> 24)
            ^ tab(t3, d)
            ^ tab(t2, d >> 8)
            ^ tab(t1, d >> 16)
            ^ tab(t0, d >> 24);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ tab(t0, crc ^ b as u32);
    }
    !crc
}

/// Validates a storage file's fixed header — magic, codec version, file
/// kind — and returns the generation it was written under.
///
/// # Errors
///
/// [`StorageError::CorruptSegment`] on a short file, bad magic, or wrong
/// kind; [`StorageError::UnsupportedVersion`] on a foreign version byte.
pub fn check_index_header(bytes: &[u8], expected_kind: u8, file: &str) -> Result<u64> {
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(StorageError::corrupt(
            file,
            format!(
                "file is {} bytes, shorter than the {}-byte envelope",
                bytes.len(),
                HEADER_LEN + FOOTER_LEN
            ),
        ));
    }
    let (header, _) = bytes.split_at(HEADER_LEN);
    let [m0, m1, m2, m3, version, kind, gen @ ..] = header else {
        return Err(StorageError::corrupt(
            file,
            "header shorter than its fixed fields",
        ));
    };
    let magic = u32::from_le_bytes([*m0, *m1, *m2, *m3]);
    if magic != MAGIC {
        return Err(StorageError::corrupt(
            file,
            format!("bad magic 0x{magic:08x}, expected 0x{MAGIC:08x}"),
        ));
    }
    if *version != VERSION {
        return Err(StorageError::UnsupportedVersion {
            file: file.into(),
            found: *version,
        });
    }
    if *kind != expected_kind {
        return Err(StorageError::corrupt(
            file,
            format!("file kind {kind} where kind {expected_kind} was expected"),
        ));
    }
    let gen: [u8; 8] = gen
        .try_into()
        .map_err(|_| StorageError::corrupt(file, "generation field is not eight bytes"))?;
    Ok(u64::from_le_bytes(gen))
}

/// Validates a storage file's trailing CRC-32 against the bytes before it.
///
/// # Errors
///
/// [`StorageError::CorruptSegment`] on a short file or a mismatch.
pub fn check_footer(bytes: &[u8], file: &str) -> Result<()> {
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(StorageError::corrupt(
            file,
            "file too short to carry a checksum footer",
        ));
    }
    let (body, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    let stored: [u8; FOOTER_LEN] = footer
        .try_into()
        .map_err(|_| StorageError::corrupt(file, "checksum footer is not four bytes"))?;
    let stored = u32::from_le_bytes(stored);
    let computed = crc32(body);
    if stored != computed {
        return Err(StorageError::corrupt(
            file,
            format!(
                "checksum mismatch: footer says 0x{stored:08x}, bytes hash to 0x{computed:08x}"
            ),
        ));
    }
    Ok(())
}

/// Fully validates a file's envelope — magic, checksum, version, kind — and
/// returns `(generation, payload)`. The checksum is verified **before** the
/// version and kind bytes are trusted, so any single flipped bit anywhere
/// in the file reads as [`StorageError::CorruptSegment`].
pub(crate) fn open_envelope<'a>(
    bytes: &'a [u8],
    expected_kind: u8,
    file: &str,
) -> Result<(u64, &'a [u8])> {
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(StorageError::corrupt(
            file,
            format!(
                "file is {} bytes, shorter than the {}-byte envelope",
                bytes.len(),
                HEADER_LEN + FOOTER_LEN
            ),
        ));
    }
    let magic = bytes
        .first_chunk::<4>()
        .map(|m| u32::from_le_bytes(*m))
        .ok_or_else(|| StorageError::corrupt(file, "file shorter than its magic number"))?;
    if magic != MAGIC {
        return Err(StorageError::corrupt(
            file,
            format!("bad magic 0x{magic:08x}, expected 0x{MAGIC:08x}"),
        ));
    }
    check_footer(bytes, file)?;
    let generation = check_index_header(bytes, expected_kind, file)?;
    let (_, rest) = bytes.split_at(HEADER_LEN);
    let (payload, _) = rest.split_at(rest.len() - FOOTER_LEN);
    Ok((generation, payload))
}

/// Starts a file: writes the envelope header into a fresh buffer.
pub(crate) fn begin_file(kind: u8, generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&generation.to_le_bytes());
    out
}

/// Finishes a file: appends the CRC-32 footer over everything written so
/// far and returns the completed bytes.
pub(crate) fn finish_file(mut out: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Appends a length-prefixed byte string.
pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Writes `bytes` to `path` atomically **and durably**: the contents land
/// under a temporary name in the same directory, are synced to stable
/// storage, and are renamed into place — so a reader (or a crash) never
/// observes a half-written file. The temp file is fsynced before the
/// rename (a rename can otherwise outlive its contents on power loss) and
/// the directory is fsynced after it, so the new name itself survives an
/// OS crash, not just a process death.
pub(crate) fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> Result<()> {
    use std::io::Write;

    let display = path.display().to_string();
    let io = |e: std::io::Error| StorageError::io(&display, e);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut file = std::fs::File::create(&tmp).map_err(io)?;
    file.write_all(bytes)
        .and_then(|()| file.sync_all())
        .map_err(io)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io)?;
    sync_parent_dir(path).map_err(io)
}

/// Fsyncs the directory holding `path`, making a just-renamed entry
/// durable. Directories cannot be opened for syncing on every platform;
/// where they cannot, the rename-then-sync discipline of the callers is
/// the strongest guarantee available.
#[cfg(unix)]
fn sync_parent_dir(path: &std::path::Path) -> std::io::Result<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => std::fs::File::open(dir)?.sync_all(),
        _ => Ok(()),
    }
}

#[cfg(not(unix))]
fn sync_parent_dir(_path: &std::path::Path) -> std::io::Result<()> {
    Ok(())
}

/// A bounds-checked reader over a payload slice: every primitive read can
/// fail cleanly ([`StorageError::CorruptSegment`]) instead of panicking on
/// a short buffer, and counts are validated against the bytes actually
/// remaining before any allocation.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
    file: &'a str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8], file: &'a str) -> Self {
        Cursor { buf, at: 0, file }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end.and_then(|end| self.buf.get(self.at..end)) {
            Some(slice) => {
                self.at = self.at.saturating_add(n);
                Ok(slice)
            }
            None => Err(StorageError::corrupt(
                self.file,
                "payload shorter than its fields claim",
            )),
        }
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_u16(&mut self) -> Result<u16> {
        let b: [u8; 2] = self
            .take(2)?
            .try_into()
            .expect("take(2) returns exactly two bytes");
        Ok(u16::from_le_bytes(b))
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .expect("take(4) returns exactly four bytes");
        Ok(u32::from_le_bytes(b))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .expect("take(8) returns exactly eight bytes");
        Ok(u64::from_le_bytes(b))
    }

    pub(crate) fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub(crate) fn take_string(&mut self) -> Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::corrupt(self.file, "string field is not valid UTF-8"))
    }

    /// Rejects a claimed element count that cannot fit in the bytes left
    /// (`count * min_element_size > remaining`), so corrupt counts can
    /// never drive an over-allocation.
    pub(crate) fn check_remaining(&self, count: usize, min_element_size: usize) -> Result<()> {
        let need = count.checked_mul(min_element_size);
        let remaining = self.buf.len() - self.at;
        match need {
            Some(need) if need <= remaining => Ok(()),
            _ => Err(StorageError::corrupt(
                self.file,
                format!(
                    "count {count} needs at least {} bytes but only {remaining} remain",
                    count.saturating_mul(min_element_size)
                ),
            )),
        }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Asserts the payload was consumed exactly: trailing bytes are as
    /// corrupt as missing ones.
    pub(crate) fn finish(self) -> Result<()> {
        if self.at != self.buf.len() {
            return Err(StorageError::corrupt(
                self.file,
                format!("{} trailing bytes after the last field", self.remaining()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn sliced_crc32_agrees_with_a_bitwise_reference_at_every_length() {
        // Bit-at-a-time reference: the polynomial definition, no tables.
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = u32::MAX;
            for &b in bytes {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ 0xEDB8_8320
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        }
        // Deterministic pseudo-random buffer long enough to exercise the
        // 16-byte main loop many times plus every tail length 0..16.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let buf: Vec<u8> = (0..257)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        for len in 0..buf.len() {
            assert_eq!(crc32(&buf[..len]), reference(&buf[..len]), "length {len}");
        }
    }

    #[test]
    fn envelope_round_trips() {
        let mut out = begin_file(file_kind::DATA, 7);
        out.extend_from_slice(b"payload");
        let bytes = finish_file(out);
        let (generation, payload) = open_envelope(&bytes, file_kind::DATA, "test").unwrap();
        assert_eq!(generation, 7);
        assert_eq!(payload, b"payload");
    }

    #[test]
    fn every_flipped_bit_is_a_corrupt_segment() {
        let mut out = begin_file(file_kind::META, 3);
        out.extend_from_slice(b"some meta payload");
        let bytes = finish_file(out);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                let err = open_envelope(&flipped, file_kind::META, "test")
                    .expect_err("flipped bit must not validate");
                assert!(
                    err.is_corrupt(),
                    "byte {i} bit {bit} produced a non-corrupt error: {err}"
                );
            }
        }
    }

    #[test]
    fn truncations_are_corrupt() {
        let mut out = begin_file(file_kind::COMMIT, 1);
        out.extend_from_slice(&[9u8; 32]);
        let bytes = finish_file(out);
        for len in 0..bytes.len() {
            let err = open_envelope(&bytes[..len], file_kind::COMMIT, "test")
                .expect_err("truncation must not validate");
            assert!(err.is_corrupt(), "length {len}: {err}");
        }
    }

    #[test]
    fn wrong_kind_is_corrupt_and_future_version_is_typed() {
        let bytes = finish_file(begin_file(file_kind::DATA, 1));
        assert!(open_envelope(&bytes, file_kind::META, "test")
            .unwrap_err()
            .is_corrupt());

        // A genuinely future version (checksum intact) is the typed
        // version error, not corruption.
        let mut future = begin_file(file_kind::DATA, 1);
        future[4] = VERSION + 1;
        let future = finish_file(future);
        assert!(matches!(
            open_envelope(&future, file_kind::DATA, "test").unwrap_err(),
            StorageError::UnsupportedVersion { found, .. } if found == VERSION + 1
        ));
    }

    #[test]
    fn cursor_rejects_short_reads_overcounts_and_trailing_bytes() {
        let buf = [1u8, 2, 3, 4];
        let mut c = Cursor::new(&buf, "test");
        assert!(c.take_u64().is_err());
        let mut c = Cursor::new(&buf, "test");
        assert!(c.check_remaining(3, 2).is_err());
        assert!(c.check_remaining(2, 2).is_ok());
        assert!(c.check_remaining(usize::MAX, 8).is_err());
        c.take(2).unwrap();
        assert!(c.finish().is_err());
    }
}
