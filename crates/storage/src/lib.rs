//! Durable segment storage for the SFC covering index.
//!
//! This crate persists bulk-built [`acd_sfc::SfcArray`]s as **immutable
//! segment files**, in the discipline of a search-engine index codec:
//!
//! * every file opens with a versioned header (magic, codec version, file
//!   kind, generation) and closes with a CRC-32 footer over everything
//!   before it — [`check_index_header`] / [`check_footer`] bracket every
//!   read, and nothing between an unverified header and an unverified
//!   footer is ever interpreted;
//! * each segment is a **pair** of files: a thin `.meta` file describing
//!   the fat `.dat` file (its length, its checksum, its entry counts). The
//!   meta's generation and recorded checksum must match the data file
//!   exactly, so a meta paired with the wrong data — or a data file
//!   rewritten behind the meta's back — is a typed
//!   [`StorageError::CorruptSegment`], never a silently wrong index;
//! * the `.dat` payload is **column-wise**: the sorted packed `u128` key
//!   mirror, the point coordinates, and the values are stored as three
//!   contiguous columns in key order, so a segment loads back through
//!   [`acd_sfc::SfcArray::from_sorted_packed`] — a single gather pass, no
//!   keying, no re-sort;
//! * a **generation commit file** makes multi-file states atomic: segment
//!   files are written first (to fresh names), then the commit manifest
//!   referencing them lands via write-to-temp + rename. Readers open the
//!   highest-numbered commit; files not referenced by it are garbage from
//!   an interrupted save and are pruned on the next successful commit.
//!   Old segment files are deleted only *after* the new generation's
//!   commit file lands — a crash at any point leaves the previous
//!   generation fully readable.
//!
//! Alongside the segment codec, the crate carries the broker daemon's
//! [`SubscriptionJournal`]: an append-only log of subscribe/unsubscribe
//! records with a per-record CRC, replayed up to its durable prefix on
//! restart, plus an atomically-written snapshot that compacts the journal
//! on graceful shutdown.
//!
//! Everything is hand-rolled little-endian (the build environment vendors
//! no serialization crates); the codec style — const-fn CRC-32 table,
//! bounds-checked cursor, typed errors and no panics on untrusted bytes —
//! follows the broker's wire protocol (`acd-broker`'s `wire.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod commit;
mod error;
mod journal;
mod segment;

pub use codec::{check_footer, check_index_header, crc32, file_kind, MAGIC, VERSION};
pub use commit::{
    commit_file_name, latest_commit, prune, read_commit, segment_stem, write_commit,
    CommitManifest, ShardRef,
};
pub use error::StorageError;
pub use journal::{read_snapshot, write_snapshot, JournalRecord, SubscriptionJournal};
pub use segment::{curve_from_tag, curve_tag, SegmentMeta, SegmentReader, SegmentWriter};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
