//! Threaded stress test for the concurrent `BrokerNetwork`: many threads
//! drive subscribe/unsubscribe/publish through `&self` on one shared
//! network. Each thread owns a disjoint slice of the first attribute's
//! domain, so its deliveries are exactly predictable by a thread-local
//! oracle no matter how the threads interleave — which turns the stress
//! test into an exact correctness check, not just a crash hunt.
//!
//! Run in CI's stress job (release, single-threaded test harness so the
//! worker threads get the machine).

use std::sync::Arc;

use acd_broker::{BrokerConfig, BrokerNetwork, Topology};
use acd_covering::CoveringPolicy;
use acd_subscription::{Event, Schema, Subscription, SubscriptionBuilder};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 300;
const DOMAIN: f64 = 1000.0;

fn schema() -> Schema {
    Schema::builder()
        .attribute("x", 0.0, DOMAIN)
        .attribute("y", 0.0, DOMAIN)
        .bits_per_attribute(8)
        .build()
        .unwrap()
}

/// A tiny deterministic PRNG (splitmix64) so the stress mix needs no
/// external dependencies and every run replays the same schedule attempts.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One thread's workload: churn inside its own x-slice, checking every
/// publish against a local oracle of its own live subscriptions.
fn drive(net: &BrokerNetwork, thread: usize, seed: u64) {
    let schema = net.schema().clone();
    let brokers = net.topology().brokers();
    let mut rng = Rng(seed);
    // Disjoint slice, with a margin so grid quantization cannot blur two
    // neighboring slices into a shared cell.
    let width = DOMAIN / THREADS as f64;
    let (slice_lo, slice_hi) = (
        thread as f64 * width + width * 0.05,
        (thread + 1) as f64 * width - width * 0.05,
    );
    let mut live: Vec<(usize, Subscription)> = Vec::new();
    let mut next_id = (thread as u64) * 1_000_000;

    for step in 0..OPS_PER_THREAD {
        match rng.below(10) {
            // 0-3: subscribe inside the slice.
            0..=3 => {
                let lo = slice_lo + rng.unit() * (slice_hi - slice_lo) * 0.8;
                let hi = lo + rng.unit() * (slice_hi - lo);
                let y_lo = rng.unit() * DOMAIN * 0.8;
                let y_hi = y_lo + rng.unit() * (DOMAIN - y_lo);
                next_id += 1;
                let sub = SubscriptionBuilder::new(&schema)
                    .range("x", lo, hi)
                    .range("y", y_lo, y_hi)
                    .build(next_id)
                    .unwrap();
                let home = (next_id % brokers as u64) as usize;
                net.subscribe(home, next_id, &sub).unwrap();
                live.push((home, sub));
            }
            // 4-5: unsubscribe one of ours.
            4 | 5 => {
                if !live.is_empty() {
                    let victim = rng.below(live.len() as u64) as usize;
                    let (home, sub) = live.swap_remove(victim);
                    net.unsubscribe(home, sub.id()).unwrap();
                }
            }
            // 6-9: publish inside the slice and check the oracle exactly.
            _ => {
                let x = slice_lo + rng.unit() * (slice_hi - slice_lo);
                let y = rng.unit() * DOMAIN;
                let event = Event::new(&schema, vec![x, y]).unwrap();
                let at = step % brokers;
                let deliveries = net.publish(at, &event).unwrap();
                let mine: Vec<(usize, u64)> = deliveries
                    .iter()
                    .copied()
                    .filter(|(_, client)| client / 1_000_000 == thread as u64)
                    .collect();
                let mut expected: Vec<(usize, u64)> = live
                    .iter()
                    .filter(|(_, sub)| sub.matches(&event))
                    .map(|(home, sub)| (*home, sub.id()))
                    .collect();
                expected.sort_unstable();
                assert_eq!(
                    mine, expected,
                    "thread {thread} step {step}: deliveries diverged from the oracle"
                );
                // Foreign deliveries would mean slice isolation broke.
                assert_eq!(
                    mine.len(),
                    deliveries.len(),
                    "thread {thread} step {step}: received another slice's deliveries"
                );
            }
        }
    }

    // Drain, so the network ends the test empty.
    for (home, sub) in live {
        net.unsubscribe(home, sub.id()).unwrap();
    }
}

fn stress(policy: CoveringPolicy) {
    let schema = schema();
    let net = Arc::new(
        BrokerConfig::new(Topology::random_tree(10, 7).unwrap(), &schema)
            .policy(policy)
            .build()
            .unwrap(),
    );
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let net = Arc::clone(&net);
            scope.spawn(move || drive(&net, thread, 0xACD0 + thread as u64));
        }
    });
    let metrics = net.metrics();
    assert_eq!(
        metrics.routing_table_entries, 0,
        "all subscriptions were retracted, routing state must be empty"
    );
    assert_eq!(metrics.subscriptions_registered, metrics.unsubscriptions);
    let suppressed: usize = (0..net.topology().brokers())
        .map(|b| net.broker(b).unwrap().suppressed_entries())
        .sum();
    assert_eq!(suppressed, 0, "suppressed state leaked after full drain");
}

#[test]
fn network_is_send_and_sync() {
    fn assert_traits<T: Send + Sync>() {}
    assert_traits::<BrokerNetwork>();
    assert_traits::<Arc<BrokerNetwork>>();
}

#[test]
fn concurrent_churn_matches_the_oracle_flooding() {
    stress(CoveringPolicy::None);
}

#[test]
fn concurrent_churn_matches_the_oracle_exact_sfc() {
    stress(CoveringPolicy::ExactSfc);
}

#[test]
fn concurrent_churn_matches_the_oracle_sharded() {
    stress(CoveringPolicy::ShardedSfc { shards: 3 });
}
