//! Crash-recovery e2e: kill -9 a real `acd-brokerd --data-dir` process
//! mid-churn, restart it over the same directory, and prove the durable
//! subscription set survived — by delivery equality against an oracle
//! folded from the *acknowledged* operations, not by asking nicely.
//!
//! The clients here are plain [`BrokerClient`]s on purpose: a
//! `ResilientClient` replays its own subscription set after a reconnect,
//! which would mask the thing under test. Whatever the restarted daemon
//! serves, it serves because the journal preserved it.
//!
//! Durability contract being exercised: every acked subscribe/unsubscribe
//! was journaled (flushed to the OS) *before* its ack frame was sent, so
//! the recovered set must contain every acked subscribe not followed by
//! an acked unsubscribe. The single operation that may have been in
//! flight when the SIGKILL landed is genuinely ambiguous — the daemon may
//! or may not have journaled it before dying — and the oracle treats it
//! as such.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use acd_broker::BrokerClient;
use acd_subscription::{Event, Schema, Subscription, SubscriptionBuilder};

const BROKERS: usize = 6;
const CLIENT: u64 = 7;
/// The workload schema domain (`acd_workload::WorkloadConfig` default).
const DOMAIN: f64 = 1_000_000.0;
/// Kill the daemon once this many operations are acknowledged.
const OPS_BEFORE_KILL: usize = 40;

/// The daemon process, killed on drop so a failing test never leaks it.
struct DaemonGuard {
    child: Child,
    addr: String,
}

impl DaemonGuard {
    /// Spawns `acd-brokerd` on `addr` with `extra` flags and waits for its
    /// `listening on` line.
    fn spawn(addr: &str, extra: &[&str]) -> Result<DaemonGuard, String> {
        let mut child = Command::new(env!("CARGO_BIN_EXE_acd-brokerd"))
            .args([
                "--addr",
                addr,
                "--topology",
                "line",
                "--brokers",
                &BROKERS.to_string(),
                "--policy",
                "exact-sfc",
                "--workers",
                "4",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn acd-brokerd: {e}"))?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read the listening line: {e}"))?;
        match line.trim().strip_prefix("listening on ") {
            Some(addr) => Ok(DaemonGuard {
                child,
                addr: addr.to_string(),
            }),
            None => {
                let _ = child.kill();
                let _ = child.wait();
                Err(format!("unexpected daemon greeting: {line:?}"))
            }
        }
    }

    /// SIGKILL — no shutdown handshake, no flush, nothing graceful.
    fn kill_nine(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        self.kill_nine();
    }
}

/// Restarts a daemon on the exact port a killed one held, retrying while
/// the kernel releases the address.
fn restart_on(addr: &str, extra: &[&str]) -> DaemonGuard {
    let mut last = String::new();
    for _ in 0..100 {
        match DaemonGuard::spawn(addr, extra) {
            Ok(daemon) => return daemon,
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon never came back on {addr}: {last}");
}

/// One churn operation: subscribe `id` or retract it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Subscribe(u64),
    Unsubscribe(u64),
}

impl Op {
    fn id(self) -> u64 {
        match self {
            Op::Subscribe(id) | Op::Unsubscribe(id) => id,
        }
    }
}

/// What the churn thread has seen acknowledged, plus the operation in
/// flight (attempted, ack unknown) at any moment.
#[derive(Default)]
struct ChurnLog {
    acked: Vec<Op>,
    in_flight: Option<Op>,
}

/// Each id gets a disjoint slice of attribute 0, so a probe event aimed
/// at id `i` matches subscription `i` and nothing else.
fn sub_for(schema: &Schema, id: u64) -> Subscription {
    let base = id as f64 * 1_000.0;
    SubscriptionBuilder::new(schema)
        .range("attr0", base + 100.0, base + 500.0)
        .range("attr1", 0.0, DOMAIN)
        .build(id)
        .unwrap()
}

fn probe_for(schema: &Schema, id: u64) -> Event {
    Event::new(schema, vec![id as f64 * 1_000.0 + 300.0, 123.0]).unwrap()
}

fn home_broker(id: u64) -> usize {
    (id % BROKERS as u64) as usize
}

#[test]
fn kill_nine_mid_churn_restarts_with_the_acked_subscription_set() {
    let dir = std::env::temp_dir().join(format!("acd-crash-recovery-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_flag = dir.to_str().expect("temp dir is UTF-8").to_string();
    let mut daemon = DaemonGuard::spawn("127.0.0.1:0", &["--data-dir", &dir_flag])
        .expect("daemon starts on an ephemeral port");
    let addr = daemon.addr.clone();

    // Churn from a second thread so the SIGKILL genuinely lands mid-churn.
    let log = Arc::new(Mutex::new(ChurnLog::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let log = Arc::clone(&log);
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = BrokerClient::connect(&*addr).expect("churn client connects");
            let schema = client.schema().clone();
            // Deterministic churn: subscribe a fresh id each step,
            // retracting the oldest live one every third step, so the
            // live set both grows and shrinks while the journal records
            // interleaved kinds.
            let mut step = 0u64;
            let mut next_id = 0u64;
            let mut oldest: Vec<u64> = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                let op = if step % 3 == 2 && !oldest.is_empty() {
                    Op::Unsubscribe(oldest.remove(0))
                } else {
                    let id = next_id;
                    next_id += 1;
                    oldest.push(id);
                    Op::Subscribe(id)
                };
                log.lock().unwrap().in_flight = Some(op);
                let outcome = match op {
                    Op::Subscribe(id) => {
                        client.subscribe(home_broker(id), CLIENT, &sub_for(&schema, id))
                    }
                    Op::Unsubscribe(id) => client.unsubscribe(home_broker(id), id),
                };
                match outcome {
                    Ok(()) => {
                        let mut log = log.lock().unwrap();
                        log.in_flight = None;
                        log.acked.push(op);
                    }
                    // The daemon is dead: the in-flight marker stays set —
                    // that operation's fate is ambiguous.
                    Err(e) => {
                        eprintln!("churn stopped at step {step}: {e}");
                        break;
                    }
                }
                step += 1;
            }
        })
    };

    // Let the churn make real progress, then kill without ceremony.
    let deadline = Instant::now() + Duration::from_secs(30);
    while log.lock().unwrap().acked.len() < OPS_BEFORE_KILL {
        assert!(Instant::now() < deadline, "churn made no progress");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.kill_nine();
    stop.store(true, Ordering::SeqCst);
    churn.join().expect("churn thread exits");

    // Oracle: fold the acked operations into the surviving set.
    let (acked, ambiguous) = {
        let log = log.lock().unwrap();
        (log.acked.clone(), log.in_flight)
    };
    assert!(acked.len() >= OPS_BEFORE_KILL);
    let mut live: Vec<u64> = Vec::new();
    let mut seen: Vec<u64> = Vec::new();
    for op in &acked {
        if !seen.contains(&op.id()) {
            seen.push(op.id());
        }
        match op {
            Op::Subscribe(id) => live.push(*id),
            Op::Unsubscribe(id) => live.retain(|x| x != id),
        }
    }

    // Restart over the same directory — the journal is all it has.
    let daemon = restart_on(&addr, &["--data-dir", &dir_flag]);
    let mut client = BrokerClient::connect(&*daemon.addr).expect("post-restart client connects");
    let schema = client.schema().clone();
    for &id in &seen {
        if ambiguous.map(|op| op.id()) == Some(id) {
            // The one operation the SIGKILL may have interrupted: the
            // daemon may or may not have journaled it before dying.
            continue;
        }
        let deliveries = client
            .publish(home_broker(id + 1), &probe_for(&schema, id))
            .expect("probe publish succeeds");
        let expected: Vec<(usize, u64)> = if live.contains(&id) {
            vec![(home_broker(id), CLIENT)]
        } else {
            vec![]
        };
        assert_eq!(
            deliveries, expected,
            "recovered daemon disagrees with the acked oracle on id {id}"
        );
    }

    // The recovered registrations are live state, not a read-only replay:
    // a fresh client can retract one and register new ones.
    if let Some(&id) = live.first() {
        client.unsubscribe(home_broker(id), id).unwrap();
        assert_eq!(
            client
                .publish(home_broker(id + 1), &probe_for(&schema, id))
                .unwrap(),
            vec![]
        );
    }
    // Stays inside the schema domain: base 900_000 + 500 < 1e6.
    let new_id = 900;
    client
        .subscribe(home_broker(new_id), CLIENT, &sub_for(&schema, new_id))
        .unwrap();
    assert_eq!(
        client.publish(0, &probe_for(&schema, new_id)).unwrap(),
        vec![(home_broker(new_id), CLIENT)]
    );

    drop(client);
    drop(daemon);
    std::fs::remove_dir_all(&dir).ok();
}
