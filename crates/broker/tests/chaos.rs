//! Chaos suite: drive resilient clients through a real `acd-brokerd`
//! process that injects deterministic transport faults (`--chaos`), and
//! assert the system's end-to-end promises hold anyway:
//!
//! * **Oracle-exact deliveries** — every acknowledged publish returns
//!   exactly the deliveries an in-process oracle predicts from the
//!   client's live subscription set, regardless of how many retries,
//!   reconnects and session replays it took to get the answer.
//! * **Kill-9 survival** — SIGKILLing the daemon mid-churn and restarting
//!   it on the same port ends with every [`ResilientClient`] reconnected
//!   and its full subscription set replayed (proved by delivery
//!   equality, not by asking nicely).
//! * **Overload shedding** — a capped daemon answers excess connections
//!   with a typed `Rejected` within the deadline instead of stalling.
//!
//! Fault schedules are injected *server-side*, so the clients under test
//! run over clean TCP and see the full damage: dropped and corrupted
//! responses, truncated frames, hard disconnects, stalls, and partial
//! writes.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use acd_broker::{BrokerClient, ClientStats, ResilientClient, RetryPolicy, ServiceError};
use acd_subscription::{Event, Schema, Subscription, SubscriptionBuilder};

const CLIENTS: usize = 2;
const OPS_PER_CLIENT: usize = 60;
const BROKERS: usize = 6;
/// The workload schema domain (`acd_workload::WorkloadConfig` default).
const DOMAIN: f64 = 1_000_000.0;

/// The daemon process, killed on drop so a failing test never leaks it.
struct DaemonGuard {
    child: Child,
    addr: String,
}

impl DaemonGuard {
    /// Spawns `acd-brokerd` on `addr` with `extra` flags and waits for its
    /// `listening on` line. `Err` when the process dies before printing it
    /// (e.g. the port is still settling after a kill).
    fn spawn(addr: &str, extra: &[&str]) -> Result<DaemonGuard, String> {
        let mut child = Command::new(env!("CARGO_BIN_EXE_acd-brokerd"))
            .args([
                "--addr",
                addr,
                "--topology",
                "line",
                "--brokers",
                &BROKERS.to_string(),
                "--policy",
                "exact-sfc",
                "--workers",
                "4",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn acd-brokerd: {e}"))?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read the listening line: {e}"))?;
        match line.trim().strip_prefix("listening on ") {
            Some(addr) => Ok(DaemonGuard {
                child,
                addr: addr.to_string(),
            }),
            None => {
                let _ = child.kill();
                let _ = child.wait();
                Err(format!("unexpected daemon greeting: {line:?}"))
            }
        }
    }

    fn start(extra: &[&str]) -> DaemonGuard {
        DaemonGuard::spawn("127.0.0.1:0", extra).expect("daemon starts on an ephemeral port")
    }

    /// SIGKILL — no shutdown handshake, no flush, nothing graceful.
    fn kill_nine(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        self.kill_nine();
    }
}

/// Restarts a daemon on the exact port a killed one held, retrying while
/// the kernel releases the address.
fn restart_on(addr: &str, extra: &[&str]) -> DaemonGuard {
    let mut last = String::new();
    for _ in 0..100 {
        match DaemonGuard::spawn(addr, extra) {
            Ok(daemon) => return daemon,
            Err(e) => last = e,
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon never came back on {addr}: {last}");
}

/// Deterministic splitmix64, one per client thread.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A policy tight enough to keep fault recovery fast, patient enough to
/// ride out every schedule in this suite.
fn chaos_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 25,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        request_timeout: Some(Duration::from_millis(400)),
        jitter_seed: seed,
    }
}

/// Drives one client's churn mix — subscribe, unsubscribe, publish, and
/// pipelined batches — asserting oracle-exact deliveries for every
/// acknowledged publish. Each client owns a disjoint slice of `attr0`'s
/// domain, so its deliveries are predictable from its own live set alone.
fn churn(addr: &str, index: usize) -> (usize, ClientStats) {
    let mut client = ResilientClient::connect(addr, chaos_policy(0xC0 + index as u64))
        .expect("client connects under the fault schedule");
    let schema: Schema = client.schema().clone();
    let mut rng = Rng(0xCAFE + index as u64);
    let width = DOMAIN / CLIENTS as f64;
    // Margins keep neighboring slices out of each other's grid cells.
    let (slice_lo, slice_hi) = (
        index as f64 * width + width * 0.05,
        (index + 1) as f64 * width - width * 0.05,
    );
    let mut live: Vec<(usize, Subscription)> = Vec::new();
    let mut next_id = (index as u64 + 1) * 1_000_000;
    let mut publishes = 0usize;

    let expect_for = |live: &[(usize, Subscription)], event: &Event| {
        let mut expected: Vec<(usize, u64)> = live
            .iter()
            .filter(|(_, sub)| sub.matches(event))
            .map(|(home, sub)| (*home, sub.id()))
            .collect();
        expected.sort_unstable();
        expected
    };
    let make_event = |rng: &mut Rng| {
        let x = slice_lo + rng.unit() * (slice_hi - slice_lo);
        let y = rng.unit() * DOMAIN;
        Event::new(&schema, vec![x, y]).expect("in-domain event")
    };

    for step in 0..OPS_PER_CLIENT {
        match rng.below(10) {
            0..=2 => {
                let lo = slice_lo + rng.unit() * (slice_hi - slice_lo) * 0.8;
                let hi = lo + rng.unit() * (slice_hi - lo);
                let y_lo = rng.unit() * DOMAIN * 0.8;
                let y_hi = y_lo + rng.unit() * (DOMAIN - y_lo);
                next_id += 1;
                let sub = SubscriptionBuilder::new(&schema)
                    .range("attr0", lo, hi)
                    .range("attr1", y_lo, y_hi)
                    .build(next_id)
                    .expect("well-formed subscription");
                let home = (next_id % BROKERS as u64) as usize;
                client
                    .subscribe(home, next_id, &sub)
                    .expect("subscribe rides out the fault schedule");
                live.push((home, sub));
            }
            3 | 4 => {
                if !live.is_empty() {
                    let victim = rng.below(live.len() as u64) as usize;
                    let (home, sub) = live.swap_remove(victim);
                    client
                        .unsubscribe(home, sub.id())
                        .expect("unsubscribe rides out the fault schedule");
                }
            }
            5 => {
                // Pipelined batch: partial failures must resume from the
                // acknowledged prefix without re-publishing acked events.
                let events: Vec<Event> = (0..4).map(|_| make_event(&mut rng)).collect();
                let deliveries = client
                    .publish_batch(step % BROKERS, &events)
                    .expect("batch rides out the fault schedule");
                assert_eq!(deliveries.len(), events.len());
                for (event, got) in events.iter().zip(&deliveries) {
                    assert_eq!(
                        *got,
                        expect_for(&live, event),
                        "client {index} step {step}: batch deliveries diverged \
                         from the oracle"
                    );
                }
                publishes += events.len();
            }
            _ => {
                let event = make_event(&mut rng);
                let deliveries = client
                    .publish(step % BROKERS, &event)
                    .expect("publish rides out the fault schedule");
                assert_eq!(
                    deliveries,
                    expect_for(&live, &event),
                    "client {index} step {step}: deliveries diverged from \
                     the oracle"
                );
                publishes += 1;
            }
        }
    }

    for (home, sub) in live {
        client
            .unsubscribe(home, sub.id())
            .expect("final drain rides out the fault schedule");
    }
    assert!(
        client.tracked_subscriptions().is_empty(),
        "drained client tracks nothing"
    );
    (publishes, client.stats())
}

/// Runs the concurrent churn mix against a daemon injecting `spec`.
fn churn_under(spec: &str) -> Vec<ClientStats> {
    let daemon = DaemonGuard::start(&["--chaos", spec]);
    let results: Vec<(usize, ClientStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|index| {
                let addr = daemon.addr.as_str();
                scope.spawn(move || churn(addr, index))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (index, (publishes, _)) in results.iter().enumerate() {
        assert!(
            *publishes > 0,
            "client {index} never published — churn mix degenerated"
        );
    }
    results.into_iter().map(|(_, stats)| stats).collect()
}

#[test]
fn churn_is_oracle_exact_under_dropped_responses() {
    churn_under("seed=11,drop=0.02");
}

#[test]
fn churn_is_oracle_exact_under_corrupted_frames() {
    churn_under("seed=12,corrupt=0.03");
}

#[test]
fn churn_is_oracle_exact_under_truncated_frames() {
    churn_under("seed=13,truncate=0.02");
}

#[test]
fn churn_is_oracle_exact_under_hard_disconnects() {
    churn_under("seed=14,disconnect=0.02");
}

#[test]
fn churn_is_oracle_exact_under_latency_jitter_and_stalls() {
    // Stalls stay under the request deadline: a pure-latency schedule is a
    // liveness check, not a failure drill.
    churn_under("seed=15,delay=0.3,delay-ms=2,stall=0.01,stall-ms=50");
}

#[test]
fn churn_is_oracle_exact_under_partial_writes() {
    // Capping every server write at 7 bytes must be invisible: buffered
    // writers loop, nothing times out, nobody retries.
    let stats = churn_under("seed=16,max-write=7");
    for (index, s) in stats.iter().enumerate() {
        assert_eq!(
            *s,
            ClientStats::default(),
            "client {index}: partial writes alone must not force repairs"
        );
    }
}

#[test]
fn churn_is_oracle_exact_under_the_full_fault_mix() {
    churn_under(
        "seed=17,drop=0.01,corrupt=0.02,truncate=0.01,disconnect=0.01,\
         delay=0.2,delay-ms=1,stall=0.005,stall-ms=50,max-write=64",
    );
}

#[test]
fn batched_publishes_are_oracle_exact_under_faults() {
    // Large pipelined batches take the daemon's batched execution path;
    // under drops and disconnects the resilient client resumes each batch
    // from its acknowledged prefix, and every event's deliveries must still
    // match the oracle exactly — no event lost, duplicated or re-executed.
    let daemon = DaemonGuard::start(&["--chaos", "seed=18,drop=0.02,disconnect=0.01"]);
    let mut client = ResilientClient::connect(&daemon.addr, chaos_policy(0xBA7C4))
        .expect("client connects under the fault schedule");
    let schema: Schema = client.schema().clone();
    let mut rng = Rng(0xFEED);
    let mut live: Vec<(usize, Subscription)> = Vec::new();
    for i in 0..6u64 {
        let lo = rng.unit() * DOMAIN * 0.7;
        let hi = lo + rng.unit() * (DOMAIN - lo);
        let sub = SubscriptionBuilder::new(&schema)
            .range("attr0", lo, hi)
            .range("attr1", 0.0, DOMAIN)
            .build(i + 1)
            .expect("well-formed subscription");
        let home = (i % BROKERS as u64) as usize;
        client.subscribe(home, i + 1, &sub).expect("subscribe");
        live.push((home, sub));
    }
    for round in 0..10 {
        let events: Vec<Event> = (0..16)
            .map(|_| {
                Event::new(&schema, vec![rng.unit() * DOMAIN, rng.unit() * DOMAIN])
                    .expect("in-domain event")
            })
            .collect();
        let deliveries = client
            .publish_batch(round % BROKERS, &events)
            .expect("the batch rides out the fault schedule");
        assert_eq!(deliveries.len(), events.len());
        for (event, got) in events.iter().zip(&deliveries) {
            let mut expected: Vec<(usize, u64)> = live
                .iter()
                .filter(|(_, sub)| sub.matches(event))
                .map(|(home, sub)| (*home, sub.id()))
                .collect();
            expected.sort_unstable();
            assert_eq!(*got, expected, "round {round}: batched deliveries diverged");
        }
    }
    for (home, sub) in live {
        client.unsubscribe(home, sub.id()).expect("final drain");
    }
}

#[test]
fn kill_nine_and_restart_mid_churn_leaves_every_client_resubscribed() {
    const SUBS_PER_CLIENT: usize = 4;
    let mut daemon = DaemonGuard::start(&[]);
    let addr = daemon.addr.clone();

    let stop = AtomicBool::new(false);
    let progress: Vec<AtomicU64> = (0..CLIENTS).map(|_| AtomicU64::new(0)).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|index| {
                let addr = addr.as_str();
                let stop = &stop;
                let progress = &progress[index];
                scope.spawn(move || {
                    // Patient enough to ride out the restart gap.
                    let policy = RetryPolicy {
                        max_attempts: 200,
                        base_backoff: Duration::from_millis(5),
                        max_backoff: Duration::from_millis(100),
                        request_timeout: Some(Duration::from_millis(500)),
                        jitter_seed: index as u64,
                    };
                    let mut client = ResilientClient::connect(addr, policy)
                        .expect("client connects before the outage");
                    let schema = client.schema().clone();
                    let width = DOMAIN / CLIENTS as f64;
                    let center = (index as f64 + 0.5) * width;
                    let mut expected = Vec::new();
                    for s in 0..SUBS_PER_CLIENT {
                        let id = (index as u64 + 1) * 1_000 + s as u64;
                        let sub = SubscriptionBuilder::new(&schema)
                            .range("attr0", center - width * 0.2, center + width * 0.2)
                            .range("attr1", 0.0, DOMAIN)
                            .build(id)
                            .expect("well-formed subscription");
                        let home = (id % BROKERS as u64) as usize;
                        client.subscribe(home, id, &sub).expect("subscribe");
                        expected.push((home, id));
                    }
                    expected.sort_unstable();
                    let event =
                        Event::new(&schema, vec![center, DOMAIN / 2.0]).expect("in-domain event");
                    // Publish continuously across the kill and the restart:
                    // every acknowledged publish must deliver to the full
                    // replayed subscription set.
                    let mut step = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let deliveries = client
                            .publish(step % BROKERS, &event)
                            .expect("publish rides through kill-9 and restart");
                        assert_eq!(
                            deliveries, expected,
                            "client {index}: replayed subscription set diverged"
                        );
                        progress.fetch_add(1, Ordering::Relaxed);
                        step += 1;
                    }
                    assert_eq!(
                        client.tracked_subscriptions().len(),
                        SUBS_PER_CLIENT,
                        "client {index} still tracks its whole live set"
                    );
                    client.stats()
                })
            })
            .collect();

        // Let every client get some churn in, then pull the rug.
        let wait_for = |floor: Vec<u64>| {
            let deadline = Instant::now() + Duration::from_secs(30);
            while progress
                .iter()
                .zip(&floor)
                .any(|(p, f)| p.load(Ordering::Relaxed) < *f)
            {
                assert!(Instant::now() < deadline, "clients stopped making progress");
                std::thread::sleep(Duration::from_millis(10));
            }
        };
        wait_for(vec![5; CLIENTS]);
        daemon.kill_nine();
        std::thread::sleep(Duration::from_millis(200));
        daemon = restart_on(&addr, &[]);
        // Every client must publish successfully against the *restarted*
        // daemon before we stop — that forces reconnect + full replay.
        let snapshot: Vec<u64> = progress
            .iter()
            .map(|p| p.load(Ordering::Relaxed) + 5)
            .collect();
        wait_for(snapshot);
        stop.store(true, Ordering::Relaxed);

        for (index, handle) in handles.into_iter().enumerate() {
            let stats = handle.join().expect("client thread");
            assert!(
                stats.reconnects >= 1,
                "client {index} rode through the restart without reconnecting? \
                 stats: {stats:?}"
            );
        }
    });
    drop(daemon);
}

#[test]
fn overload_answers_rejected_within_the_deadline() {
    let daemon = DaemonGuard::start(&["--max-connections", "1"]);
    let _first = BrokerClient::connect(&daemon.addr).expect("first connection fits under the cap");
    let started = Instant::now();
    let second = BrokerClient::connect(&daemon.addr);
    let elapsed = started.elapsed();
    match second {
        Err(ServiceError::Overloaded { reason }) => {
            assert!(
                reason.contains("connection cap"),
                "rejection names the cap: {reason:?}"
            );
        }
        other => panic!("expected a typed Overloaded rejection, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(2),
        "Rejected must arrive within the deadline, took {elapsed:?}"
    );
}

#[test]
fn resilient_client_surfaces_overload_after_bounded_retries() {
    let daemon = DaemonGuard::start(&["--max-connections", "1"]);
    let _first = BrokerClient::connect(&daemon.addr).expect("first connection fits under the cap");
    let policy = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        request_timeout: Some(Duration::from_secs(2)),
        jitter_seed: 9,
    };
    let gave_up = ResilientClient::connect(&daemon.addr, policy)
        .expect_err("a capped daemon refuses the second client");
    assert_eq!(gave_up.attempts, 3);
    assert!(
        matches!(gave_up.error, ServiceError::Overloaded { .. }),
        "typed overload, not a generic I/O error: {:?}",
        gave_up.error
    );
}
