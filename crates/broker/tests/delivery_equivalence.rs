//! Randomized (but deterministic) end-to-end safety test: whatever covering
//! policy the brokers use, every subscriber receives exactly the same events
//! as under flooding.

use acd_broker::{BrokerConfig, Topology};
use acd_covering::CoveringPolicy;
use acd_workload::{EventWorkload, Scenario, SubscriptionWorkload};

fn run_policy(
    policy: CoveringPolicy,
    topology: &Topology,
    seed: u64,
    subs: usize,
    events: usize,
) -> (Vec<Vec<(usize, u64)>>, acd_broker::NetworkMetrics) {
    let config = Scenario::UniformBaseline.workload_config(seed);
    let mut sub_workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = sub_workload.schema().clone();
    let subscriptions = sub_workload.take(subs);
    let mut event_workload = EventWorkload::with_schema(&config, &schema).unwrap();
    let published = event_workload.take(events);

    let net = BrokerConfig::new(topology.clone(), &schema)
        .policy(policy)
        .build()
        .unwrap();
    for (i, s) in subscriptions.iter().enumerate() {
        net.subscribe((i * 3) % topology.brokers(), i as u64, s)
            .unwrap();
    }
    let mut deliveries = Vec::new();
    for (i, e) in published.iter().enumerate() {
        deliveries.push(net.publish((i * 7) % topology.brokers(), e).unwrap());
    }
    (deliveries, net.metrics())
}

#[test]
fn all_policies_deliver_identically_on_all_topologies() {
    let topologies = [
        Topology::line(6).unwrap(),
        Topology::star(8).unwrap(),
        Topology::balanced_tree(2, 3).unwrap(),
        Topology::random_tree(12, 3).unwrap(),
    ];
    let policies = [
        CoveringPolicy::None,
        CoveringPolicy::ExactLinear,
        CoveringPolicy::ExactSfc,
        CoveringPolicy::Approximate { epsilon: 0.1 },
    ];
    for (t_index, topology) in topologies.iter().enumerate() {
        let seed = 100 + t_index as u64;
        let (reference, flood_metrics) = run_policy(policies[0], topology, seed, 200, 40);
        for &policy in &policies[1..] {
            let (deliveries, metrics) = run_policy(policy, topology, seed, 200, 40);
            assert_eq!(
                deliveries, reference,
                "policy {policy:?} changed deliveries on topology {t_index}"
            );
            assert!(
                metrics.subscription_messages <= flood_metrics.subscription_messages,
                "covering must never increase subscription traffic"
            );
            assert!(metrics.routing_table_entries <= flood_metrics.routing_table_entries);
        }
    }
}

#[test]
fn exact_covering_suppresses_more_than_approximate_never_more_than_flooding() {
    let topology = Topology::balanced_tree(2, 3).unwrap();
    let (_, flood) = run_policy(CoveringPolicy::None, &topology, 7, 600, 10);
    let (_, exact) = run_policy(CoveringPolicy::ExactSfc, &topology, 7, 600, 10);
    let (_, approx) = run_policy(
        CoveringPolicy::Approximate { epsilon: 0.2 },
        &topology,
        7,
        600,
        10,
    );
    assert!(exact.subscription_messages <= approx.subscription_messages);
    assert!(approx.subscription_messages <= flood.subscription_messages);
    assert!(exact.subscriptions_suppressed >= approx.subscriptions_suppressed);
    assert_eq!(flood.subscriptions_suppressed, 0);
    // Covering work only happens under covering policies.
    assert_eq!(flood.covering_queries, 0);
    assert!(exact.covering_queries > 0);
}
