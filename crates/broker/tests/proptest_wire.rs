//! Property tests for the daemon wire codec: every frame survives an
//! encode/decode round trip, and a flipped byte anywhere in a frame is
//! caught by the header checks or the checksum — reported as an error,
//! never a panic, never a silently different frame.

use acd_broker::wire::{encode_frame, read_frame, Frame, FOOTER_LEN, HEADER_LEN};
use proptest::prelude::*;

/// ASCII strings, so `Hello`/`Err` payloads stay valid UTF-8 by
/// construction (the codec re-checks on decode anyway).
fn ascii_string() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..48)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII is UTF-8"))
}

/// `f64`s that round-trip bit-exactly through the codec, including the
/// values a real schema produces and the edges (infinities, extremes).
fn wire_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..1_000_000.0,
        Just(0.0),
        Just(-0.0),
        Just(f64::MAX),
        Just(f64::MIN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
    ]
}

fn any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        ascii_string().prop_map(|schema_json| Frame::Hello { schema_json }),
        (
            0usize..64,
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec((wire_f64(), wire_f64()), 0..6),
        )
            .prop_map(|(at, client, id, bounds)| Frame::Subscribe {
                at,
                client,
                id,
                bounds,
            }),
        (0usize..64, any::<u64>()).prop_map(|(at, id)| Frame::Unsubscribe { at, id }),
        (0usize..64, prop::collection::vec(wire_f64(), 0..6))
            .prop_map(|(at, values)| Frame::Publish { at, values }),
        prop::collection::vec((0usize..64, any::<u64>()), 0..10)
            .prop_map(|pairs| Frame::Deliveries { pairs }),
        Just(Frame::Ok),
        ascii_string().prop_map(|message| Frame::Err { message }),
        ascii_string().prop_map(|reason| Frame::Rejected { reason }),
        (
            0usize..64,
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec((wire_f64(), wire_f64()), 0..6),
            any::<u64>(),
        )
            .prop_map(|(at, client, id, bounds, epoch)| Frame::Resubscribe {
                at,
                client,
                id,
                bounds,
                epoch,
            }),
        (0usize..64, any::<u64>(), any::<u64>()).prop_map(|(at, id, epoch)| Frame::Retract {
            at,
            id,
            epoch
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_frame_round_trips(frame in any_frame()) {
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        prop_assert!(buf.len() >= HEADER_LEN + FOOTER_LEN);
        let mut scratch = Vec::new();
        let decoded = read_frame(&mut buf.as_slice(), &mut scratch)
            .expect("encoded frame must decode");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn a_flipped_byte_is_an_error_never_a_panic(
        frame in any_frame(),
        position in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let index = (position % buf.len() as u64) as usize;
        buf[index] ^= 1 << bit;
        let mut scratch = Vec::new();
        let result = read_frame(&mut buf.as_slice(), &mut scratch);
        prop_assert!(
            result.is_err(),
            "flipping byte {} bit {} of a {} frame went undetected",
            index,
            bit,
            frame.kind_name()
        );
    }

    #[test]
    fn any_truncation_is_an_error_never_a_panic(
        frame in any_frame(),
        cut in any::<u64>(),
    ) {
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let cut = (cut % buf.len() as u64) as usize;
        let mut scratch = Vec::new();
        prop_assert!(read_frame(&mut &buf[..cut], &mut scratch).is_err());
    }

    #[test]
    fn arbitrary_garbage_never_panics_the_reader(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut scratch = Vec::new();
        // Decoding random bytes may or may not fail at any stage; the only
        // contract is that it never panics and never loops.
        let _ = read_frame(&mut bytes.as_slice(), &mut scratch);
    }
}
