//! End-to-end integration test: start the real `acd-brokerd` binary on a
//! loopback ephemeral port, drive a churn mix from several concurrent
//! client connections, and assert that the delivered event sets exactly
//! equal an in-process oracle's.
//!
//! Each connection owns a disjoint slice of `attr0`'s domain and unique
//! subscription/client id spaces, so its deliveries are exactly
//! predictable from its own live set regardless of how the daemon's
//! worker team interleaves the connections.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use acd_broker::{BrokerClient, ServiceError};
use acd_subscription::{Event, Schema, Subscription, SubscriptionBuilder};

const CONNECTIONS: usize = 4;
const OPS_PER_CONNECTION: usize = 200;
const BROKERS: usize = 8;
/// The workload schema domain (`acd_workload::WorkloadConfig::DOMAIN_MAX`).
const DOMAIN: f64 = 1_000_000.0;

/// The daemon process, killed on drop so a failing test never leaks it.
struct DaemonGuard {
    child: Child,
    addr: String,
}

impl DaemonGuard {
    fn start(policy: &str) -> DaemonGuard {
        let mut child = Command::new(env!("CARGO_BIN_EXE_acd-brokerd"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--topology",
                "random",
                "--brokers",
                &BROKERS.to_string(),
                "--policy",
                policy,
                "--workers",
                &CONNECTIONS.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn acd-brokerd");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the listening line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected daemon greeting: {line:?}"))
            .to_string();
        DaemonGuard { child, addr }
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Deterministic splitmix64, one per connection.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives one connection's churn mix, asserting oracle-exact deliveries
/// after every publish. Returns the number of publishes checked.
fn drive(addr: &str, index: usize) -> Result<usize, ServiceError> {
    let mut client = BrokerClient::connect(addr)?;
    let schema: Schema = client.schema().clone();
    assert_eq!(
        schema.arity(),
        2,
        "daemon serves the 2-attribute workload schema"
    );

    let mut rng = Rng(0xE2E0 + index as u64);
    let width = DOMAIN / CONNECTIONS as f64;
    // Margins keep neighboring slices out of each other's grid cells.
    let (slice_lo, slice_hi) = (
        index as f64 * width + width * 0.05,
        (index + 1) as f64 * width - width * 0.05,
    );
    let mut live: Vec<(usize, Subscription)> = Vec::new();
    let mut next_id = (index as u64) * 1_000_000;
    let mut publishes = 0usize;

    for step in 0..OPS_PER_CONNECTION {
        match rng.below(10) {
            0..=3 => {
                let lo = slice_lo + rng.unit() * (slice_hi - slice_lo) * 0.8;
                let hi = lo + rng.unit() * (slice_hi - lo);
                let y_lo = rng.unit() * DOMAIN * 0.8;
                let y_hi = y_lo + rng.unit() * (DOMAIN - y_lo);
                next_id += 1;
                let sub = SubscriptionBuilder::new(&schema)
                    .range("attr0", lo, hi)
                    .range("attr1", y_lo, y_hi)
                    .build(next_id)
                    .map_err(|e| ServiceError::Io(e.to_string()))?;
                let home = (next_id % BROKERS as u64) as usize;
                client.subscribe(home, next_id, &sub)?;
                live.push((home, sub));
            }
            4 | 5 => {
                if !live.is_empty() {
                    let victim = rng.below(live.len() as u64) as usize;
                    let (home, sub) = live.swap_remove(victim);
                    client.unsubscribe(home, sub.id())?;
                }
            }
            _ => {
                let x = slice_lo + rng.unit() * (slice_hi - slice_lo);
                let y = rng.unit() * DOMAIN;
                let event =
                    Event::new(&schema, vec![x, y]).map_err(|e| ServiceError::Io(e.to_string()))?;
                let deliveries = client.publish(step % BROKERS, &event)?;
                let mut expected: Vec<(usize, u64)> = live
                    .iter()
                    .filter(|(_, sub)| sub.matches(&event))
                    .map(|(home, sub)| (*home, sub.id()))
                    .collect();
                expected.sort_unstable();
                assert_eq!(
                    deliveries, expected,
                    "connection {index} step {step}: daemon deliveries diverged \
                     from the in-process oracle"
                );
                publishes += 1;
            }
        }
    }

    for (home, sub) in live {
        client.unsubscribe(home, sub.id())?;
    }
    Ok(publishes)
}

fn churn_over_daemon(policy: &str) {
    let daemon = DaemonGuard::start(policy);
    let checked: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNECTIONS)
            .map(|index| {
                let addr = daemon.addr.as_str();
                scope.spawn(move || drive(addr, index))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("connection thread")
                    .expect("connection ran clean")
            })
            .collect()
    });
    // Every connection actually exercised the publish path.
    for (index, publishes) in checked.iter().enumerate() {
        assert!(
            *publishes > 0,
            "connection {index} never published — churn mix degenerated"
        );
    }
}

#[test]
fn concurrent_connections_get_oracle_exact_deliveries_exact_sfc() {
    churn_over_daemon("exact-sfc");
}

#[test]
fn concurrent_connections_get_oracle_exact_deliveries_flooding() {
    churn_over_daemon("none");
}

#[test]
fn load_generator_completes_against_a_live_daemon() {
    let daemon = DaemonGuard::start("exact-sfc");
    let status = Command::new(env!("CARGO_BIN_EXE_acd-brokerload"))
        .args([
            "--addr",
            &daemon.addr,
            "--connections",
            "4",
            "--ops",
            "150",
            "--brokers",
            &BROKERS.to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn acd-brokerload");
    assert!(status.success(), "load generator failed: {status}");
}
