use std::error::Error;
use std::fmt;

use acd_covering::CoveringError;
use acd_subscription::SubscriptionError;

/// Error type for the broker overlay simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BrokerError {
    /// A topology was requested with an invalid shape.
    InvalidTopology {
        /// Human readable reason.
        reason: String,
    },
    /// A broker identifier is out of range for the topology.
    UnknownBroker {
        /// The offending identifier.
        id: usize,
        /// Number of brokers in the network.
        brokers: usize,
    },
    /// A subscription identifier was registered twice in the network.
    DuplicateSubscription {
        /// The offending identifier.
        id: u64,
    },
    /// An unsubscribe referenced an identifier that is not registered at the
    /// given broker.
    UnknownSubscription {
        /// The offending identifier.
        id: u64,
    },
    /// An error bubbled up from the covering index.
    Covering(CoveringError),
    /// An error bubbled up from the subscription data model.
    Subscription(SubscriptionError),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            BrokerError::UnknownBroker { id, brokers } => {
                write!(
                    f,
                    "broker {id} does not exist (network has {brokers} brokers)"
                )
            }
            BrokerError::DuplicateSubscription { id } => {
                write!(f, "subscription {id} is already registered in the network")
            }
            BrokerError::UnknownSubscription { id } => {
                write!(f, "subscription {id} is not registered at that broker")
            }
            BrokerError::Covering(e) => write!(f, "covering index error: {e}"),
            BrokerError::Subscription(e) => write!(f, "subscription error: {e}"),
        }
    }
}

impl Error for BrokerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BrokerError::Covering(e) => Some(e),
            BrokerError::Subscription(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoveringError> for BrokerError {
    fn from(e: CoveringError) -> Self {
        BrokerError::Covering(e)
    }
}

impl From<SubscriptionError> for BrokerError {
    fn from(e: SubscriptionError) -> Self {
        BrokerError::Subscription(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BrokerError = CoveringError::SchemaMismatch.into();
        assert!(Error::source(&e).is_some());
        let e: BrokerError = SubscriptionError::SchemaMismatch.into();
        assert!(e.to_string().contains("subscription"));
        let e = BrokerError::UnknownBroker { id: 7, brokers: 3 };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: Send + Sync + 'static>() {}
        assert_traits::<BrokerError>();
    }
}
