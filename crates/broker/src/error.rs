use std::error::Error;
use std::fmt;

use acd_covering::CoveringError;
use acd_subscription::SubscriptionError;

/// Error type for the broker overlay simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BrokerError {
    /// A topology was requested with an invalid shape.
    InvalidTopology {
        /// Human readable reason.
        reason: String,
    },
    /// A broker identifier is out of range for the topology.
    UnknownBroker {
        /// The offending identifier.
        id: usize,
        /// Number of brokers in the network.
        brokers: usize,
    },
    /// A subscription identifier was registered twice in the network.
    DuplicateSubscription {
        /// The offending identifier.
        id: u64,
    },
    /// An unsubscribe referenced an identifier that is not registered at the
    /// given broker.
    UnknownSubscription {
        /// The offending identifier.
        id: u64,
    },
    /// An error bubbled up from the covering index.
    Covering(CoveringError),
    /// An error bubbled up from the subscription data model.
    Subscription(SubscriptionError),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            BrokerError::UnknownBroker { id, brokers } => {
                write!(
                    f,
                    "broker {id} does not exist (network has {brokers} brokers)"
                )
            }
            BrokerError::DuplicateSubscription { id } => {
                write!(f, "subscription {id} is already registered in the network")
            }
            BrokerError::UnknownSubscription { id } => {
                write!(f, "subscription {id} is not registered at that broker")
            }
            BrokerError::Covering(e) => write!(f, "covering index error: {e}"),
            BrokerError::Subscription(e) => write!(f, "subscription error: {e}"),
        }
    }
}

impl Error for BrokerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BrokerError::Covering(e) => Some(e),
            BrokerError::Subscription(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoveringError> for BrokerError {
    fn from(e: CoveringError) -> Self {
        BrokerError::Covering(e)
    }
}

impl From<SubscriptionError> for BrokerError {
    fn from(e: SubscriptionError) -> Self {
        BrokerError::Subscription(e)
    }
}

/// Error type for the daemon/client service layer: transport failures, wire
/// corruption, protocol violations, and broker errors relayed back to the
/// caller.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// A socket operation failed (the `io::Error` rendered to text so the
    /// variant stays `Clone + PartialEq` for tests).
    Io(String),
    /// A frame failed structural validation: bad magic, bad length, a
    /// checksum mismatch, or a truncated stream.
    CorruptFrame {
        /// What exactly failed to validate.
        reason: String,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version byte the peer sent.
        found: u8,
    },
    /// A structurally valid frame arrived where the protocol does not allow
    /// it (e.g. a request frame on a client, or a second `Hello`).
    UnexpectedFrame {
        /// The frame kind that arrived.
        kind: String,
    },
    /// The daemon rejected the request; the broker error is relayed as text
    /// so client and server need not share error representations.
    Rejected {
        /// The daemon-side error message.
        message: String,
    },
    /// The daemon is shedding load: it refused the connection or declined
    /// to execute the request. Unlike [`Rejected`](Self::Rejected) nothing
    /// was applied, so the operation is safe to retry after backing off.
    Overloaded {
        /// The daemon-side shedding reason.
        reason: String,
    },
    /// An error from the in-process broker overlay.
    Broker(BrokerError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::CorruptFrame { reason } => write!(f, "corrupt frame: {reason}"),
            ServiceError::VersionMismatch { found } => {
                write!(f, "peer speaks protocol version {found}, expected 1")
            }
            ServiceError::UnexpectedFrame { kind } => {
                write!(f, "unexpected {kind} frame at this point of the protocol")
            }
            ServiceError::Rejected { message } => write!(f, "request rejected: {message}"),
            ServiceError::Overloaded { reason } => write!(f, "daemon overloaded: {reason}"),
            ServiceError::Broker(e) => write!(f, "broker error: {e}"),
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Broker(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e.to_string())
    }
}

impl From<BrokerError> for ServiceError {
    fn from(e: BrokerError) -> Self {
        ServiceError::Broker(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BrokerError = CoveringError::SchemaMismatch.into();
        assert!(Error::source(&e).is_some());
        let e: BrokerError = SubscriptionError::SchemaMismatch.into();
        assert!(e.to_string().contains("subscription"));
        let e = BrokerError::UnknownBroker { id: 7, brokers: 3 };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: Send + Sync + 'static>() {}
        assert_traits::<BrokerError>();
        assert_traits::<ServiceError>();
    }

    #[test]
    fn service_error_conversions_and_display() {
        let e: ServiceError = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone").into();
        assert!(e.to_string().contains("gone"));
        let e: ServiceError = BrokerError::UnknownSubscription { id: 4 }.into();
        assert!(Error::source(&e).is_some());
        let e = ServiceError::CorruptFrame {
            reason: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("checksum"));
        assert!(ServiceError::VersionMismatch { found: 9 }
            .to_string()
            .contains('9'));
        let e = ServiceError::Overloaded {
            reason: "connection cap reached".into(),
        };
        assert!(e.to_string().contains("overloaded"));
    }
}
