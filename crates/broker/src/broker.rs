//! A single broker: local clients, per-interface routing tables and
//! per-interface covering suppression state.

use std::collections::{HashMap, HashSet};

use acd_covering::{CoveringIndex, CoveringPolicy};
use acd_subscription::{Event, Schema, SubId, Subscription};

use crate::Result;

/// Identifier of a broker inside a [`crate::BrokerNetwork`] (an index into
/// the topology).
pub type BrokerId = usize;

/// Identifier of a client attached to a broker.
pub type ClientId = u64;

/// Where a subscription entered this broker from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interface {
    /// Registered by a client attached to this broker.
    Local,
    /// Received from the neighboring broker with this identifier.
    Neighbor(BrokerId),
}

/// One broker of the overlay.
///
/// A broker keeps three kinds of state:
///
/// * `local`: subscriptions registered by clients attached to it (with the
///   owning client, so deliveries can be attributed);
/// * `received`: per-interface routing tables — the subscriptions received
///   from each neighbor, used to decide where an event must be forwarded;
/// * `sent`: per-neighbor covering indexes over the subscriptions this broker
///   has already forwarded to that neighbor; a new subscription is only
///   forwarded if no already-sent subscription covers it (sender-side
///   suppression).
#[derive(Debug)]
pub struct Broker {
    id: BrokerId,
    /// Subscriptions registered by local clients.
    local: Vec<(ClientId, Subscription)>,
    /// Routing table: subscriptions received from each neighbor.
    received: HashMap<BrokerId, Vec<Subscription>>,
    /// Covering indexes over subscriptions already sent to each neighbor
    /// (`None` when the policy disables covering).
    sent: HashMap<BrokerId, Option<Box<dyn CoveringIndex>>>,
    /// Number of subscriptions sent to each neighbor (equals the neighbor's
    /// routing-table entries for this link).
    sent_counts: HashMap<BrokerId, u64>,
    /// Identifiers actually sent on each link — the authoritative record
    /// unsubscription uses to know which links must retract.
    sent_ids: HashMap<BrokerId, HashSet<SubId>>,
    /// Subscriptions this broker wanted to send on each link but suppressed
    /// because a covering subscription had already been sent. Kept (in
    /// arrival order) so that removing the covering subscription can
    /// re-advertise exactly the ones it was masking.
    suppressed: HashMap<BrokerId, Vec<Subscription>>,
    /// Identifiers currently in each link's suppressed list, mirrored so
    /// the dedup check on suppression is O(1) instead of a list scan.
    suppressed_ids: HashMap<BrokerId, HashSet<SubId>>,
}

impl Broker {
    /// Creates a broker with suppression state for each of its neighbors.
    ///
    /// # Errors
    ///
    /// Returns an error if the covering policy cannot build its index.
    pub fn new(
        id: BrokerId,
        neighbors: &[BrokerId],
        schema: &Schema,
        policy: CoveringPolicy,
    ) -> Result<Self> {
        let mut sent = HashMap::new();
        let mut sent_counts = HashMap::new();
        for &n in neighbors {
            sent.insert(n, policy.build_index(schema)?);
            sent_counts.insert(n, 0);
        }
        Ok(Broker {
            id,
            local: Vec::new(),
            received: neighbors.iter().map(|&n| (n, Vec::new())).collect(),
            sent,
            sent_counts,
            sent_ids: neighbors.iter().map(|&n| (n, HashSet::new())).collect(),
            suppressed: neighbors.iter().map(|&n| (n, Vec::new())).collect(),
            suppressed_ids: neighbors.iter().map(|&n| (n, HashSet::new())).collect(),
        })
    }

    /// This broker's identifier.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// Registers a subscription from a local client.
    pub fn add_local(&mut self, client: ClientId, subscription: Subscription) {
        self.local.push((client, subscription));
    }

    /// Records a subscription received from a neighbor (a routing-table
    /// entry).
    pub fn add_received(&mut self, from: BrokerId, subscription: Subscription) {
        self.received.entry(from).or_default().push(subscription);
    }

    /// Number of local subscriptions.
    pub fn local_subscriptions(&self) -> usize {
        self.local.len()
    }

    /// Total routing-table entries (received subscriptions over all
    /// interfaces).
    pub fn routing_table_entries(&self) -> usize {
        self.received.values().map(|v| v.len()).sum()
    }

    /// Decides whether `subscription` must be forwarded to `neighbor`,
    /// consulting (and updating) the per-neighbor covering index.
    ///
    /// Returns `(forward, query_was_issued, runs_probed, comparisons)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the covering index rejects the subscription.
    pub fn should_forward(
        &mut self,
        neighbor: BrokerId,
        subscription: &Subscription,
    ) -> Result<ForwardDecision> {
        let slot = self
            .sent
            .get_mut(&neighbor)
            .expect("neighbor interfaces are created at construction");
        let decision = match slot {
            None => {
                // No covering detection: always forward.
                ForwardDecision {
                    forward: true,
                    covering_query: false,
                    runs_probed: 0,
                    comparisons: 0,
                }
            }
            Some(index) => {
                let outcome = index.find_covering(subscription)?;
                if outcome.is_covered() {
                    ForwardDecision {
                        forward: false,
                        covering_query: true,
                        runs_probed: outcome.stats.runs_probed,
                        comparisons: outcome.stats.subscriptions_compared,
                    }
                } else {
                    index.insert(subscription)?;
                    ForwardDecision {
                        forward: true,
                        covering_query: true,
                        runs_probed: outcome.stats.runs_probed,
                        comparisons: outcome.stats.subscriptions_compared,
                    }
                }
            }
        };
        if decision.forward {
            *self
                .sent_counts
                .get_mut(&neighbor)
                .expect("interface exists") += 1;
            self.sent_ids
                .get_mut(&neighbor)
                .expect("interface exists")
                .insert(subscription.id());
        } else {
            // Covered chains can re-suppress a subscription that is already
            // recorded (e.g. a retraction's re-advertisement masked by
            // another still-sent cover); keep one entry per identifier so
            // the list is bounded by the live suppressed population.
            if self
                .suppressed_ids
                .get_mut(&neighbor)
                .expect("interface exists")
                .insert(subscription.id())
            {
                self.suppressed
                    .get_mut(&neighbor)
                    .expect("interface exists")
                    .push(subscription.clone());
            }
        }
        Ok(decision)
    }

    /// Whether `id` was actually sent on the link to `neighbor`.
    pub fn was_sent(&self, neighbor: BrokerId, id: SubId) -> bool {
        self.sent_ids
            .get(&neighbor)
            .is_some_and(|ids| ids.contains(&id))
    }

    /// Removes a local subscription by identifier, returning it (with its
    /// owning client) if it was registered here.
    pub fn remove_local(&mut self, id: SubId) -> Option<(ClientId, Subscription)> {
        let pos = self.local.iter().position(|(_, s)| s.id() == id)?;
        Some(self.local.remove(pos))
    }

    /// Removes a routing-table entry received from `neighbor`, returning
    /// whether it was present.
    pub fn remove_received(&mut self, from: BrokerId, id: SubId) -> bool {
        match self.received.get_mut(&from) {
            Some(subs) => match subs.iter().position(|s| s.id() == id) {
                Some(pos) => {
                    subs.remove(pos);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Drops `id` from the suppressed list of the link to `neighbor` (used
    /// when the unsubscribed subscription itself never made it onto the
    /// link).
    pub fn drop_suppressed(&mut self, neighbor: BrokerId, id: SubId) {
        if let Some(ids) = self.suppressed_ids.get_mut(&neighbor) {
            if ids.remove(&id) {
                self.suppressed
                    .get_mut(&neighbor)
                    .expect("lists and id sets cover the same links")
                    .retain(|s| s.id() != id);
            }
        }
    }

    /// Total suppressed entries across every link (diagnostics: under a
    /// compacted broker this is bounded by the live suppressed population,
    /// not by the churn history).
    pub fn suppressed_entries(&self) -> usize {
        self.suppressed.values().map(|v| v.len()).sum()
    }

    /// Compacts every link's suppressed list: drops entries whose
    /// subscription is no longer live (the `live` predicate says which
    /// still are) and collapses duplicate identifiers left by covered
    /// chains. Called by the network on the unsubscribe path — while
    /// holding this broker's lock, with the predicate reading the live
    /// registration map — so suppressed state tracks the live population
    /// instead of the churn history.
    pub fn compact_suppressed<F: Fn(SubId) -> bool>(&mut self, live: F) {
        for (neighbor, list) in &mut self.suppressed {
            let ids = self
                .suppressed_ids
                .get_mut(neighbor)
                .expect("lists and id sets cover the same links");
            ids.clear();
            list.retain(|s| live(s.id()) && ids.insert(s.id()));
        }
    }

    /// Retracts `removed` from the link to `neighbor`: deletes it from the
    /// per-link covering index and sent set, then re-checks every suppressed
    /// subscription the removed one was covering. Each candidate is re-run
    /// through [`should_forward`](Self::should_forward) — it either goes out
    /// now (appearing in the returned list with its decision) or is
    /// re-suppressed by another still-sent cover.
    ///
    /// # Errors
    ///
    /// Returns an error if the covering index rejects a removal or a
    /// re-advertisement query.
    pub fn retract_sent(
        &mut self,
        neighbor: BrokerId,
        removed: &Subscription,
    ) -> Result<Vec<(Subscription, ForwardDecision)>> {
        let id = removed.id();
        debug_assert!(self.was_sent(neighbor, id));
        self.sent_ids
            .get_mut(&neighbor)
            .expect("interface exists")
            .remove(&id);
        if let Some(count) = self.sent_counts.get_mut(&neighbor) {
            *count = count.saturating_sub(1);
        }
        if let Some(Some(index)) = self.sent.get_mut(&neighbor) {
            if index.contains(id) {
                index.remove(id)?;
            }
        }
        // Pull out the suppressed subscriptions the removed one covers; the
        // rest cannot have been masked by it and stay untouched.
        let list = self
            .suppressed
            .get_mut(&neighbor)
            .expect("interface exists");
        let ids = self
            .suppressed_ids
            .get_mut(&neighbor)
            .expect("lists and id sets cover the same links");
        let mut candidates = Vec::new();
        let mut kept = Vec::with_capacity(list.len());
        for sub in list.drain(..) {
            if removed.covers(&sub) {
                ids.remove(&sub.id());
                candidates.push(sub);
            } else {
                kept.push(sub);
            }
        }
        *list = kept;
        let mut decisions = Vec::with_capacity(candidates.len());
        for candidate in candidates {
            let decision = self.should_forward(neighbor, &candidate)?;
            decisions.push((candidate, decision));
        }
        Ok(decisions)
    }

    /// Local clients whose subscriptions match `event`, one entry per
    /// matching subscription, as a borrowing iterator — the allocation-free
    /// form used on the event delivery hot path (a broker fanning out
    /// thousands of events per second would otherwise build a fresh `Vec`
    /// per event).
    // acd-lint: hot
    pub fn matching_local_clients_iter<'a>(
        &'a self,
        event: &'a Event,
    ) -> impl Iterator<Item = (ClientId, SubId)> + 'a {
        self.local
            .iter()
            .filter(move |(_, s)| s.matches(event))
            .map(|(c, s)| (*c, s.id()))
    }

    /// Local clients whose subscriptions match `event`, collected into a
    /// vector. Prefer
    /// [`matching_local_clients_iter`](Self::matching_local_clients_iter)
    /// on hot paths.
    pub fn matching_local_clients(&self, event: &Event) -> Vec<(ClientId, SubId)> {
        self.matching_local_clients_iter(event).collect()
    }

    /// Batched form of
    /// [`matching_local_clients_iter`](Self::matching_local_clients_iter):
    /// calls `deliver(chunk event index, client)` for every (local
    /// subscription, event) match over the chunk events selected by the
    /// `active` bitmask. Subscription-outer / event-inner: each
    /// subscription's bounds are loaded once and compared against whole
    /// attribute columns (see [`EventChunk::match_mask`]); allocation-free.
    /// Match order differs from the per-event sweep, which is fine — the
    /// publish path sorts and dedups deliveries per event.
    // acd-lint: hot
    pub fn matching_local_clients_mask<F: FnMut(usize, ClientId)>(
        &self,
        chunk: &EventChunk<'_>,
        active: u64,
        mut deliver: F,
    ) {
        for (client, s) in &self.local {
            let mut mask = chunk.match_mask(s, active);
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                deliver(i, *client);
            }
        }
    }

    /// Batched form of [`neighbor_interested`](Self::neighbor_interested):
    /// the bitmask of `active` chunk events that match at least one
    /// subscription received from `neighbor`. Subscription-outer with a
    /// shrinking remaining set: an event leaves the remaining mask the
    /// moment one subscription claims it, so a broad subscription settles
    /// the whole chunk in one pass. Allocation-free.
    // acd-lint: hot
    pub fn neighbor_interested_mask(
        &self,
        neighbor: BrokerId,
        chunk: &EventChunk<'_>,
        active: u64,
    ) -> u64 {
        let Some(subs) = self.received.get(&neighbor) else {
            return 0;
        };
        let mut interested = 0u64;
        for s in subs {
            let remaining = active & !interested;
            if remaining == 0 {
                break;
            }
            interested |= chunk.match_mask(s, remaining);
        }
        interested
    }

    /// Whether any subscription received from `neighbor` matches `event`
    /// (i.e. the event must be forwarded toward that neighbor).
    pub fn neighbor_interested(&self, neighbor: BrokerId, event: &Event) -> bool {
        self.received
            .get(&neighbor)
            .map(|subs| subs.iter().any(|s| s.matches(event)))
            .unwrap_or(false)
    }

    /// Number of subscriptions this broker has sent to `neighbor`.
    pub fn sent_to(&self, neighbor: BrokerId) -> u64 {
        self.sent_counts.get(&neighbor).copied().unwrap_or(0)
    }
}

/// A column-major (structure-of-arrays) view over one chunk of at most 64
/// batched events: `columns[attr]` holds attribute `attr` of every event in
/// the batch, and the chunk windows `offset..offset + len` of each column.
///
/// The batched publish path builds the columns once per batch
/// ([`BrokerNetwork::publish_batch`]) and evaluates one subscription against
/// a whole chunk with branchless per-attribute range compares accumulated
/// into a `u64` bitmask — four comparator lanes at a time, the same shape as
/// the `acd_sfc::simd` lower-bound kernels — instead of one virtual
/// [`Subscription::matches`] walk (with its per-call schema comparison) per
/// (subscription, event) pair.
///
/// [`BrokerNetwork::publish_batch`]: crate::BrokerNetwork::publish_batch
#[derive(Debug, Clone, Copy)]
pub struct EventChunk<'a> {
    columns: &'a [Vec<f64>],
    offset: usize,
    len: usize,
    /// Bits of chunk events that belong to the expected schema. Events of a
    /// foreign schema keep their column slot (as NaN) but never match —
    /// exactly the verdict `Subscription::matches` gives them.
    valid: u64,
}

impl<'a> EventChunk<'a> {
    /// Events per chunk: one bit of the match mask each.
    pub const WIDTH: usize = 64;

    /// Windows `columns` at `offset..offset + len`; `valid` flags the chunk
    /// events whose schema matched the network's when the columns were
    /// built. The caller guarantees `len <= WIDTH` and that every column is
    /// at least `offset + len` long.
    pub fn new(columns: &'a [Vec<f64>], offset: usize, len: usize, valid: u64) -> EventChunk<'a> {
        debug_assert!(len <= Self::WIDTH);
        debug_assert!(columns.iter().all(|c| c.len() >= offset + len));
        EventChunk {
            columns,
            offset,
            len,
            valid,
        }
    }

    /// The mask with one bit set per chunk event (valid or not).
    pub fn full_mask(&self) -> u64 {
        if self.len == Self::WIDTH {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// The bitmask of `active` chunk events that satisfy every range bound
    /// of `sub`, which the caller guarantees was validated against the same
    /// schema as the columns (every subscription stored in a [`Broker`]
    /// was, at subscribe time). Attributes are evaluated column-wise with
    /// branchless compares, short-circuiting once the mask is empty.
    // acd-lint: hot
    pub fn match_mask(&self, sub: &Subscription, active: u64) -> u64 {
        let mut mask = active & self.valid;
        for (&(lo, hi), column) in sub.raw_bounds().iter().zip(self.columns) {
            if mask == 0 {
                break;
            }
            let Some(column) = column.get(self.offset..self.offset + self.len) else {
                return 0;
            };
            let mut in_range = 0u64;
            let mut bit = 0u32;
            let mut lanes = column.chunks_exact(4);
            for lane in lanes.by_ref() {
                // chunks_exact(4) guarantees four lanes; the else arm is dead.
                let &[l0, l1, l2, l3] = lane else { break };
                let word = u64::from(l0 >= lo && l0 <= hi)
                    | u64::from(l1 >= lo && l1 <= hi) << 1
                    | u64::from(l2 >= lo && l2 <= hi) << 2
                    | u64::from(l3 >= lo && l3 <= hi) << 3;
                in_range |= word << bit;
                bit += 4;
            }
            for &v in lanes.remainder() {
                in_range |= u64::from(v >= lo && v <= hi) << bit;
                bit += 1;
            }
            mask &= in_range;
        }
        mask
    }
}

/// The outcome of a sender-side covering check for one (subscription, link)
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardDecision {
    /// Whether the subscription must be sent on the link.
    pub forward: bool,
    /// Whether a covering query was issued (false under
    /// [`CoveringPolicy::None`]).
    pub covering_query: bool,
    /// Runs probed by the covering query (SFC policies).
    pub runs_probed: usize,
    /// Subscriptions compared by the covering query (linear policy).
    pub comparisons: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use acd_subscription::SubscriptionBuilder;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("x", 0.0, 100.0)
            .attribute("y", 0.0, 100.0)
            .bits_per_attribute(6)
            .build()
            .unwrap()
    }

    fn sub(schema: &Schema, id: SubId, x: (f64, f64), y: (f64, f64)) -> Subscription {
        SubscriptionBuilder::new(schema)
            .range("x", x.0, x.1)
            .range("y", y.0, y.1)
            .build(id)
            .unwrap()
    }

    #[test]
    fn covering_policy_suppresses_covered_forwards() {
        let s = schema();
        let mut b = Broker::new(0, &[1], &s, CoveringPolicy::ExactSfc).unwrap();
        let wide = sub(&s, 1, (0.0, 100.0), (0.0, 100.0));
        let narrow = sub(&s, 2, (10.0, 20.0), (10.0, 20.0));
        let d1 = b.should_forward(1, &wide).unwrap();
        assert!(d1.forward && d1.covering_query);
        let d2 = b.should_forward(1, &narrow).unwrap();
        assert!(!d2.forward, "narrow subscription must be suppressed");
        assert_eq!(b.sent_to(1), 1);
    }

    #[test]
    fn no_covering_policy_always_forwards() {
        let s = schema();
        let mut b = Broker::new(0, &[1, 2], &s, CoveringPolicy::None).unwrap();
        let wide = sub(&s, 1, (0.0, 100.0), (0.0, 100.0));
        let narrow = sub(&s, 2, (10.0, 20.0), (10.0, 20.0));
        for subscription in [&wide, &narrow] {
            let d = b.should_forward(1, subscription).unwrap();
            assert!(d.forward);
            assert!(!d.covering_query);
        }
        assert_eq!(b.sent_to(1), 2);
        assert_eq!(b.sent_to(2), 0);
    }

    #[test]
    fn local_matching_and_neighbor_interest() {
        let s = schema();
        let mut b = Broker::new(3, &[0], &s, CoveringPolicy::ExactLinear).unwrap();
        b.add_local(100, sub(&s, 1, (0.0, 50.0), (0.0, 50.0)));
        b.add_local(101, sub(&s, 2, (60.0, 90.0), (60.0, 90.0)));
        b.add_received(0, sub(&s, 3, (0.0, 10.0), (0.0, 10.0)));

        let event = Event::new(&s, vec![5.0, 5.0]).unwrap();
        let matches = b.matching_local_clients(&event);
        assert_eq!(matches, vec![(100, 1)]);
        assert!(b.neighbor_interested(0, &event));
        let far_event = Event::new(&s, vec![99.0, 99.0]).unwrap();
        assert!(!b.neighbor_interested(0, &far_event));
        assert!(b.matching_local_clients(&far_event).is_empty());
        assert_eq!(b.routing_table_entries(), 1);
        assert_eq!(b.local_subscriptions(), 2);
    }
}
