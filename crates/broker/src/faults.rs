//! Deterministic, seedable fault injection for the daemon transport.
//!
//! A [`FaultyStream`] wraps any `Read + Write` transport and misbehaves on a
//! schedule drawn from a seeded generator: writes may be silently dropped,
//! delayed, corrupted by a single bit flip, truncated mid-frame (the
//! connection then dies), capped to a partial length, or answered with a
//! hard disconnect; reads may be delayed, stalled, corrupted, or cut off.
//! Every decision comes from the vendored deterministic `StdRng`, so a
//! failing chaos run replays exactly from its seed.
//!
//! The wrapper is usable two ways: in-process tests wrap in-memory or TCP
//! streams directly, and `acd-brokerd --chaos <spec>` wraps every accepted
//! connection server-side, so an unmodified client on a clean socket still
//! experiences the full fault schedule in both directions.
//!
//! Fault dice are rolled only on *data* events — a successful read of at
//! least one byte, or a non-empty write. Pass-through outcomes
//! (`WouldBlock`, `TimedOut`, EOF, empty buffers) never consume randomness,
//! so the schedule does not depend on how often a patient reader polls.

use std::io::{self, ErrorKind, Read, Write};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic fault schedule: per-event probabilities plus the
/// parameters of the faults themselves. All probabilities default to zero,
/// making the default plan a transparent no-op.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault dice. Streams derived from the same plan with the
    /// same salt misbehave identically across runs.
    pub seed: u64,
    /// Probability a write is silently discarded (reported as fully
    /// written, delivered nowhere).
    pub drop: f64,
    /// Probability a data event has one bit of one byte flipped.
    pub corrupt: f64,
    /// Probability a write delivers only a prefix and the connection then
    /// dies — the classic truncated-mid-frame failure.
    pub truncate: f64,
    /// Probability a data event hard-disconnects the stream instead
    /// (`ConnectionReset`, nothing transferred).
    pub disconnect: f64,
    /// Probability a data event stalls for [`stall_ms`](Self::stall_ms).
    pub stall: f64,
    /// Length of a stall, in milliseconds.
    pub stall_ms: u64,
    /// Probability a data event is delayed by [`delay_ms`](Self::delay_ms).
    pub delay: f64,
    /// Length of a delay, in milliseconds.
    pub delay_ms: u64,
    /// Cap on the bytes accepted per `write` call (0 = unlimited); forces
    /// callers through their partial-write paths.
    pub max_write: usize,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop: 0.0,
            corrupt: 0.0,
            truncate: 0.0,
            disconnect: 0.0,
            stall: 0.0,
            stall_ms: 100,
            delay: 0.0,
            delay_ms: 1,
            max_write: 0,
        }
    }
}

impl FaultPlan {
    /// Parses a comma-separated `key=value` spec, e.g.
    /// `seed=7,drop=0.01,corrupt=0.02,truncate=0.01,disconnect=0.01,stall=0.005,stall-ms=400,delay=0.05,delay-ms=2,max-write=512`.
    ///
    /// Unknown keys and out-of-range probabilities are errors; omitted keys
    /// keep their (inert) defaults.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        fn prob(key: &str, value: &str) -> Result<f64, String> {
            let p: f64 = value
                .parse()
                .map_err(|_| format!("`{key}={value}`: not a number"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("`{key}={value}`: probability must be in [0, 1]"));
            }
            Ok(p)
        }
        fn int<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("`{key}={value}`: not a non-negative integer"))
        }

        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("`{part}`: expected key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => plan.seed = int(key, value)?,
                "drop" => plan.drop = prob(key, value)?,
                "corrupt" => plan.corrupt = prob(key, value)?,
                "truncate" => plan.truncate = prob(key, value)?,
                "disconnect" => plan.disconnect = prob(key, value)?,
                "stall" => plan.stall = prob(key, value)?,
                "stall-ms" => plan.stall_ms = int(key, value)?,
                "delay" => plan.delay = prob(key, value)?,
                "delay-ms" => plan.delay_ms = int(key, value)?,
                "max-write" => plan.max_write = int(key, value)?,
                _ => {
                    return Err(format!(
                        "unknown fault key `{key}` (known: seed, drop, corrupt, truncate, \
                         disconnect, stall, stall-ms, delay, delay-ms, max-write)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// True when the plan injects nothing — every probability zero and no
    /// write cap — so wrapping a stream with it would be pure overhead.
    pub fn is_noop(&self) -> bool {
        self.drop == 0.0
            && self.corrupt == 0.0
            && self.truncate == 0.0
            && self.disconnect == 0.0
            && self.stall == 0.0
            && self.delay == 0.0
            && self.max_write == 0
    }
}

fn dead_err() -> io::Error {
    io::Error::new(
        ErrorKind::ConnectionReset,
        "fault injection: connection dropped",
    )
}

/// A `Read + Write` transport that misbehaves per a [`FaultPlan`].
///
/// Once a disconnect or truncation fault fires the stream is *dead*: every
/// later operation returns `ConnectionReset`, exactly like a real socket
/// whose peer vanished. Wrap the read and write halves of one connection in
/// two `FaultyStream`s with different `salt`s so the two directions draw
/// independent (but still reproducible) schedules.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: Arc<FaultPlan>,
    rng: StdRng,
    dead: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner` with the given plan; `salt` differentiates the dice of
    /// multiple streams sharing one plan (per-connection, per-direction).
    pub fn new(inner: S, plan: Arc<FaultPlan>, salt: u64) -> FaultyStream<S> {
        let seed = plan.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        FaultyStream {
            inner,
            plan,
            rng: StdRng::seed_from_u64(seed),
            dead: false,
        }
    }

    /// The wrapped transport (for shutdown calls and address queries).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Sleeps if the stall or delay dice say so. Stall wins when both fire.
    fn maybe_pause(&mut self) {
        if self.plan.stall > 0.0 && self.rng.gen_bool(self.plan.stall) {
            thread::sleep(Duration::from_millis(self.plan.stall_ms));
        } else if self.plan.delay > 0.0 && self.rng.gen_bool(self.plan.delay) {
            thread::sleep(Duration::from_millis(self.plan.delay_ms));
        }
    }

    /// Flips one random bit of one random byte in `bytes`.
    fn corrupt_one(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let i = self.rng.gen_range(0..bytes.len());
        let bit = self.rng.gen_range(0u32..8);
        if let Some(b) = bytes.get_mut(i) {
            *b ^= 1 << bit;
        }
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(dead_err());
        }
        // Pass errors (including WouldBlock/TimedOut polls) and EOF through
        // without consuming randomness.
        let n = self.inner.read(buf)?;
        if n == 0 {
            return Ok(0);
        }
        if self.plan.disconnect > 0.0 && self.rng.gen_bool(self.plan.disconnect) {
            self.dead = true;
            return Err(dead_err());
        }
        self.maybe_pause();
        if self.plan.corrupt > 0.0 && self.rng.gen_bool(self.plan.corrupt) {
            if let Some(data) = buf.get_mut(..n) {
                self.corrupt_one(data);
            }
        }
        Ok(n)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(dead_err());
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if self.plan.disconnect > 0.0 && self.rng.gen_bool(self.plan.disconnect) {
            self.dead = true;
            return Err(dead_err());
        }
        if self.plan.drop > 0.0 && self.rng.gen_bool(self.plan.drop) {
            // Vanishes in transit: the caller believes it was sent.
            return Ok(buf.len());
        }
        self.maybe_pause();
        let limit = if self.plan.max_write == 0 {
            buf.len()
        } else {
            buf.len().min(self.plan.max_write)
        };
        if self.plan.truncate > 0.0 && self.rng.gen_bool(self.plan.truncate) {
            // Deliver a strict prefix, then the connection dies mid-frame.
            let cut = self.rng.gen_range(0..limit);
            if let Some(prefix) = buf.get(..cut) {
                if !prefix.is_empty() {
                    self.inner.write_all(prefix)?;
                    let _ = self.inner.flush();
                }
            }
            self.dead = true;
            return Err(dead_err());
        }
        if self.plan.corrupt > 0.0 && self.rng.gen_bool(self.plan.corrupt) {
            let mut copy = buf.get(..limit).unwrap_or(buf).to_vec();
            self.corrupt_one(&mut copy);
            return self.inner.write(&copy);
        }
        self.inner.write(buf.get(..limit).unwrap_or(buf))
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(dead_err());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(plan: FaultPlan) -> Arc<FaultPlan> {
        Arc::new(plan)
    }

    #[test]
    fn parse_reads_every_key() {
        let plan = FaultPlan::parse(
            "seed=7, drop=0.01, corrupt=0.02, truncate=0.01, disconnect=0.01, \
             stall=0.005, stall-ms=400, delay=0.05, delay-ms=2, max-write=512",
        )
        .expect("valid spec");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.drop, 0.01);
        assert_eq!(plan.corrupt, 0.02);
        assert_eq!(plan.truncate, 0.01);
        assert_eq!(plan.disconnect, 0.01);
        assert_eq!(plan.stall, 0.005);
        assert_eq!(plan.stall_ms, 400);
        assert_eq!(plan.delay, 0.05);
        assert_eq!(plan.delay_ms, 2);
        assert_eq!(plan.max_write, 512);
        assert!(!plan.is_noop());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("drop=-0.1").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("")
            .expect("empty spec is a no-op")
            .is_noop());
    }

    #[test]
    fn default_plan_is_transparent() {
        let mut sink = Vec::new();
        let mut s = FaultyStream::new(&mut sink, arc(FaultPlan::default()), 0);
        s.write_all(b"hello").expect("no-op plan writes cleanly");
        s.flush().expect("flush passes through");
        drop(s);
        assert_eq!(sink, b"hello");

        let source = b"world".to_vec();
        let mut s = FaultyStream::new(source.as_slice(), arc(FaultPlan::default()), 0);
        let mut out = Vec::new();
        s.read_to_end(&mut out).expect("no-op plan reads cleanly");
        assert_eq!(out, b"world");
    }

    #[test]
    fn drop_fault_swallows_the_write() {
        let plan = FaultPlan {
            drop: 1.0,
            ..FaultPlan::default()
        };
        let mut sink = Vec::new();
        let mut s = FaultyStream::new(&mut sink, arc(plan), 1);
        assert_eq!(s.write(b"gone").expect("drop reports success"), 4);
        drop(s);
        assert!(sink.is_empty(), "dropped write must reach nobody");
    }

    #[test]
    fn disconnect_fault_kills_the_stream() {
        let plan = FaultPlan {
            disconnect: 1.0,
            ..FaultPlan::default()
        };
        let mut sink = Vec::new();
        let mut s = FaultyStream::new(&mut sink, arc(plan), 2);
        let err = s.write(b"x").expect_err("disconnect fires");
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
        // Dead forever after, reads included.
        assert!(s.write(b"y").is_err());
        assert!(s.flush().is_err());
        drop(s);
        assert!(sink.is_empty());
    }

    #[test]
    fn truncate_fault_delivers_a_strict_prefix_then_dies() {
        let plan = FaultPlan {
            truncate: 1.0,
            ..FaultPlan::default()
        };
        let mut sink = Vec::new();
        let mut s = FaultyStream::new(&mut sink, arc(plan), 3);
        let err = s
            .write(b"0123456789abcdef")
            .expect_err("truncate kills the write");
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
        assert!(s.write(b"more").is_err(), "stream is dead after truncation");
        drop(s);
        assert!(sink.len() < 16, "must be a strict prefix");
        assert_eq!(&sink[..], &b"0123456789abcdef"[..sink.len()]);
    }

    #[test]
    fn corrupt_fault_flips_exactly_one_bit() {
        let plan = FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::default()
        };
        let original = [0u8; 64];
        let mut sink = Vec::new();
        let mut s = FaultyStream::new(&mut sink, arc(plan), 4);
        let n = s.write(&original).expect("corrupt still writes");
        drop(s);
        assert_eq!(n, 64);
        let flipped_bits: u32 = sink.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped_bits, 1, "exactly one bit must differ");
    }

    #[test]
    fn corrupt_fault_applies_to_reads_too() {
        let plan = FaultPlan {
            corrupt: 1.0,
            ..FaultPlan::default()
        };
        let source = [0u8; 32];
        let mut s = FaultyStream::new(source.as_slice(), arc(plan), 5);
        let mut buf = [0u8; 32];
        let n = s.read(&mut buf).expect("corrupt read still reads");
        let flipped: u32 = buf.iter().take(n).map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn max_write_caps_each_write_call() {
        let plan = FaultPlan {
            max_write: 4,
            ..FaultPlan::default()
        };
        let mut sink = Vec::new();
        let mut s = FaultyStream::new(&mut sink, arc(plan), 6);
        assert_eq!(s.write(b"0123456789").expect("partial write"), 4);
        // write_all loops through the cap and delivers everything.
        s.write_all(b"abcdefghij")
            .expect("write_all survives the cap");
        drop(s);
        assert_eq!(&sink[..4], b"0123");
        assert_eq!(&sink[4..], b"abcdefghij");
    }

    #[test]
    fn eof_passes_through_even_under_total_faults() {
        let plan = FaultPlan {
            disconnect: 1.0,
            corrupt: 1.0,
            ..FaultPlan::default()
        };
        let mut s = FaultyStream::new(&[] as &[u8], arc(plan), 7);
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf).expect("EOF is not a fault event"), 0);
    }

    #[test]
    fn same_seed_and_salt_replay_identically() {
        let plan = FaultPlan {
            seed: 42,
            drop: 0.5,
            ..FaultPlan::default()
        };
        let transcript = |salt: u64| {
            let mut sink = Vec::new();
            let mut s = FaultyStream::new(&mut sink, arc(plan.clone()), salt);
            for i in 0u8..100 {
                assert_eq!(s.write(&[i]).expect("drop never errors"), 1);
            }
            drop(s);
            sink
        };
        assert_eq!(transcript(1), transcript(1), "same salt: same schedule");
        assert_ne!(
            transcript(1),
            transcript(2),
            "different salt: different dice"
        );
        let sink = transcript(1);
        assert!(
            !sink.is_empty() && sink.len() < 100,
            "p=0.5 drops some, not all"
        );
    }
}
