//! The broker-network simulator.

use acd_covering::CoveringPolicy;
use acd_subscription::{Event, Schema, SubId, Subscription};

use crate::broker::{Broker, BrokerId, ClientId};
use crate::error::BrokerError;
use crate::metrics::NetworkMetrics;
use crate::topology::Topology;
use crate::Result;

/// A deterministic, in-process simulation of a content-based
/// publish/subscribe overlay with covering-aware subscription propagation.
///
/// The simulator processes operations synchronously: [`subscribe`] propagates
/// the subscription through the whole overlay before returning, and
/// [`publish`] forwards the event and returns the complete delivery list.
/// Message and routing-table counters are accumulated in
/// [`metrics`](BrokerNetwork::metrics).
///
/// [`subscribe`]: BrokerNetwork::subscribe
/// [`publish`]: BrokerNetwork::publish
#[derive(Debug)]
pub struct BrokerNetwork {
    topology: Topology,
    schema: Schema,
    policy: CoveringPolicy,
    brokers: Vec<Broker>,
    metrics: NetworkMetrics,
    registered_ids: std::collections::HashSet<SubId>,
}

impl BrokerNetwork {
    /// Creates a network over `topology` where every broker applies `policy`
    /// when propagating subscriptions over `schema`.
    ///
    /// # Errors
    ///
    /// Returns an error if the covering policy cannot build its indexes.
    pub fn new(topology: Topology, schema: &Schema, policy: CoveringPolicy) -> Result<Self> {
        let mut brokers = Vec::with_capacity(topology.brokers());
        for id in 0..topology.brokers() {
            brokers.push(Broker::new(id, topology.neighbors(id), schema, policy)?);
        }
        Ok(BrokerNetwork {
            topology,
            schema: schema.clone(),
            policy,
            brokers,
            metrics: NetworkMetrics::default(),
            registered_ids: std::collections::HashSet::new(),
        })
    }

    /// The overlay topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The covering policy every broker applies.
    pub fn policy(&self) -> CoveringPolicy {
        self.policy
    }

    /// The schema subscriptions and events must follow.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Accumulated metrics (routing-table entries are recomputed on access).
    pub fn metrics(&self) -> NetworkMetrics {
        let mut m = self.metrics;
        m.routing_table_entries = self
            .brokers
            .iter()
            .map(|b| b.routing_table_entries() as u64)
            .sum();
        m
    }

    /// Access to an individual broker (for inspection in tests and
    /// experiments).
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is out of range.
    pub fn broker(&self, id: BrokerId) -> Result<&Broker> {
        self.topology.check_broker(id)?;
        Ok(&self.brokers[id])
    }

    /// Registers `subscription` for `client` at broker `at`, and propagates
    /// it through the overlay applying the covering policy on every link.
    ///
    /// # Errors
    ///
    /// Returns an error if the broker does not exist, the subscription's
    /// schema does not match the network, or its identifier was already
    /// registered.
    pub fn subscribe(
        &mut self,
        at: BrokerId,
        client: ClientId,
        subscription: &Subscription,
    ) -> Result<()> {
        self.topology.check_broker(at)?;
        if subscription.schema() != &self.schema {
            return Err(BrokerError::Subscription(
                acd_subscription::SubscriptionError::SchemaMismatch,
            ));
        }
        if !self.registered_ids.insert(subscription.id()) {
            return Err(BrokerError::DuplicateSubscription {
                id: subscription.id(),
            });
        }
        self.metrics.subscriptions_registered += 1;
        self.brokers[at].add_local(client, subscription.clone());
        self.propagate(at, None, subscription)
    }

    /// Propagates `subscription` away from `start` (which already holds it),
    /// applying the covering policy on every link. The overlay is a tree, so
    /// a simple BFS carrying the "arrived from" interface suffices. Shared
    /// by [`subscribe`](Self::subscribe) and the re-advertisement step of
    /// [`unsubscribe`](Self::unsubscribe).
    fn propagate(
        &mut self,
        start: BrokerId,
        arrived_from: Option<BrokerId>,
        subscription: &Subscription,
    ) -> Result<()> {
        let mut queue: std::collections::VecDeque<(BrokerId, Option<BrokerId>)> =
            std::collections::VecDeque::new();
        queue.push_back((start, arrived_from));
        while let Some((broker_id, from)) = queue.pop_front() {
            // Iterating the borrowed neighbor slice is fine: the loop body
            // only touches the disjoint `brokers` and `metrics` fields.
            for &neighbor in self.topology.neighbors(broker_id) {
                if Some(neighbor) == from {
                    continue;
                }
                let decision = self.brokers[broker_id].should_forward(neighbor, subscription)?;
                if decision.covering_query {
                    self.metrics.covering_queries += 1;
                    self.metrics.covering_runs_probed += decision.runs_probed as u64;
                    self.metrics.covering_comparisons += decision.comparisons as u64;
                }
                if decision.forward {
                    self.metrics.subscription_messages += 1;
                    self.brokers[neighbor].add_received(broker_id, subscription.clone());
                    queue.push_back((neighbor, Some(broker_id)));
                } else {
                    self.metrics.subscriptions_suppressed += 1;
                }
            }
        }
        Ok(())
    }

    /// Unregisters subscription `id` (which must have been registered by a
    /// client at broker `at`) and retracts it from the overlay: every link
    /// it was sent on removes it from its covering state and routing table,
    /// and any subscription it was masking (suppressed as covered) is
    /// re-advertised so deliveries stay exactly as if the remaining
    /// subscriptions had been registered alone.
    ///
    /// # Errors
    ///
    /// Returns an error if the broker does not exist or the subscription is
    /// not registered at it.
    pub fn unsubscribe(&mut self, at: BrokerId, id: SubId) -> Result<()> {
        self.topology.check_broker(at)?;
        if !self.registered_ids.contains(&id) {
            return Err(BrokerError::UnknownSubscription { id });
        }
        let Some((_client, subscription)) = self.brokers[at].remove_local(id) else {
            // Registered somewhere, but not at this broker.
            return Err(BrokerError::UnknownSubscription { id });
        };
        self.registered_ids.remove(&id);
        self.metrics.unsubscriptions += 1;

        // Walk the links the subscription was actually sent on (a subtree of
        // the overlay). On each such link: retract it, re-advertise whatever
        // it was masking, and continue into the neighbor.
        let mut queue: std::collections::VecDeque<(BrokerId, Option<BrokerId>)> =
            std::collections::VecDeque::new();
        queue.push_back((at, None));
        while let Some((broker_id, from)) = queue.pop_front() {
            // Re-advertisement recurses into `propagate`, which needs all of
            // `&mut self`; the neighbor list must be detached first.
            let neighbors: Vec<BrokerId> = self.topology.neighbors(broker_id).to_vec();
            for neighbor in neighbors {
                if Some(neighbor) == from {
                    continue;
                }
                if self.brokers[broker_id].was_sent(neighbor, id) {
                    let readvertised =
                        self.brokers[broker_id].retract_sent(neighbor, &subscription)?;
                    self.metrics.unsubscription_messages += 1;
                    for (candidate, decision) in readvertised {
                        if decision.covering_query {
                            self.metrics.covering_queries += 1;
                            self.metrics.covering_runs_probed += decision.runs_probed as u64;
                            self.metrics.covering_comparisons += decision.comparisons as u64;
                        }
                        if decision.forward {
                            self.metrics.subscription_messages += 1;
                            self.brokers[neighbor].add_received(broker_id, candidate.clone());
                            self.propagate(neighbor, Some(broker_id), &candidate)?;
                        } else {
                            self.metrics.subscriptions_suppressed += 1;
                        }
                    }
                    self.brokers[neighbor].remove_received(broker_id, id);
                    queue.push_back((neighbor, Some(broker_id)));
                } else {
                    // Never sent on this link: at most sitting in its
                    // suppressed list.
                    self.brokers[broker_id].drop_suppressed(neighbor, id);
                }
            }
            // Compact the visited broker's suppressed state: retire entries
            // whose subscription has been unsubscribed and collapse
            // duplicate chain entries, so the per-link lists stay bounded by
            // the live population under arbitrarily long churn histories.
            let live = &self.registered_ids;
            self.brokers[broker_id].compact_suppressed(live);
        }
        Ok(())
    }

    /// Publishes `event` at broker `at` and returns the deliveries it caused
    /// as `(broker, client)` pairs, one per matching subscription, sorted.
    ///
    /// # Errors
    ///
    /// Returns an error if the broker does not exist.
    // acd-lint: hot
    pub fn publish(&mut self, at: BrokerId, event: &Event) -> Result<Vec<(BrokerId, ClientId)>> {
        self.topology.check_broker(at)?;
        self.metrics.events_published += 1;
        let mut deliveries = Vec::new();

        let mut queue: std::collections::VecDeque<(BrokerId, Option<BrokerId>)> =
            std::collections::VecDeque::new();
        queue.push_back((at, None));
        while let Some((broker_id, from)) = queue.pop_front() {
            for (client, _) in self.brokers[broker_id].matching_local_clients_iter(event) {
                deliveries.push((broker_id, client));
            }
            // Iterating the borrowed neighbor slice is fine: the loop body
            // only touches the disjoint `brokers` and `metrics` fields.
            for &neighbor in self.topology.neighbors(broker_id) {
                if Some(neighbor) == from {
                    continue;
                }
                if self.brokers[broker_id].neighbor_interested(neighbor, event) {
                    self.metrics.event_messages += 1;
                    queue.push_back((neighbor, Some(broker_id)));
                }
            }
        }
        deliveries.sort_unstable();
        deliveries.dedup();
        self.metrics.deliveries += deliveries.len() as u64;
        Ok(deliveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acd_subscription::SubscriptionBuilder;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("x", 0.0, 100.0)
            .attribute("y", 0.0, 100.0)
            .bits_per_attribute(6)
            .build()
            .unwrap()
    }

    fn sub(schema: &Schema, id: SubId, x: (f64, f64), y: (f64, f64)) -> Subscription {
        SubscriptionBuilder::new(schema)
            .range("x", x.0, x.1)
            .range("y", y.0, y.1)
            .build(id)
            .unwrap()
    }

    #[test]
    fn events_are_delivered_across_the_overlay() {
        let s = schema();
        let mut net =
            BrokerNetwork::new(Topology::line(4).unwrap(), &s, CoveringPolicy::ExactSfc).unwrap();
        net.subscribe(0, 10, &sub(&s, 1, (0.0, 50.0), (0.0, 50.0)))
            .unwrap();
        net.subscribe(3, 30, &sub(&s, 2, (40.0, 100.0), (40.0, 100.0)))
            .unwrap();

        let e = Event::new(&s, vec![45.0, 45.0]).unwrap();
        let deliveries = net.publish(1, &e).unwrap();
        assert_eq!(deliveries, vec![(0, 10), (3, 30)]);

        let only_left = Event::new(&s, vec![10.0, 10.0]).unwrap();
        assert_eq!(net.publish(3, &only_left).unwrap(), vec![(0, 10)]);

        let metrics = net.metrics();
        assert_eq!(metrics.subscriptions_registered, 2);
        assert_eq!(metrics.events_published, 2);
        assert!(metrics.event_messages >= 3);
        assert_eq!(metrics.deliveries, 3);
    }

    #[test]
    fn covering_reduces_messages_without_changing_deliveries() {
        let s = schema();
        // Subscriptions: one broad subscription plus many narrow ones that it
        // covers, all registered at the same broker.
        let subs: Vec<Subscription> = std::iter::once(sub(&s, 1, (0.0, 100.0), (0.0, 100.0)))
            .chain((2..=20).map(|i| {
                let lo = (i * 2) as f64;
                sub(&s, i, (lo, lo + 10.0), (lo, lo + 10.0))
            }))
            .collect();
        let events: Vec<Event> = (0..20)
            .map(|i| Event::new(&s, vec![i as f64 * 5.0, i as f64 * 5.0]).unwrap())
            .collect();

        let run = |policy: CoveringPolicy| {
            let mut net =
                BrokerNetwork::new(Topology::balanced_tree(2, 3).unwrap(), &s, policy).unwrap();
            for (i, subscription) in subs.iter().enumerate() {
                net.subscribe(0, 100 + i as u64, subscription).unwrap();
            }
            let mut all_deliveries = Vec::new();
            for (i, e) in events.iter().enumerate() {
                let at = i % net.topology().brokers();
                all_deliveries.push(net.publish(at, e).unwrap());
            }
            (net.metrics(), all_deliveries)
        };

        let (flood, flood_deliveries) = run(CoveringPolicy::None);
        let (exact, exact_deliveries) = run(CoveringPolicy::ExactSfc);
        let (approx, approx_deliveries) = run(CoveringPolicy::Approximate { epsilon: 0.05 });

        // Covering must never change deliveries.
        assert_eq!(flood_deliveries, exact_deliveries);
        assert_eq!(flood_deliveries, approx_deliveries);

        // Covering must reduce subscription traffic and routing state.
        assert!(exact.subscription_messages < flood.subscription_messages);
        assert!(exact.routing_table_entries < flood.routing_table_entries);
        assert!(approx.subscription_messages <= flood.subscription_messages);
        assert!(approx.subscription_messages >= exact.subscription_messages);
        assert!(exact.subscriptions_suppressed > 0);
        assert_eq!(flood.subscriptions_suppressed, 0);
    }

    #[test]
    fn rejects_bad_brokers_duplicates_and_foreign_schemas() {
        let s = schema();
        let mut net =
            BrokerNetwork::new(Topology::star(3).unwrap(), &s, CoveringPolicy::None).unwrap();
        let a = sub(&s, 1, (0.0, 10.0), (0.0, 10.0));
        assert!(net.subscribe(9, 1, &a).is_err());
        net.subscribe(0, 1, &a).unwrap();
        assert!(matches!(
            net.subscribe(1, 2, &a),
            Err(BrokerError::DuplicateSubscription { id: 1 })
        ));
        let other = Schema::builder().attribute("z", 0.0, 1.0).build().unwrap();
        let foreign = SubscriptionBuilder::new(&other).build(5).unwrap();
        assert!(net.subscribe(0, 1, &foreign).is_err());
        let e = Event::new(&s, vec![1.0, 1.0]).unwrap();
        assert!(net.publish(7, &e).is_err());
    }

    #[test]
    fn subscription_propagation_counts_messages_per_link() {
        let s = schema();
        let mut net =
            BrokerNetwork::new(Topology::line(5).unwrap(), &s, CoveringPolicy::None).unwrap();
        net.subscribe(2, 1, &sub(&s, 1, (0.0, 10.0), (0.0, 10.0)))
            .unwrap();
        // Flooding from the middle of a 5-line reaches the 4 other brokers
        // over exactly 4 links.
        assert_eq!(net.metrics().subscription_messages, 4);
        assert_eq!(net.metrics().routing_table_entries, 4);
        // Each non-origin broker holds exactly one routing entry.
        for id in [0usize, 1, 3, 4] {
            assert_eq!(net.broker(id).unwrap().routing_table_entries(), 1);
        }
        assert_eq!(net.broker(2).unwrap().routing_table_entries(), 0);
        assert_eq!(net.broker(2).unwrap().local_subscriptions(), 1);
    }

    #[test]
    fn unsubscribe_reverts_routing_state_and_readvertises_masked_subs() {
        let s = schema();
        for policy in [
            CoveringPolicy::None,
            CoveringPolicy::ExactLinear,
            CoveringPolicy::ExactSfc,
            CoveringPolicy::ShardedSfc { shards: 3 },
        ] {
            let mut net = BrokerNetwork::new(Topology::line(3).unwrap(), &s, policy).unwrap();
            let wide = sub(&s, 1, (0.0, 100.0), (0.0, 100.0));
            let narrow = sub(&s, 2, (10.0, 30.0), (10.0, 30.0));
            // The wide subscription masks the narrow one on every link.
            net.subscribe(0, 10, &wide).unwrap();
            net.subscribe(0, 11, &narrow).unwrap();

            let hit_narrow = Event::new(&s, vec![20.0, 20.0]).unwrap();
            assert_eq!(
                net.publish(2, &hit_narrow).unwrap(),
                vec![(0, 10), (0, 11)],
                "policy {}",
                policy.label()
            );

            // Removing the wide cover must keep the narrow one reachable
            // from every broker (re-advertised where it was suppressed).
            net.unsubscribe(0, 1).unwrap();
            assert_eq!(
                net.publish(2, &hit_narrow).unwrap(),
                vec![(0, 11)],
                "policy {}: narrow lost after unsubscribe",
                policy.label()
            );
            let miss_narrow = Event::new(&s, vec![80.0, 80.0]).unwrap();
            assert_eq!(net.publish(2, &miss_narrow).unwrap(), vec![]);

            // Removing the narrow one too empties the overlay.
            net.unsubscribe(0, 2).unwrap();
            assert_eq!(net.publish(2, &hit_narrow).unwrap(), vec![]);
            assert_eq!(net.metrics().routing_table_entries, 0);
            assert_eq!(net.metrics().unsubscriptions, 2);

            // Identifiers become reusable after unsubscription.
            net.subscribe(1, 12, &narrow).unwrap();
            assert_eq!(net.publish(2, &hit_narrow).unwrap(), vec![(1, 12)]);
        }
    }

    #[test]
    fn unsubscribe_rejects_unknown_ids_and_wrong_brokers() {
        let s = schema();
        let mut net =
            BrokerNetwork::new(Topology::line(3).unwrap(), &s, CoveringPolicy::ExactSfc).unwrap();
        let a = sub(&s, 1, (0.0, 10.0), (0.0, 10.0));
        net.subscribe(0, 1, &a).unwrap();
        assert!(matches!(
            net.unsubscribe(0, 99),
            Err(BrokerError::UnknownSubscription { id: 99 })
        ));
        // Registered, but at broker 0 — unsubscribing at broker 1 fails and
        // leaves the registration intact.
        assert!(matches!(
            net.unsubscribe(1, 1),
            Err(BrokerError::UnknownSubscription { id: 1 })
        ));
        assert!(net
            .publish(2, &Event::new(&s, vec![5.0, 5.0]).unwrap())
            .unwrap()
            .contains(&(0, 1)));
        assert!(net.unsubscribe(9, 1).is_err());
        net.unsubscribe(0, 1).unwrap();
    }

    #[test]
    fn suppressed_sets_stay_bounded_under_long_churn_histories() {
        // A long alternating churn history on a line overlay: every round
        // registers one wide cover and a few narrow subscriptions it masks,
        // then retires the whole round. Without compaction the per-link
        // suppressed lists accumulate one clone per *historical* suppression;
        // with it they must stay bounded by the live population at every
        // step (and empty at quiescence).
        let s = schema();
        let mut net =
            BrokerNetwork::new(Topology::line(4).unwrap(), &s, CoveringPolicy::ExactSfc).unwrap();
        let total_links = 2 * (net.topology().brokers() - 1);
        let mut live = 0usize;
        let mut next_id: SubId = 1;
        for round in 0..60 {
            let wide_id = next_id;
            net.subscribe(0, 10, &sub(&s, wide_id, (0.0, 100.0), (0.0, 100.0)))
                .unwrap();
            let narrow_ids: Vec<SubId> = (0..3)
                .map(|k| {
                    let id = next_id + 1 + k;
                    let lo = 10.0 + (round % 5) as f64 * 10.0 + k as f64;
                    net.subscribe(0, 11, &sub(&s, id, (lo, lo + 5.0), (lo, lo + 5.0)))
                        .unwrap();
                    id
                })
                .collect();
            next_id += 4;
            live += 4;

            let bound = |net: &BrokerNetwork, live: usize| {
                let entries: usize = (0..net.topology().brokers())
                    .map(|b| net.broker(b).unwrap().suppressed_entries())
                    .sum();
                // Each live subscription can sit suppressed on at most one
                // side of every link.
                assert!(
                    entries <= live * total_links,
                    "round {round}: {entries} suppressed entries for {live} live subs"
                );
                entries
            };
            bound(&net, live);

            // Retire the round in cover-first order, which exercises the
            // re-advertise + re-suppress chain every time.
            net.unsubscribe(0, wide_id).unwrap();
            live -= 1;
            bound(&net, live);
            for id in narrow_ids {
                net.unsubscribe(0, id).unwrap();
                live -= 1;
            }
            bound(&net, live);
        }
        // Quiescence: nothing live, nothing suppressed, nothing routed.
        let entries: usize = (0..net.topology().brokers())
            .map(|b| net.broker(b).unwrap().suppressed_entries())
            .sum();
        assert_eq!(entries, 0, "suppressed state leaked churn history");
        assert_eq!(net.metrics().routing_table_entries, 0);
    }

    #[test]
    fn publish_without_subscribers_stays_local() {
        let s = schema();
        let mut net =
            BrokerNetwork::new(Topology::star(5).unwrap(), &s, CoveringPolicy::ExactSfc).unwrap();
        let e = Event::new(&s, vec![1.0, 1.0]).unwrap();
        assert!(net.publish(4, &e).unwrap().is_empty());
        assert_eq!(net.metrics().event_messages, 0);
    }
}
