//! The concurrent broker overlay: a routing-table service behind interior
//! locking.
//!
//! [`BrokerNetwork`] used to be a single-threaded simulator whose operations
//! took `&mut self`; it is now a service layer: [`subscribe`], [`unsubscribe`]
//! and [`publish`] take `&self` and are callable from many threads at once
//! (the TCP daemon in [`crate::service`] drives one network from a whole
//! worker team). Concurrency control is two lock classes registered in
//! `LOCKING.md` and the `acd-lint` rank table:
//!
//! * every broker sits behind its own [`OrderedRwLock`] (class `broker`,
//!   rank 5, below every covering-index class because forwarding decisions
//!   run index operations under the broker lock). The overlay holds **at
//!   most one broker lock at a time**: BFS propagation decides under the
//!   sender's lock, releases it, then updates the receiving neighbor under
//!   its own — which is what makes per-broker locking deadlock-free on any
//!   topology;
//! * the network-wide registration map sits behind an [`OrderedMutex`]
//!   (class `netreg`, rank 8, above `broker` so compaction can consult it
//!   while holding the broker being compacted).
//!
//! Counters are plain relaxed atomics (see [`crate::metrics`]).
//!
//! Each operation still completes synchronously: [`subscribe`] returns after
//! the subscription is propagated through the whole overlay, [`publish`]
//! returns the complete delivery list. Under concurrent callers the overlay
//! state converges to some interleaving of the completed operations — an
//! operation that has returned is fully visible to every later one.
//!
//! [`subscribe`]: BrokerNetwork::subscribe
//! [`unsubscribe`]: BrokerNetwork::unsubscribe
//! [`publish`]: BrokerNetwork::publish

use std::collections::{HashMap, VecDeque};
use std::ops::Deref;

use acd_covering::ordered::{OrderedReadGuard, RANK_BROKER, RANK_NET_REGISTRY};
use acd_covering::{CoveringPolicy, OrderedMutex, OrderedRwLock};
use acd_subscription::{Event, Schema, SubId, Subscription};

use crate::broker::{Broker, BrokerId, ClientId, EventChunk, ForwardDecision};
use crate::error::BrokerError;
use crate::metrics::{MetricCounters, NetworkMetrics};
use crate::topology::Topology;
use crate::Result;

/// Builder-style configuration for a [`BrokerNetwork`].
///
/// Topology and schema are mandatory (constructor arguments); everything
/// else defaults and is overridden fluently:
///
/// ```
/// use acd_broker::{BrokerConfig, Topology};
/// use acd_covering::CoveringPolicy;
/// use acd_subscription::Schema;
///
/// # fn main() -> Result<(), acd_broker::BrokerError> {
/// let schema = Schema::builder().attribute("x", 0.0, 1.0).build()?;
/// let net = BrokerConfig::new(Topology::star(4)?, &schema)
///     .policy(CoveringPolicy::ExactSfc)
///     .build()?;
/// assert_eq!(net.topology().brokers(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    topology: Topology,
    schema: Schema,
    policy: CoveringPolicy,
}

impl BrokerConfig {
    /// Starts a configuration over `topology` and `schema`, with covering
    /// detection disabled ([`CoveringPolicy::None`]) until
    /// [`policy`](Self::policy) says otherwise.
    pub fn new(topology: Topology, schema: &Schema) -> BrokerConfig {
        BrokerConfig {
            topology,
            schema: schema.clone(),
            policy: CoveringPolicy::None,
        }
    }

    /// Sets the covering policy every broker applies when propagating
    /// subscriptions.
    #[must_use]
    pub fn policy(mut self, policy: CoveringPolicy) -> BrokerConfig {
        self.policy = policy;
        self
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Returns an error if the covering policy cannot build its indexes.
    pub fn build(self) -> Result<BrokerNetwork> {
        let mut brokers = Vec::with_capacity(self.topology.brokers());
        for id in 0..self.topology.brokers() {
            let broker = Broker::new(id, self.topology.neighbors(id), &self.schema, self.policy)?;
            brokers.push(OrderedRwLock::new(RANK_BROKER, "broker", broker));
        }
        Ok(BrokerNetwork {
            topology: self.topology,
            schema: self.schema,
            policy: self.policy,
            brokers,
            registered: OrderedMutex::new(RANK_NET_REGISTRY, "netreg", HashMap::new()),
            counters: MetricCounters::default(),
        })
    }
}

/// A content-based publish/subscribe overlay with covering-aware
/// subscription propagation, safe to drive from many threads through
/// `&self` (see the module docs for the locking discipline).
///
/// Built with [`BrokerConfig`]:
///
/// ```
/// use acd_broker::{BrokerConfig, Topology};
/// use acd_covering::CoveringPolicy;
/// use acd_subscription::{Event, Schema, SubscriptionBuilder};
///
/// # fn main() -> Result<(), acd_broker::BrokerError> {
/// let schema = Schema::builder()
///     .attribute("price", 0.0, 100.0)
///     .bits_per_attribute(8)
///     .build()?;
/// let net = BrokerConfig::new(Topology::line(3)?, &schema)
///     .policy(CoveringPolicy::ExactSfc)
///     .build()?;
/// let sub = SubscriptionBuilder::new(&schema).range("price", 0.0, 50.0).build(1)?;
/// net.subscribe(0, 100, &sub)?;
/// let deliveries = net.publish(2, &Event::new(&schema, vec![25.0])?)?;
/// assert_eq!(deliveries, vec![(0, 100)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BrokerNetwork {
    topology: Topology,
    schema: Schema,
    policy: CoveringPolicy,
    /// Per-broker routing and covering state; lock class `broker` (rank 5),
    /// at most one held at a time.
    brokers: Vec<OrderedRwLock<Broker>>,
    /// Live subscription id → home broker; lock class `netreg` (rank 8).
    registered: OrderedMutex<HashMap<SubId, BrokerId>>,
    counters: MetricCounters,
}

/// A read guard over one broker, for inspection in tests and experiments;
/// dereferences to [`Broker`].
#[derive(Debug)]
pub struct BrokerRef<'a> {
    guard: OrderedReadGuard<'a, Broker>,
}

impl Deref for BrokerRef<'_> {
    type Target = Broker;

    fn deref(&self) -> &Broker {
        &self.guard
    }
}

impl BrokerNetwork {
    /// The overlay topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The covering policy every broker applies.
    pub fn policy(&self) -> CoveringPolicy {
        self.policy
    }

    /// The schema subscriptions and events must follow.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Accumulated metrics (routing-table entries are recomputed on access,
    /// locking one broker at a time).
    pub fn metrics(&self) -> NetworkMetrics {
        let mut metrics = self.counters.snapshot();
        let mut entries = 0u64;
        for cell in &self.brokers {
            entries += cell.read().routing_table_entries() as u64;
        }
        metrics.routing_table_entries = entries;
        metrics
    }

    /// The raw resilience/service counters, for the daemon front door to
    /// record connection-level events (rejections, evictions, corrupt
    /// frames, absorbed retries) into the same snapshot.
    pub(crate) fn counters(&self) -> &MetricCounters {
        &self.counters
    }

    /// Read access to an individual broker (for inspection in tests and
    /// experiments). The returned guard holds the broker's read lock — drop
    /// it before calling back into the network.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is out of range.
    pub fn broker(&self, id: BrokerId) -> Result<BrokerRef<'_>> {
        self.topology.check_broker(id)?;
        Ok(BrokerRef {
            guard: self.cell(id).read(),
        })
    }

    /// The lock cell of broker `id`.
    ///
    /// Every caller passes an id that was validated at the public boundary
    /// (`check_broker`) or produced by the topology's adjacency lists, which
    /// only hold in-range ids — a miss here is a bug, not bad input.
    fn cell(&self, id: BrokerId) -> &OrderedRwLock<Broker> {
        self.brokers
            .get(id)
            .expect("broker ids are validated before they reach the overlay walk")
    }

    /// Registers `subscription` for `client` at broker `at`, and propagates
    /// it through the overlay applying the covering policy on every link.
    /// When this returns, the subscription is visible to every subsequent
    /// [`publish`](Self::publish) anywhere in the overlay.
    ///
    /// # Errors
    ///
    /// Returns an error if the broker does not exist, the subscription's
    /// schema does not match the network, or its identifier was already
    /// registered.
    pub fn subscribe(
        &self,
        at: BrokerId,
        client: ClientId,
        subscription: &Subscription,
    ) -> Result<()> {
        self.topology.check_broker(at)?;
        if subscription.schema() != &self.schema {
            return Err(BrokerError::Subscription(
                acd_subscription::SubscriptionError::SchemaMismatch,
            ));
        }
        {
            let mut registered = self.registered.lock();
            if registered.contains_key(&subscription.id()) {
                return Err(BrokerError::DuplicateSubscription {
                    id: subscription.id(),
                });
            }
            registered.insert(subscription.id(), at);
        }
        MetricCounters::bump(&self.counters.subscriptions_registered);
        self.cell(at)
            .write()
            .add_local(client, subscription.clone());
        self.propagate(at, None, subscription)
    }

    /// Propagates `subscription` away from `start` (which already holds it),
    /// applying the covering policy on every link. The overlay is a tree, so
    /// a simple BFS carrying the "arrived from" interface suffices. Shared
    /// by [`subscribe`](Self::subscribe) and the re-advertisement step of
    /// [`unsubscribe`](Self::unsubscribe). The forwarding decision is made
    /// under the sender's write lock and the routing entry is added under
    /// the receiver's — never both at once.
    fn propagate(
        &self,
        start: BrokerId,
        arrived_from: Option<BrokerId>,
        subscription: &Subscription,
    ) -> Result<()> {
        let mut queue: VecDeque<(BrokerId, Option<BrokerId>)> = VecDeque::new();
        queue.push_back((start, arrived_from));
        while let Some((broker_id, from)) = queue.pop_front() {
            for &neighbor in self.topology.neighbors(broker_id) {
                if Some(neighbor) == from {
                    continue;
                }
                let decision = self
                    .cell(broker_id)
                    .write()
                    .should_forward(neighbor, subscription)?;
                self.record_decision(&decision);
                if decision.forward {
                    MetricCounters::bump(&self.counters.subscription_messages);
                    self.cell(neighbor)
                        .write()
                        .add_received(broker_id, subscription.clone());
                    queue.push_back((neighbor, Some(broker_id)));
                } else {
                    MetricCounters::bump(&self.counters.subscriptions_suppressed);
                }
            }
        }
        Ok(())
    }

    /// Folds one forwarding decision's covering-query cost into the
    /// counters.
    fn record_decision(&self, decision: &ForwardDecision) {
        if decision.covering_query {
            MetricCounters::bump(&self.counters.covering_queries);
            MetricCounters::add(
                &self.counters.covering_runs_probed,
                decision.runs_probed as u64,
            );
            MetricCounters::add(
                &self.counters.covering_comparisons,
                decision.comparisons as u64,
            );
        }
    }

    /// Unregisters subscription `id` (which must have been registered by a
    /// client at broker `at`) and retracts it from the overlay: every link
    /// it was sent on removes it from its covering state and routing table,
    /// and any subscription it was masking (suppressed as covered) is
    /// re-advertised so deliveries stay exactly as if the remaining
    /// subscriptions had been registered alone.
    ///
    /// # Errors
    ///
    /// Returns an error if the broker does not exist or the subscription is
    /// not registered at it.
    pub fn unsubscribe(&self, at: BrokerId, id: SubId) -> Result<()> {
        self.topology.check_broker(at)?;
        {
            let registered = self.registered.lock();
            match registered.get(&id) {
                Some(&home) if home == at => {}
                // Not registered, or registered at another broker: the same
                // error either way, and any registration stays intact.
                _ => return Err(BrokerError::UnknownSubscription { id }),
            }
        }
        let Some((_client, subscription)) = self.cell(at).write().remove_local(id) else {
            // A concurrent unsubscribe of the same id won the race.
            return Err(BrokerError::UnknownSubscription { id });
        };
        self.registered.lock().remove(&id);
        MetricCounters::bump(&self.counters.unsubscriptions);

        // Walk the links the subscription was actually sent on (a subtree of
        // the overlay). On each such link: retract it, re-advertise whatever
        // it was masking, and continue into the neighbor.
        let mut queue: VecDeque<(BrokerId, Option<BrokerId>)> = VecDeque::new();
        queue.push_back((at, None));
        while let Some((broker_id, from)) = queue.pop_front() {
            for &neighbor in self.topology.neighbors(broker_id) {
                if Some(neighbor) == from {
                    continue;
                }
                let sent = self.cell(broker_id).read().was_sent(neighbor, id);
                if sent {
                    let readvertised = self
                        .cell(broker_id)
                        .write()
                        .retract_sent(neighbor, &subscription)?;
                    MetricCounters::bump(&self.counters.unsubscription_messages);
                    for (candidate, decision) in readvertised {
                        self.record_decision(&decision);
                        if decision.forward {
                            MetricCounters::bump(&self.counters.subscription_messages);
                            self.cell(neighbor)
                                .write()
                                .add_received(broker_id, candidate.clone());
                            self.propagate(neighbor, Some(broker_id), &candidate)?;
                        } else {
                            MetricCounters::bump(&self.counters.subscriptions_suppressed);
                        }
                    }
                    self.cell(neighbor).write().remove_received(broker_id, id);
                    queue.push_back((neighbor, Some(broker_id)));
                } else {
                    // Never sent on this link: at most sitting in its
                    // suppressed list.
                    self.cell(broker_id).write().drop_suppressed(neighbor, id);
                }
            }
            // Compact the visited broker's suppressed state so the per-link
            // lists stay bounded by the live population under arbitrarily
            // long churn histories. The live map is consulted *while the
            // broker lock is held* (the documented `broker → netreg`
            // nesting): an entry is only retired when its subscription is
            // truly unregistered at that moment.
            let mut broker = self.cell(broker_id).write();
            let registered = self.registered.lock();
            broker.compact_suppressed(|sub| registered.contains_key(&sub));
        }
        Ok(())
    }

    /// Publishes `event` at broker `at` and returns the deliveries it caused
    /// as `(broker, client)` pairs, one per matching subscription, sorted.
    ///
    /// # Errors
    ///
    /// Returns an error if the broker does not exist.
    // acd-lint: hot
    pub fn publish(&self, at: BrokerId, event: &Event) -> Result<Vec<(BrokerId, ClientId)>> {
        self.topology.check_broker(at)?;
        MetricCounters::bump(&self.counters.events_published);
        let mut deliveries = Vec::new();

        let mut queue: VecDeque<(BrokerId, Option<BrokerId>)> = VecDeque::new();
        queue.push_back((at, None));
        while let Some((broker_id, from)) = queue.pop_front() {
            let broker = self.cell(broker_id).read();
            for (client, _) in broker.matching_local_clients_iter(event) {
                deliveries.push((broker_id, client));
            }
            for &neighbor in self.topology.neighbors(broker_id) {
                if Some(neighbor) == from {
                    continue;
                }
                if broker.neighbor_interested(neighbor, event) {
                    MetricCounters::bump(&self.counters.event_messages);
                    queue.push_back((neighbor, Some(broker_id)));
                }
            }
        }
        deliveries.sort_unstable();
        deliveries.dedup();
        MetricCounters::add(&self.counters.deliveries, deliveries.len() as u64);
        Ok(deliveries)
    }

    /// Publishes a batch of events at broker `at` in one overlay walk per
    /// 64-event chunk, returning each event's deliveries in input order —
    /// exactly what [`publish`](Self::publish) would have returned event by
    /// event.
    ///
    /// The batch is transposed once into column-major attribute arrays;
    /// every broker on a chunk's propagation subtree is read-locked once
    /// per chunk instead of once per event, and matching inside a broker
    /// runs subscription-outer over whole attribute columns with branchless
    /// bitmask compares (see [`EventChunk::match_mask`],
    /// [`Broker::matching_local_clients_mask`] and
    /// [`Broker::neighbor_interested_mask`]). The BFS frontier carries the
    /// per-link *active mask* of chunk events, which shrinks as propagation
    /// descends: an event crosses a link exactly when the serial walk would
    /// have forwarded it there.
    ///
    /// Counters advance exactly as the serial loop would: `events_published`
    /// bumps once per batch element, `event_messages` once per (event, link)
    /// crossing and `deliveries` once per delivered pair — never once per
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns an error if the broker does not exist; the batch is validated
    /// before any counter moves, so on error nothing was published.
    pub fn publish_batch(
        &self,
        at: BrokerId,
        events: &[Event],
    ) -> Result<Vec<Vec<(BrokerId, ClientId)>>> {
        self.topology.check_broker(at)?;
        let mut deliveries: Vec<Vec<(BrokerId, ClientId)>> = vec![Vec::new(); events.len()];
        if events.is_empty() {
            return Ok(deliveries);
        }
        MetricCounters::add(&self.counters.events_published, events.len() as u64);

        // Transpose to column-major once. Events of a foreign schema keep
        // their slot (as NaN) with their valid bit clear, so they deliver
        // nowhere — the verdict the serial path's `matches` gives them.
        let arity = self.schema.arity();
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(events.len()); arity];
        let mut valid: Vec<u64> = vec![0; events.len().div_ceil(EventChunk::WIDTH)];
        for (i, event) in events.iter().enumerate() {
            if event.schema() == &self.schema {
                if let Some(word) = valid.get_mut(i / EventChunk::WIDTH) {
                    *word |= 1 << (i % EventChunk::WIDTH);
                }
                for (column, &v) in columns.iter_mut().zip(event.values()) {
                    column.push(v);
                }
            } else {
                for column in &mut columns {
                    column.push(f64::NAN);
                }
            }
        }

        let mut queue: VecDeque<(BrokerId, Option<BrokerId>, u64)> = VecDeque::new();
        for (chunk_index, offset) in (0..events.len()).step_by(EventChunk::WIDTH).enumerate() {
            let len = EventChunk::WIDTH.min(events.len() - offset);
            let word = valid.get(chunk_index).copied().unwrap_or(0);
            let chunk = EventChunk::new(&columns, offset, len, word);
            queue.push_back((at, None, chunk.full_mask()));
            while let Some((broker_id, from, active)) = queue.pop_front() {
                let broker = self.cell(broker_id).read();
                broker.matching_local_clients_mask(&chunk, active, |i, client| {
                    if let Some(list) = deliveries.get_mut(offset + i) {
                        list.push((broker_id, client));
                    }
                });
                for &neighbor in self.topology.neighbors(broker_id) {
                    if Some(neighbor) == from {
                        continue;
                    }
                    let interested = broker.neighbor_interested_mask(neighbor, &chunk, active);
                    if interested != 0 {
                        MetricCounters::add(
                            &self.counters.event_messages,
                            u64::from(interested.count_ones()),
                        );
                        queue.push_back((neighbor, Some(broker_id), interested));
                    }
                }
            }
        }
        let mut total = 0u64;
        for list in &mut deliveries {
            list.sort_unstable();
            list.dedup();
            total += list.len() as u64;
        }
        MetricCounters::add(&self.counters.deliveries, total);
        Ok(deliveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acd_subscription::SubscriptionBuilder;

    fn schema() -> Schema {
        Schema::builder()
            .attribute("x", 0.0, 100.0)
            .attribute("y", 0.0, 100.0)
            .bits_per_attribute(6)
            .build()
            .unwrap()
    }

    fn sub(schema: &Schema, id: SubId, x: (f64, f64), y: (f64, f64)) -> Subscription {
        SubscriptionBuilder::new(schema)
            .range("x", x.0, x.1)
            .range("y", y.0, y.1)
            .build(id)
            .unwrap()
    }

    fn network(topology: Topology, schema: &Schema, policy: CoveringPolicy) -> BrokerNetwork {
        BrokerConfig::new(topology, schema)
            .policy(policy)
            .build()
            .unwrap()
    }

    #[test]
    fn network_is_shareable_across_threads() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<BrokerNetwork>();
    }

    #[test]
    fn config_defaults_to_no_covering() {
        let s = schema();
        let net = BrokerConfig::new(Topology::line(2).unwrap(), &s)
            .build()
            .unwrap();
        assert_eq!(net.policy(), CoveringPolicy::None);
    }

    #[test]
    fn events_are_delivered_across_the_overlay() {
        let s = schema();
        let net = network(Topology::line(4).unwrap(), &s, CoveringPolicy::ExactSfc);
        net.subscribe(0, 10, &sub(&s, 1, (0.0, 50.0), (0.0, 50.0)))
            .unwrap();
        net.subscribe(3, 30, &sub(&s, 2, (40.0, 100.0), (40.0, 100.0)))
            .unwrap();

        let e = Event::new(&s, vec![45.0, 45.0]).unwrap();
        let deliveries = net.publish(1, &e).unwrap();
        assert_eq!(deliveries, vec![(0, 10), (3, 30)]);

        let only_left = Event::new(&s, vec![10.0, 10.0]).unwrap();
        assert_eq!(net.publish(3, &only_left).unwrap(), vec![(0, 10)]);

        let metrics = net.metrics();
        assert_eq!(metrics.subscriptions_registered, 2);
        assert_eq!(metrics.events_published, 2);
        assert!(metrics.event_messages >= 3);
        assert_eq!(metrics.deliveries, 3);
    }

    #[test]
    fn covering_reduces_messages_without_changing_deliveries() {
        let s = schema();
        // Subscriptions: one broad subscription plus many narrow ones that it
        // covers, all registered at the same broker.
        let subs: Vec<Subscription> = std::iter::once(sub(&s, 1, (0.0, 100.0), (0.0, 100.0)))
            .chain((2..=20).map(|i| {
                let lo = (i * 2) as f64;
                sub(&s, i, (lo, lo + 10.0), (lo, lo + 10.0))
            }))
            .collect();
        let events: Vec<Event> = (0..20)
            .map(|i| Event::new(&s, vec![i as f64 * 5.0, i as f64 * 5.0]).unwrap())
            .collect();

        let run = |policy: CoveringPolicy| {
            let net = network(Topology::balanced_tree(2, 3).unwrap(), &s, policy);
            for (i, subscription) in subs.iter().enumerate() {
                net.subscribe(0, 100 + i as u64, subscription).unwrap();
            }
            let mut all_deliveries = Vec::new();
            for (i, e) in events.iter().enumerate() {
                let at = i % net.topology().brokers();
                all_deliveries.push(net.publish(at, e).unwrap());
            }
            (net.metrics(), all_deliveries)
        };

        let (flood, flood_deliveries) = run(CoveringPolicy::None);
        let (exact, exact_deliveries) = run(CoveringPolicy::ExactSfc);
        let (approx, approx_deliveries) = run(CoveringPolicy::Approximate { epsilon: 0.05 });

        // Covering must never change deliveries.
        assert_eq!(flood_deliveries, exact_deliveries);
        assert_eq!(flood_deliveries, approx_deliveries);

        // Covering must reduce subscription traffic and routing state.
        assert!(exact.subscription_messages < flood.subscription_messages);
        assert!(exact.routing_table_entries < flood.routing_table_entries);
        assert!(approx.subscription_messages <= flood.subscription_messages);
        assert!(approx.subscription_messages >= exact.subscription_messages);
        assert!(exact.subscriptions_suppressed > 0);
        assert_eq!(flood.subscriptions_suppressed, 0);
    }

    #[test]
    fn rejects_bad_brokers_duplicates_and_foreign_schemas() {
        let s = schema();
        let net = network(Topology::star(3).unwrap(), &s, CoveringPolicy::None);
        let a = sub(&s, 1, (0.0, 10.0), (0.0, 10.0));
        assert!(net.subscribe(9, 1, &a).is_err());
        net.subscribe(0, 1, &a).unwrap();
        assert!(matches!(
            net.subscribe(1, 2, &a),
            Err(BrokerError::DuplicateSubscription { id: 1 })
        ));
        let other = Schema::builder().attribute("z", 0.0, 1.0).build().unwrap();
        let foreign = SubscriptionBuilder::new(&other).build(5).unwrap();
        assert!(net.subscribe(0, 1, &foreign).is_err());
        let e = Event::new(&s, vec![1.0, 1.0]).unwrap();
        assert!(net.publish(7, &e).is_err());
    }

    #[test]
    fn subscription_propagation_counts_messages_per_link() {
        let s = schema();
        let net = network(Topology::line(5).unwrap(), &s, CoveringPolicy::None);
        net.subscribe(2, 1, &sub(&s, 1, (0.0, 10.0), (0.0, 10.0)))
            .unwrap();
        // Flooding from the middle of a 5-line reaches the 4 other brokers
        // over exactly 4 links.
        assert_eq!(net.metrics().subscription_messages, 4);
        assert_eq!(net.metrics().routing_table_entries, 4);
        // Each non-origin broker holds exactly one routing entry.
        for id in [0usize, 1, 3, 4] {
            assert_eq!(net.broker(id).unwrap().routing_table_entries(), 1);
        }
        assert_eq!(net.broker(2).unwrap().routing_table_entries(), 0);
        assert_eq!(net.broker(2).unwrap().local_subscriptions(), 1);
    }

    #[test]
    fn unsubscribe_reverts_routing_state_and_readvertises_masked_subs() {
        let s = schema();
        for policy in [
            CoveringPolicy::None,
            CoveringPolicy::ExactLinear,
            CoveringPolicy::ExactSfc,
            CoveringPolicy::ShardedSfc { shards: 3 },
        ] {
            let net = network(Topology::line(3).unwrap(), &s, policy);
            let wide = sub(&s, 1, (0.0, 100.0), (0.0, 100.0));
            let narrow = sub(&s, 2, (10.0, 30.0), (10.0, 30.0));
            // The wide subscription masks the narrow one on every link.
            net.subscribe(0, 10, &wide).unwrap();
            net.subscribe(0, 11, &narrow).unwrap();

            let hit_narrow = Event::new(&s, vec![20.0, 20.0]).unwrap();
            assert_eq!(
                net.publish(2, &hit_narrow).unwrap(),
                vec![(0, 10), (0, 11)],
                "policy {}",
                policy.label()
            );

            // Removing the wide cover must keep the narrow one reachable
            // from every broker (re-advertised where it was suppressed).
            net.unsubscribe(0, 1).unwrap();
            assert_eq!(
                net.publish(2, &hit_narrow).unwrap(),
                vec![(0, 11)],
                "policy {}: narrow lost after unsubscribe",
                policy.label()
            );
            let miss_narrow = Event::new(&s, vec![80.0, 80.0]).unwrap();
            assert_eq!(net.publish(2, &miss_narrow).unwrap(), vec![]);

            // Removing the narrow one too empties the overlay.
            net.unsubscribe(0, 2).unwrap();
            assert_eq!(net.publish(2, &hit_narrow).unwrap(), vec![]);
            assert_eq!(net.metrics().routing_table_entries, 0);
            assert_eq!(net.metrics().unsubscriptions, 2);

            // Identifiers become reusable after unsubscription.
            net.subscribe(1, 12, &narrow).unwrap();
            assert_eq!(net.publish(2, &hit_narrow).unwrap(), vec![(1, 12)]);
        }
    }

    #[test]
    fn unsubscribe_rejects_unknown_ids_and_wrong_brokers() {
        let s = schema();
        let net = network(Topology::line(3).unwrap(), &s, CoveringPolicy::ExactSfc);
        let a = sub(&s, 1, (0.0, 10.0), (0.0, 10.0));
        net.subscribe(0, 1, &a).unwrap();
        assert!(matches!(
            net.unsubscribe(0, 99),
            Err(BrokerError::UnknownSubscription { id: 99 })
        ));
        // Registered, but at broker 0 — unsubscribing at broker 1 fails and
        // leaves the registration intact.
        assert!(matches!(
            net.unsubscribe(1, 1),
            Err(BrokerError::UnknownSubscription { id: 1 })
        ));
        assert!(net
            .publish(2, &Event::new(&s, vec![5.0, 5.0]).unwrap())
            .unwrap()
            .contains(&(0, 1)));
        assert!(net.unsubscribe(9, 1).is_err());
        net.unsubscribe(0, 1).unwrap();
    }

    #[test]
    fn suppressed_sets_stay_bounded_under_long_churn_histories() {
        // A long alternating churn history on a line overlay: every round
        // registers one wide cover and a few narrow subscriptions it masks,
        // then retires the whole round. Without compaction the per-link
        // suppressed lists accumulate one clone per *historical* suppression;
        // with it they must stay bounded by the live population at every
        // step (and empty at quiescence).
        let s = schema();
        let net = network(Topology::line(4).unwrap(), &s, CoveringPolicy::ExactSfc);
        let total_links = 2 * (net.topology().brokers() - 1);
        let mut live = 0usize;
        let mut next_id: SubId = 1;
        for round in 0..60 {
            let wide_id = next_id;
            net.subscribe(0, 10, &sub(&s, wide_id, (0.0, 100.0), (0.0, 100.0)))
                .unwrap();
            let narrow_ids: Vec<SubId> = (0..3)
                .map(|k| {
                    let id = next_id + 1 + k;
                    let lo = 10.0 + (round % 5) as f64 * 10.0 + k as f64;
                    net.subscribe(0, 11, &sub(&s, id, (lo, lo + 5.0), (lo, lo + 5.0)))
                        .unwrap();
                    id
                })
                .collect();
            next_id += 4;
            live += 4;

            let bound = |net: &BrokerNetwork, live: usize| {
                let entries: usize = (0..net.topology().brokers())
                    .map(|b| net.broker(b).unwrap().suppressed_entries())
                    .sum();
                // Each live subscription can sit suppressed on at most one
                // side of every link.
                assert!(
                    entries <= live * total_links,
                    "round {round}: {entries} suppressed entries for {live} live subs"
                );
                entries
            };
            bound(&net, live);

            // Retire the round in cover-first order, which exercises the
            // re-advertise + re-suppress chain every time.
            net.unsubscribe(0, wide_id).unwrap();
            live -= 1;
            bound(&net, live);
            for id in narrow_ids {
                net.unsubscribe(0, id).unwrap();
                live -= 1;
            }
            bound(&net, live);
        }
        // Quiescence: nothing live, nothing suppressed, nothing routed.
        let entries: usize = (0..net.topology().brokers())
            .map(|b| net.broker(b).unwrap().suppressed_entries())
            .sum();
        assert_eq!(entries, 0, "suppressed state leaked churn history");
        assert_eq!(net.metrics().routing_table_entries, 0);
    }

    #[test]
    fn publish_batch_matches_serial_publishes_and_counters() {
        let s = schema();
        for policy in [
            CoveringPolicy::None,
            CoveringPolicy::ExactSfc,
            CoveringPolicy::ShardedSfc { shards: 3 },
        ] {
            let brokers = Topology::balanced_tree(2, 3).unwrap().brokers();
            let build = || {
                let net = network(Topology::balanced_tree(2, 3).unwrap(), &s, policy);
                for i in 0..12u64 {
                    let lo = (i * 7 % 80) as f64;
                    net.subscribe(
                        (i as usize) % brokers,
                        100 + i,
                        &sub(&s, i + 1, (lo, lo + 15.0), (lo, lo + 15.0)),
                    )
                    .unwrap();
                }
                net
            };
            // 150 events: the batch spans two full 64-event mask chunks
            // plus a 22-event tail, so chunk seams and partial masks are
            // both on the differential path.
            let events: Vec<Event> = (0..150)
                .map(|i| {
                    let v = (i * 9 % 100) as f64;
                    Event::new(&s, vec![v, v]).unwrap()
                })
                .collect();
            let serial_net = build();
            let batch_net = build();
            let serial: Vec<Vec<(BrokerId, ClientId)>> = events
                .iter()
                .map(|e| serial_net.publish(1, e).unwrap())
                .collect();
            let batched = batch_net.publish_batch(1, &events).unwrap();
            assert_eq!(serial, batched, "policy {}", policy.label());

            // The batch advances the counters exactly as the serial loop:
            // per event, per (event, link) crossing, per delivered pair.
            let sm = serial_net.metrics();
            let bm = batch_net.metrics();
            assert_eq!(sm.events_published, bm.events_published);
            assert_eq!(sm.event_messages, bm.event_messages);
            assert_eq!(sm.deliveries, bm.deliveries);

            // An empty batch publishes nothing and counts nothing.
            assert!(batch_net.publish_batch(1, &[]).unwrap().is_empty());
            assert_eq!(batch_net.metrics().events_published, bm.events_published);

            // A foreign-schema event in the middle of a batch delivers
            // nowhere (its valid bit is clear), exactly like the serial
            // path, while its neighbors still deliver.
            let foreign_schema = Schema::builder()
                .attribute("other", 0.0, 1.0)
                .bits_per_attribute(4)
                .build()
                .unwrap();
            let mixed = [
                events[0].clone(),
                Event::new(&foreign_schema, vec![0.5]).unwrap(),
                events[1].clone(),
            ];
            let mixed_out = batch_net.publish_batch(1, &mixed).unwrap();
            assert_eq!(mixed_out[0], serial[0], "policy {}", policy.label());
            assert!(mixed_out[1].is_empty());
            assert_eq!(mixed_out[2], serial[1]);

            // A bad broker fails the whole batch before any counter moves.
            let before_err = batch_net.metrics().events_published;
            assert!(batch_net.publish_batch(99, &events).is_err());
            assert_eq!(batch_net.metrics().events_published, before_err);
        }
    }

    #[test]
    fn publish_without_subscribers_stays_local() {
        let s = schema();
        let net = network(Topology::star(5).unwrap(), &s, CoveringPolicy::ExactSfc);
        let e = Event::new(&s, vec![1.0, 1.0]).unwrap();
        assert!(net.publish(4, &e).unwrap().is_empty());
        assert_eq!(net.metrics().event_messages, 0);
    }
}
