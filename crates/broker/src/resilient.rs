//! A self-healing client layered over [`BrokerClient`]: deadlines, bounded
//! backoff, automatic reconnect with session replay, and typed outcomes.
//!
//! [`ResilientClient`] owns the full failure policy the bare client leaves
//! to its caller:
//!
//! * **Per-request deadlines** — every socket read/write carries
//!   [`RetryPolicy::request_timeout`], so a stalled daemon surfaces as a
//!   timed-out attempt instead of a hang.
//! * **Bounded exponential backoff with deterministic jitter** — retry
//!   pauses double from [`RetryPolicy::base_backoff`] up to
//!   [`RetryPolicy::max_backoff`], scaled by a jitter factor drawn from the
//!   vendored seeded generator, so a failing run replays exactly from
//!   [`RetryPolicy::jitter_seed`].
//! * **Reconnect with session resumption** — the client tracks its live
//!   subscription set; on a fresh connection it bumps its session *epoch*
//!   and replays every tracked subscription via idempotent
//!   `Resubscribe` frames before the interrupted request is retried. The
//!   epoch lets the daemon discard stale requests from the dead
//!   connection (see `service.rs`).
//! * **Typed outcomes instead of panics** — operations return [`GaveUp`]
//!   (attempt count + final error) when the policy is exhausted, and
//!   [`last_outcome`](ResilientClient::last_outcome) reports
//!   [`Resilience::Degraded`] when an operation needed repair to succeed.
//!
//! What is retried: transport failures (I/O errors, corrupt or truncated
//! frames, protocol desync) after a reconnect, and [`ServiceError::
//! Overloaded`] shedding answers after a backoff on the same connection.
//! What is not: semantic rejections ([`ServiceError::Rejected`]) surface
//! immediately — retrying a duplicate-id subscribe or an unknown-broker
//! publish cannot succeed.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::ErrorKind;
use std::net::{SocketAddr, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use acd_subscription::{Event, Schema, SubId, Subscription};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::broker::{BrokerId, ClientId};
use crate::client::{BatchError, BrokerClient};
use crate::error::ServiceError;

/// Failure policy for a [`ResilientClient`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per operation, first try included (minimum 1).
    pub max_attempts: usize,
    /// First retry pause; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Socket read/write deadline per attempt (`None` blocks forever).
    pub request_timeout: Option<Duration>,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            request_timeout: Some(Duration::from_secs(2)),
            jitter_seed: 0,
        }
    }
}

/// The retry policy gave out: `attempts` tries all failed, the last one
/// with `error`. Also returned (with the true attempt count) for
/// non-retryable semantic rejections, so every failure path is typed.
#[derive(Debug, Clone, PartialEq)]
pub struct GaveUp {
    /// Attempts performed before giving up (1 = failed without retrying).
    pub attempts: usize,
    /// The error that ended the operation.
    pub error: ServiceError,
}

impl fmt::Display for GaveUp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gave up after {} attempt(s): {}",
            self.attempts, self.error
        )
    }
}

impl Error for GaveUp {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

impl From<GaveUp> for ServiceError {
    fn from(g: GaveUp) -> ServiceError {
        g.error
    }
}

/// How the most recent successful operation went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resilience {
    /// First attempt succeeded on the existing connection.
    Healthy,
    /// The operation succeeded, but only after repair work.
    Degraded {
        /// Failed attempts absorbed before success.
        retries: u64,
        /// Connections (re-)established during the operation.
        reconnects: u64,
    },
}

/// Cumulative repair counters for one client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Failed attempts that were retried (including failed reconnects).
    pub retries: u64,
    /// Successful reconnections after the initial connect.
    pub reconnects: u64,
}

/// One tracked live subscription, kept for replay on reconnect.
#[derive(Debug, Clone)]
struct TrackedSub {
    at: BrokerId,
    client: ClientId,
    subscription: Subscription,
}

/// How a failed attempt should be handled.
enum Verdict {
    /// Semantic rejection: surface immediately.
    Fatal,
    /// Overload shedding: back off and retry on the same connection.
    RetrySameConnection,
    /// Transport/protocol damage: drop the connection, reconnect, retry.
    RetryReconnect,
}

fn verdict(error: &ServiceError) -> Verdict {
    match error {
        ServiceError::Rejected { .. } | ServiceError::Broker(_) => Verdict::Fatal,
        ServiceError::Overloaded { .. } => Verdict::RetrySameConnection,
        // Corruption can masquerade as a version mismatch (the version
        // byte is checked before the checksum) and a desynced pipeline as
        // an unexpected frame — all of it is transport damage here.
        ServiceError::Io(_)
        | ServiceError::CorruptFrame { .. }
        | ServiceError::VersionMismatch { .. }
        | ServiceError::UnexpectedFrame { .. } => Verdict::RetryReconnect,
    }
}

/// A [`BrokerClient`] wrapped in the failure policy described in the
/// module docs.
#[derive(Debug)]
pub struct ResilientClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    jitter: StdRng,
    conn: Option<BrokerClient>,
    /// Session epoch: bumped per established connection, carried by every
    /// `Resubscribe`/`Retract` so the daemon can discard stale requests.
    epoch: u64,
    subs: BTreeMap<SubId, TrackedSub>,
    schema: Option<Schema>,
    stats: ClientStats,
    last: Resilience,
}

impl ResilientClient {
    /// Resolves `addr` and establishes the first connection under the
    /// policy (retrying connect failures like any other operation).
    ///
    /// # Errors
    ///
    /// Returns [`GaveUp`] when no connection could be established within
    /// the policy.
    pub fn connect(
        addr: impl ToSocketAddrs,
        policy: RetryPolicy,
    ) -> Result<ResilientClient, GaveUp> {
        let addr = addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut it| it.next())
            .ok_or_else(|| GaveUp {
                attempts: 1,
                error: ServiceError::Io(format!(
                    "address did not resolve ({})",
                    ErrorKind::AddrNotAvailable
                )),
            })?;
        let jitter = StdRng::seed_from_u64(policy.jitter_seed);
        let mut client = ResilientClient {
            addr,
            policy,
            jitter,
            conn: None,
            epoch: 0,
            subs: BTreeMap::new(),
            schema: None,
            stats: ClientStats::default(),
            last: Resilience::Healthy,
        };
        client.with_retries(|_, _| Ok(()))?;
        Ok(client)
    }

    /// The daemon's schema, from the `Hello` greeting of the first
    /// connection.
    pub fn schema(&self) -> &Schema {
        self.schema
            .as_ref()
            .expect("connect() established a connection, which caches the schema")
    }

    /// Cumulative repair counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// How the most recent successful operation went.
    pub fn last_outcome(&self) -> Resilience {
        self.last
    }

    /// Whether a connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// The ids of the subscriptions this client tracks as live (the set
    /// replayed on reconnect).
    pub fn tracked_subscriptions(&self) -> Vec<SubId> {
        self.subs.keys().copied().collect()
    }

    /// Registers `subscription` for `client` at broker `at`, tracking it
    /// for replay. Uses the idempotent `Resubscribe` request, so retries
    /// and reconnect replays converge on exactly one live registration.
    ///
    /// # Errors
    ///
    /// [`GaveUp`] on policy exhaustion or semantic rejection; the
    /// subscription is untracked again in that case.
    pub fn subscribe(
        &mut self,
        at: BrokerId,
        client: ClientId,
        subscription: &Subscription,
    ) -> Result<(), GaveUp> {
        let id = subscription.id();
        // Track before sending: if the connection dies mid-request the
        // reconnect replay already carries this subscription, and the
        // retried Resubscribe is absorbed as idempotent.
        self.subs.insert(
            id,
            TrackedSub {
                at,
                client,
                subscription: subscription.clone(),
            },
        );
        let result =
            self.with_retries(|conn, epoch| conn.resubscribe(at, client, subscription, epoch));
        if result.is_err() {
            self.subs.remove(&id);
        }
        result
    }

    /// Retracts subscription `id` at broker `at` and stops tracking it.
    /// Uses the idempotent `Retract` request: retracting an id that is
    /// already gone (e.g. the daemon dropped the session) succeeds.
    ///
    /// # Errors
    ///
    /// [`GaveUp`] on policy exhaustion. The id is untracked regardless, so
    /// it will not be replayed later.
    pub fn unsubscribe(&mut self, at: BrokerId, id: SubId) -> Result<(), GaveUp> {
        self.subs.remove(&id);
        self.with_retries(|conn, epoch| conn.retract(at, id, epoch))
    }

    /// Publishes `event` at broker `at`, returning the deliveries it
    /// caused. Retried on transport failure; publishing installs no
    /// routing state, so a retry after a lost response is safe (at worst
    /// the overlay's message counters count the event twice).
    ///
    /// # Errors
    ///
    /// [`GaveUp`] on policy exhaustion or semantic rejection.
    pub fn publish(
        &mut self,
        at: BrokerId,
        event: &Event,
    ) -> Result<Vec<(BrokerId, ClientId)>, GaveUp> {
        self.with_retries(|conn, _| conn.publish(at, event))
    }

    /// Publishes a pipelined burst with resume-on-partial-failure: after a
    /// mid-batch error the retry continues from the first unacknowledged
    /// event — acknowledged publishes are **never** re-sent. Events that
    /// were in flight when a connection died are in limbo and are re-sent
    /// (see [`BatchError`] for why that is safe here).
    ///
    /// # Errors
    ///
    /// [`GaveUp`] on policy exhaustion; deliveries acknowledged before the
    /// failure are discarded with it (callers needing them should check
    /// [`stats`](Self::stats) and retry smaller batches).
    pub fn publish_batch(
        &mut self,
        at: BrokerId,
        events: &[Event],
    ) -> Result<Vec<Vec<(BrokerId, ClientId)>>, GaveUp> {
        let before = self.stats;
        let mut collected: Vec<Vec<(BrokerId, ClientId)>> = Vec::with_capacity(events.len());
        let mut last_error = ServiceError::Io("no attempt was made".into());
        let attempts = self.policy.max_attempts.max(1);
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.backoff(attempt);
            }
            if let Err(e) = self.ensure_connected() {
                self.note_retry(&mut last_error, e);
                continue;
            }
            let conn = self
                .conn
                .as_mut()
                .expect("ensure_connected just installed the connection");
            let remaining = events.get(collected.len()..).unwrap_or(&[]);
            match conn.publish_batch(at, remaining) {
                Ok(mut rest) => {
                    collected.append(&mut rest);
                    self.settle(before, attempt);
                    return Ok(collected);
                }
                Err(BatchError { mut acked, error }) => {
                    collected.append(&mut acked);
                    match verdict(&error) {
                        Verdict::Fatal => {
                            return Err(GaveUp {
                                attempts: attempt,
                                error,
                            })
                        }
                        Verdict::RetrySameConnection => {}
                        Verdict::RetryReconnect => self.conn = None,
                    }
                    self.note_retry(&mut last_error, error);
                }
            }
        }
        Err(GaveUp {
            attempts,
            error: last_error,
        })
    }

    /// The shared retry driver: ensure a (replayed) connection, run `op`,
    /// classify failures, back off, repeat within the policy.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut BrokerClient, u64) -> Result<T, ServiceError>,
    ) -> Result<T, GaveUp> {
        let before = self.stats;
        let mut last_error = ServiceError::Io("no attempt was made".into());
        let attempts = self.policy.max_attempts.max(1);
        for attempt in 1..=attempts {
            if attempt > 1 {
                self.backoff(attempt);
            }
            if let Err(e) = self.ensure_connected() {
                self.note_retry(&mut last_error, e);
                continue;
            }
            let epoch = self.epoch;
            let conn = self
                .conn
                .as_mut()
                .expect("ensure_connected just installed the connection");
            match op(conn, epoch) {
                Ok(value) => {
                    self.settle(before, attempt);
                    return Ok(value);
                }
                Err(error) => {
                    match verdict(&error) {
                        Verdict::Fatal => {
                            return Err(GaveUp {
                                attempts: attempt,
                                error,
                            })
                        }
                        Verdict::RetrySameConnection => {}
                        Verdict::RetryReconnect => self.conn = None,
                    }
                    self.note_retry(&mut last_error, error);
                }
            }
        }
        Err(GaveUp {
            attempts,
            error: last_error,
        })
    }

    /// Establishes a connection if none is live: connect, apply the
    /// request deadline, bump the epoch, replay every tracked
    /// subscription. Any failure tears the half-built connection down.
    fn ensure_connected(&mut self) -> Result<(), ServiceError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let reconnecting = self.epoch > 0;
        // The deadline covers the handshake too: a daemon that accepts but
        // never greets (or whose greeting is lost) is a timed-out attempt,
        // not a hang.
        let mut conn = BrokerClient::connect_with(self.addr, self.policy.request_timeout)?;
        self.epoch += 1;
        for tracked in self.subs.values() {
            conn.resubscribe(
                tracked.at,
                tracked.client,
                &tracked.subscription,
                self.epoch,
            )?;
        }
        if self.schema.is_none() {
            self.schema = Some(conn.schema().clone());
        }
        if reconnecting {
            self.stats.reconnects += 1;
        }
        self.conn = Some(conn);
        Ok(())
    }

    /// Records a failed attempt.
    fn note_retry(&mut self, last_error: &mut ServiceError, error: ServiceError) {
        self.stats.retries += 1;
        *last_error = error;
    }

    /// Records the outcome of a successful operation.
    fn settle(&mut self, before: ClientStats, attempt: usize) {
        self.last = if attempt == 1 && self.stats == before {
            Resilience::Healthy
        } else {
            Resilience::Degraded {
                retries: self.stats.retries - before.retries,
                reconnects: self.stats.reconnects - before.reconnects,
            }
        };
    }

    /// Sleeps the backoff for retry number `attempt - 1`: exponential from
    /// the base, capped, scaled by deterministic jitter in [0.5, 1.0).
    fn backoff(&mut self, attempt: usize) {
        thread::sleep(self.backoff_duration(attempt));
    }

    fn backoff_duration(&mut self, attempt: usize) -> Duration {
        let exponent = (attempt.saturating_sub(2)).min(16) as u32;
        let raw = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << exponent)
            .min(self.policy.max_backoff);
        raw.mul_f64(0.5 + 0.5 * self.jitter.gen::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::BrokerConfig;
    use crate::service::BrokerDaemon;
    use crate::topology::Topology;
    use acd_covering::CoveringPolicy;
    use acd_subscription::SubscriptionBuilder;
    use std::net::TcpListener;
    use std::sync::Arc;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 20,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            request_timeout: Some(Duration::from_secs(2)),
            jitter_seed: 7,
        }
    }

    fn start_daemon(addr: &str) -> BrokerDaemon {
        let schema = Schema::builder()
            .attribute("x", 0.0, 100.0)
            .bits_per_attribute(8)
            .build()
            .unwrap();
        let net = Arc::new(
            BrokerConfig::new(Topology::line(3).unwrap(), &schema)
                .policy(CoveringPolicy::ExactSfc)
                .build()
                .unwrap(),
        );
        BrokerDaemon::start(net, addr, 2).unwrap()
    }

    #[test]
    fn gives_up_with_a_typed_outcome_when_nobody_listens() {
        // Bind-then-drop yields a port that refuses connections.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let result = ResilientClient::connect(addr, policy);
        let gave_up = result.expect_err("nobody listens: must give up");
        assert_eq!(gave_up.attempts, 3);
        assert!(matches!(gave_up.error, ServiceError::Io(_)));
        assert!(gave_up.to_string().contains("gave up after 3"));
    }

    #[test]
    fn semantic_rejections_are_not_retried() {
        let daemon = start_daemon("127.0.0.1:0");
        let mut client = ResilientClient::connect(daemon.local_addr(), fast_policy()).unwrap();
        let event = Event::new(client.schema(), vec![10.0]).unwrap();
        let gave_up = client
            .publish(99, &event)
            .expect_err("unknown broker is a semantic rejection");
        assert_eq!(gave_up.attempts, 1, "no retries for semantic errors");
        assert!(matches!(gave_up.error, ServiceError::Rejected { .. }));
        assert_eq!(client.stats().retries, 0);
    }

    #[test]
    fn reconnects_and_replays_subscriptions_after_daemon_restart() {
        let first = start_daemon("127.0.0.1:0");
        let addr = first.local_addr();
        let mut daemon = first;
        let mut client = ResilientClient::connect(addr, fast_policy()).unwrap();
        let schema = client.schema().clone();
        let sub = SubscriptionBuilder::new(&schema)
            .range("x", 0.0, 50.0)
            .build(1)
            .unwrap();
        client.subscribe(0, 7, &sub).unwrap();
        let event = Event::new(&schema, vec![25.0]).unwrap();
        assert_eq!(client.publish(2, &event).unwrap(), vec![(0, 7)]);
        assert_eq!(client.last_outcome(), Resilience::Healthy);

        // The daemon dies and comes back on the same port with an empty
        // network — the client must notice, reconnect, and replay.
        daemon.shutdown();
        drop(daemon);
        let daemon = start_daemon(&addr.to_string());
        assert_eq!(
            client.publish(2, &event).unwrap(),
            vec![(0, 7)],
            "replayed subscription must match again after the restart"
        );
        assert!(matches!(
            client.last_outcome(),
            Resilience::Degraded { reconnects, .. } if reconnects >= 1
        ));
        assert!(client.stats().reconnects >= 1);
        assert_eq!(client.tracked_subscriptions(), vec![1]);
        assert_eq!(daemon.network().metrics().subscriptions_registered, 1);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_exponential() {
        let daemon = start_daemon("127.0.0.1:0");
        let schedule = |seed: u64| {
            let policy = RetryPolicy {
                base_backoff: Duration::from_millis(8),
                max_backoff: Duration::from_millis(100),
                jitter_seed: seed,
                ..RetryPolicy::default()
            };
            let mut client = ResilientClient::connect(daemon.local_addr(), policy).unwrap();
            (2..12)
                .map(|attempt| client.backoff_duration(attempt))
                .collect::<Vec<_>>()
        };
        let a = schedule(1);
        let b = schedule(1);
        assert_eq!(a, b, "same seed, same jitter schedule");
        for (i, d) in a.iter().enumerate() {
            assert!(*d <= Duration::from_millis(100), "capped at max_backoff");
            // Jitter floor is half the exponential value.
            let nominal = Duration::from_millis(8).saturating_mul(1 << i.min(16) as u32);
            assert!(*d >= nominal.min(Duration::from_millis(100)).mul_f64(0.5));
        }
        let c = schedule(2);
        assert_ne!(a, c, "different seed, different jitter");
    }
}
