//! Acyclic broker overlays.
//!
//! Distributed publish/subscribe systems in the Siena/REBECA family route
//! over an acyclic overlay (a tree), which makes reverse-path forwarding
//! trivially loop-free. [`Topology`] builds the standard shapes used in
//! evaluations — stars, lines, balanced trees and random trees — and exposes
//! the adjacency structure the simulator walks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::BrokerError;
use crate::Result;

/// An undirected, connected, acyclic overlay of brokers (a tree).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    brokers: usize,
    /// Edges as (smaller id, larger id) pairs.
    edges: Vec<(usize, usize)>,
    /// Adjacency lists, sorted.
    adjacency: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidTopology`] if the edge list does not
    /// describe a connected acyclic graph over `brokers` nodes.
    pub fn from_edges(brokers: usize, edges: &[(usize, usize)]) -> Result<Self> {
        if brokers == 0 {
            return Err(BrokerError::InvalidTopology {
                reason: "a network needs at least one broker".into(),
            });
        }
        if edges.len() != brokers - 1 {
            return Err(BrokerError::InvalidTopology {
                reason: format!(
                    "a tree over {brokers} brokers needs exactly {} edges, got {}",
                    brokers - 1,
                    edges.len()
                ),
            });
        }
        let mut adjacency = vec![Vec::new(); brokers];
        let mut normalized = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            if a >= brokers || b >= brokers {
                return Err(BrokerError::InvalidTopology {
                    reason: format!("edge ({a}, {b}) references a broker outside 0..{brokers}"),
                });
            }
            if a == b {
                return Err(BrokerError::InvalidTopology {
                    reason: format!("self-loop at broker {a}"),
                });
            }
            adjacency
                .get_mut(a)
                .expect("edge endpoints were range-checked above")
                .push(b);
            adjacency
                .get_mut(b)
                .expect("edge endpoints were range-checked above")
                .push(a);
            normalized.push((a.min(b), a.max(b)));
        }
        for adj in adjacency.iter_mut() {
            adj.sort_unstable();
        }
        let topology = Topology {
            brokers,
            edges: normalized,
            adjacency,
        };
        if !topology.is_connected() {
            return Err(BrokerError::InvalidTopology {
                reason: "the overlay is not connected".into(),
            });
        }
        Ok(topology)
    }

    /// A single broker with no links.
    pub fn single() -> Self {
        Topology {
            brokers: 1,
            edges: Vec::new(),
            adjacency: vec![Vec::new()],
        }
    }

    /// A star: broker 0 in the center, brokers `1..n` as leaves.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn star(n: usize) -> Result<Self> {
        if n == 1 {
            return Ok(Self::single());
        }
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        Self::from_edges(n, &edges)
    }

    /// A line (path) of `n` brokers: `0 — 1 — 2 — …`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn line(n: usize) -> Result<Self> {
        if n == 1 {
            return Ok(Self::single());
        }
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Self::from_edges(n, &edges)
    }

    /// A balanced tree with the given fanout and depth (depth 0 is a single
    /// root). The node count is `(fanout^(depth+1) − 1) / (fanout − 1)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `fanout < 2` or the tree would exceed 100 000
    /// brokers.
    pub fn balanced_tree(fanout: usize, depth: usize) -> Result<Self> {
        if fanout < 2 {
            return Err(BrokerError::InvalidTopology {
                reason: format!("balanced tree fanout must be at least 2, got {fanout}"),
            });
        }
        let mut count = 1usize;
        let mut level_size = 1usize;
        for _ in 0..depth {
            level_size = level_size.saturating_mul(fanout);
            count = count.saturating_add(level_size);
            if count > 100_000 {
                return Err(BrokerError::InvalidTopology {
                    reason: "balanced tree exceeds 100000 brokers".into(),
                });
            }
        }
        let mut edges = Vec::with_capacity(count - 1);
        for child in 1..count {
            let parent = (child - 1) / fanout;
            edges.push((parent, child));
        }
        Self::from_edges(count, &edges)
    }

    /// A random tree over `n` brokers: each broker `i > 0` attaches to a
    /// uniformly random earlier broker. Deterministic for a given seed.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`.
    pub fn random_tree(n: usize, seed: u64) -> Result<Self> {
        if n == 1 {
            return Ok(Self::single());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (rng.gen_range(0..i), i)).collect();
        Self::from_edges(n, &edges)
    }

    /// Number of brokers.
    pub fn brokers(&self) -> usize {
        self.brokers
    }

    /// The edges of the overlay.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of broker `id`, sorted. Out-of-range ids have none.
    pub fn neighbors(&self, id: usize) -> &[usize] {
        self.adjacency.get(id).map_or(&[], Vec::as_slice)
    }

    /// Whether `id` names a broker of this topology.
    pub fn contains(&self, id: usize) -> bool {
        id < self.brokers
    }

    /// Validates a broker identifier.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownBroker`] if the identifier is out of
    /// range.
    pub fn check_broker(&self, id: usize) -> Result<()> {
        if !self.contains(id) {
            return Err(BrokerError::UnknownBroker {
                id,
                brokers: self.brokers,
            });
        }
        Ok(())
    }

    /// The number of hops between two brokers.
    ///
    /// # Errors
    ///
    /// Returns an error if either identifier is out of range.
    pub fn distance(&self, from: usize, to: usize) -> Result<usize> {
        self.check_broker(from)?;
        self.check_broker(to)?;
        if from == to {
            return Ok(0);
        }
        let mut dist = vec![usize::MAX; self.brokers];
        *dist.get_mut(from).expect("`from` was range-checked above") = 0;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(b) = queue.pop_front() {
            let hops = dist
                .get(b)
                .copied()
                .expect("the queue holds only in-range broker ids");
            for &n in self.neighbors(b) {
                let slot = dist
                    .get_mut(n)
                    .expect("adjacency holds only in-range broker ids");
                if *slot == usize::MAX {
                    *slot = hops + 1;
                    if n == to {
                        return Ok(hops + 1);
                    }
                    queue.push_back(n);
                }
            }
        }
        // A tree reaches every broker, so BFS exhausting the queue without
        // hitting `to` means the invariant was broken elsewhere; report it
        // instead of panicking the routing layer.
        Err(BrokerError::InvalidTopology {
            reason: format!("no path from broker {from} to broker {to}"),
        })
    }

    fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.brokers];
        *seen
            .first_mut()
            .expect("the constructor rejects empty topologies") = true;
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut count = 1;
        while let Some(b) = queue.pop_front() {
            for &n in self.neighbors(b) {
                let slot = seen
                    .get_mut(n)
                    .expect("adjacency holds only in-range broker ids");
                if !*slot {
                    *slot = true;
                    count += 1;
                    queue.push_back(n);
                }
            }
        }
        count == self.brokers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_line_and_single() {
        let star = Topology::star(5).unwrap();
        assert_eq!(star.brokers(), 5);
        assert_eq!(star.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(star.neighbors(3), &[0]);
        assert_eq!(star.distance(1, 4).unwrap(), 2);

        let line = Topology::line(4).unwrap();
        assert_eq!(line.neighbors(1), &[0, 2]);
        assert_eq!(line.distance(0, 3).unwrap(), 3);

        let single = Topology::single();
        assert_eq!(single.brokers(), 1);
        assert!(single.neighbors(0).is_empty());
        assert_eq!(single.distance(0, 0).unwrap(), 0);
    }

    #[test]
    fn balanced_tree_shape() {
        let t = Topology::balanced_tree(2, 4).unwrap();
        assert_eq!(t.brokers(), 31);
        // Every non-root broker has exactly one parent; leaves have degree 1.
        assert_eq!(t.neighbors(0).len(), 2);
        assert_eq!(t.neighbors(30).len(), 1);
        assert_eq!(t.distance(15, 30).unwrap(), 8);
        assert!(Topology::balanced_tree(1, 3).is_err());
    }

    #[test]
    fn random_tree_is_deterministic_and_valid() {
        let a = Topology::random_tree(50, 7).unwrap();
        let b = Topology::random_tree(50, 7).unwrap();
        let c = Topology::random_tree(50, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.edges().len(), 49);
    }

    #[test]
    fn from_edges_validates_shape() {
        assert!(Topology::from_edges(0, &[]).is_err());
        assert!(Topology::from_edges(3, &[(0, 1)]).is_err(), "too few edges");
        assert!(
            Topology::from_edges(3, &[(0, 1), (0, 3)]).is_err(),
            "edge out of range"
        );
        assert!(
            Topology::from_edges(3, &[(0, 1), (1, 1)]).is_err(),
            "self loop"
        );
        assert!(
            Topology::from_edges(4, &[(0, 1), (0, 1), (2, 3)]).is_err(),
            "disconnected with duplicate edge"
        );
        assert!(Topology::from_edges(3, &[(0, 1), (1, 2)]).is_ok());
    }

    #[test]
    fn check_broker_bounds() {
        let t = Topology::star(3).unwrap();
        assert!(t.check_broker(2).is_ok());
        assert!(matches!(
            t.check_broker(3),
            Err(BrokerError::UnknownBroker { id: 3, brokers: 3 })
        ));
        assert!(t.distance(0, 9).is_err());
    }
}
