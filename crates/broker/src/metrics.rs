//! Network-wide metrics collected by the broker overlay.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Counters describing one simulation run.
///
/// These are exactly the quantities the paper's motivation attributes to
/// subscription covering: how many subscription messages crossed overlay
/// links, how many routing-table entries exist across the network, how much
/// covering-detection work the brokers did, and — unchanged by any covering
/// policy — how many events were delivered to subscribers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkMetrics {
    /// Subscriptions registered by clients.
    pub subscriptions_registered: u64,
    /// Subscription messages sent across overlay links.
    pub subscription_messages: u64,
    /// Subscription forwards suppressed because a covering subscription had
    /// already been sent on that link.
    pub subscriptions_suppressed: u64,
    /// Subscriptions unregistered by clients.
    pub unsubscriptions: u64,
    /// Unsubscription (retraction) messages sent across overlay links.
    pub unsubscription_messages: u64,
    /// Total routing-table entries across all brokers and interfaces.
    pub routing_table_entries: u64,
    /// Covering queries issued while propagating subscriptions.
    pub covering_queries: u64,
    /// Runs probed by SFC covering queries (0 for linear or no covering).
    pub covering_runs_probed: u64,
    /// Subscription comparisons performed by linear-scan covering queries.
    pub covering_comparisons: u64,
    /// Events published by clients.
    pub events_published: u64,
    /// Event messages sent across overlay links.
    pub event_messages: u64,
    /// Events delivered to local subscribers (a client counts once per
    /// matching subscription).
    pub deliveries: u64,
    /// Connections the daemon refused at the accept gate (connection cap)
    /// or requests it declined to execute (per-connection in-flight cap).
    pub connections_rejected: u64,
    /// Connections the daemon evicted: slow consumers whose response writes
    /// timed out, and idle connections the reaper closed. Each eviction
    /// retracts the session's subscriptions exactly like `unsubscribe`.
    pub connections_evicted: u64,
    /// Request frames that failed structural validation (bad magic or
    /// length, checksum mismatch, truncation, foreign version).
    pub frames_corrupt: u64,
    /// Idempotent retries the daemon absorbed: a `Resubscribe` that found
    /// the id already live, or a `Retract` of an id already gone.
    pub client_retries: u64,
    /// Session takeovers: a `Resubscribe` that moved a live registration
    /// from one connection to another — the signature of a client
    /// reconnecting and replaying its subscription set.
    pub client_reconnects: u64,
}

impl NetworkMetrics {
    /// Mean number of subscription messages per registered subscription.
    pub fn messages_per_subscription(&self) -> f64 {
        if self.subscriptions_registered == 0 {
            0.0
        } else {
            self.subscription_messages as f64 / self.subscriptions_registered as f64
        }
    }

    /// Mean number of event messages per published event.
    pub fn messages_per_event(&self) -> f64 {
        if self.events_published == 0 {
            0.0
        } else {
            self.event_messages as f64 / self.events_published as f64
        }
    }

    /// Fraction of subscription forwards that covering suppressed.
    pub fn suppression_ratio(&self) -> f64 {
        let attempted = self.subscription_messages + self.subscriptions_suppressed;
        if attempted == 0 {
            0.0
        } else {
            self.subscriptions_suppressed as f64 / attempted as f64
        }
    }
}

/// Interior-mutable counters behind [`NetworkMetrics`] in the concurrent
/// network: independent relaxed atomics (no cross-counter invariant is ever
/// read back mid-operation), snapshotted on demand. `routing_table_entries`
/// has no cell here — it is recomputed from broker state at snapshot time.
#[derive(Debug, Default)]
pub(crate) struct MetricCounters {
    pub subscriptions_registered: AtomicU64,
    pub subscription_messages: AtomicU64,
    pub subscriptions_suppressed: AtomicU64,
    pub unsubscriptions: AtomicU64,
    pub unsubscription_messages: AtomicU64,
    pub covering_queries: AtomicU64,
    pub covering_runs_probed: AtomicU64,
    pub covering_comparisons: AtomicU64,
    pub events_published: AtomicU64,
    pub event_messages: AtomicU64,
    pub deliveries: AtomicU64,
    pub connections_rejected: AtomicU64,
    pub connections_evicted: AtomicU64,
    pub frames_corrupt: AtomicU64,
    pub client_retries: AtomicU64,
    pub client_reconnects: AtomicU64,
}

impl MetricCounters {
    /// A point-in-time copy of every counter (`routing_table_entries` is
    /// left at 0 for the caller to fill in from live broker state).
    pub fn snapshot(&self) -> NetworkMetrics {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        NetworkMetrics {
            subscriptions_registered: get(&self.subscriptions_registered),
            subscription_messages: get(&self.subscription_messages),
            subscriptions_suppressed: get(&self.subscriptions_suppressed),
            unsubscriptions: get(&self.unsubscriptions),
            unsubscription_messages: get(&self.unsubscription_messages),
            routing_table_entries: 0,
            covering_queries: get(&self.covering_queries),
            covering_runs_probed: get(&self.covering_runs_probed),
            covering_comparisons: get(&self.covering_comparisons),
            events_published: get(&self.events_published),
            event_messages: get(&self.event_messages),
            deliveries: get(&self.deliveries),
            connections_rejected: get(&self.connections_rejected),
            connections_evicted: get(&self.connections_evicted),
            frames_corrupt: get(&self.frames_corrupt),
            client_retries: get(&self.client_retries),
            client_reconnects: get(&self.client_reconnects),
        }
    }

    /// Relaxed add, the only write mode the counters need.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed increment.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let m = NetworkMetrics::default();
        assert_eq!(m.messages_per_subscription(), 0.0);
        assert_eq!(m.messages_per_event(), 0.0);
        assert_eq!(m.suppression_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute_expected_values() {
        let m = NetworkMetrics {
            subscriptions_registered: 10,
            subscription_messages: 40,
            subscriptions_suppressed: 10,
            events_published: 5,
            event_messages: 20,
            ..NetworkMetrics::default()
        };
        assert_eq!(m.messages_per_subscription(), 4.0);
        assert_eq!(m.messages_per_event(), 4.0);
        assert_eq!(m.suppression_ratio(), 0.2);
    }
}
