//! A blocking client for the `acd-brokerd` daemon.
//!
//! [`BrokerClient::connect`] performs the `Hello` handshake and rebuilds
//! the daemon's [`Schema`] locally, so subscriptions and events can be
//! constructed client-side against the exact attribute universe the
//! network uses. Requests are strict request/response except
//! [`publish_batch`](BrokerClient::publish_batch), which pipelines a whole
//! burst of publishes over the socket before collecting the responses —
//! the shape the daemon's flush-on-idle batching is built for.

use std::error::Error;
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use acd_subscription::{Event, Schema, SubId, Subscription};

use crate::broker::{BrokerId, ClientId};
use crate::error::ServiceError;
use crate::wire::{encode_frame, read_frame, Frame};

/// A [`publish_batch`](BrokerClient::publish_batch) failure that preserves
/// the partial result: every delivery list acknowledged before the error.
///
/// Events at positions `< acked.len()` were definitely applied; events past
/// that point are *in limbo* — their requests may or may not have reached
/// the daemon before the connection died. Callers resuming a batch should
/// continue from `acked.len()` knowing limbo events can be double-applied
/// (publishing has no subscriber-visible state, so a duplicate at worst
/// inflates the network's message counters).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchError {
    /// Delivery lists for the prefix of events the daemon acknowledged.
    pub acked: Vec<Vec<(BrokerId, ClientId)>>,
    /// What ended the batch.
    pub error: ServiceError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch failed after {} acknowledged publishes: {}",
            self.acked.len(),
            self.error
        )
    }
}

impl Error for BatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.error)
    }
}

impl From<BatchError> for ServiceError {
    fn from(e: BatchError) -> ServiceError {
        e.error
    }
}

/// A connection to a broker daemon.
#[derive(Debug)]
pub struct BrokerClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    schema: Schema,
    /// Reused encode buffer: steady-state requests allocate nothing.
    out: Vec<u8>,
    /// Reused decode payload buffer.
    scratch: Vec<u8>,
}

impl BrokerClient {
    /// Connects and completes the `Hello` handshake.
    ///
    /// # Errors
    ///
    /// Returns an error if the connection fails, the greeting is corrupt,
    /// or the daemon's schema does not parse.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<BrokerClient, ServiceError> {
        BrokerClient::connect_with(addr, None)
    }

    /// Like [`connect`](Self::connect), but with `io_timeout` applied to
    /// the socket *before* the handshake read, so a daemon that accepts
    /// and then never greets (or whose greeting is lost in transit)
    /// surfaces as a timed-out connect instead of a hang. The resilient
    /// layer always connects this way.
    ///
    /// # Errors
    ///
    /// As for [`connect`](Self::connect), plus a timeout I/O error when
    /// the greeting does not arrive within the deadline.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        io_timeout: Option<Duration>,
    ) -> Result<BrokerClient, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        let mut scratch = Vec::new();
        let schema =
            match read_frame(&mut reader, &mut scratch)? {
                Frame::Hello { schema_json } => serde_json::from_str::<Schema>(&schema_json)
                    .map_err(|e| ServiceError::CorruptFrame {
                        reason: format!("Hello schema does not parse: {e}"),
                    })?,
                // A `Rejected` greeting (connection cap) maps to a typed
                // `Overloaded` here, like any other non-Hello frame.
                other => return Err(unexpected(other)),
            };
        Ok(BrokerClient {
            reader,
            writer,
            schema,
            out: Vec::new(),
            scratch,
        })
    }

    /// The schema the daemon's network uses (from the `Hello` greeting).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Applies a deadline to every socket read and write (`None` blocks
    /// forever). The resilient layer sets this per attempt so a stalled
    /// daemon surfaces as a timed-out request instead of a hang.
    ///
    /// # Errors
    ///
    /// Returns an error if the socket options cannot be set.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServiceError> {
        // Reader and writer share one fd, so one call covers both halves.
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Registers `subscription` for `client` at broker `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Rejected`] if the daemon's network refused
    /// the registration, or a transport/protocol error.
    pub fn subscribe(
        &mut self,
        at: BrokerId,
        client: ClientId,
        subscription: &Subscription,
    ) -> Result<(), ServiceError> {
        self.send(&Frame::subscribe(at, client, subscription))?;
        match self.receive()? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Registers `subscription` idempotently with a session `epoch`
    /// ([`Frame::Resubscribe`]): retrying after a lost response, or
    /// replaying after a reconnect, converges on the registration being
    /// live exactly once. This is the request the resilient layer uses for
    /// every subscribe.
    ///
    /// # Errors
    ///
    /// As for [`subscribe`](Self::subscribe).
    pub fn resubscribe(
        &mut self,
        at: BrokerId,
        client: ClientId,
        subscription: &Subscription,
        epoch: u64,
    ) -> Result<(), ServiceError> {
        self.send(&Frame::resubscribe(at, client, subscription, epoch))?;
        match self.receive()? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Retracts subscription `id` from broker `at`.
    ///
    /// # Errors
    ///
    /// As for [`subscribe`](Self::subscribe).
    pub fn unsubscribe(&mut self, at: BrokerId, id: SubId) -> Result<(), ServiceError> {
        self.send(&Frame::Unsubscribe { at, id })?;
        match self.receive()? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Retracts subscription `id` idempotently with a session `epoch`
    /// ([`Frame::Retract`]): retracting an id that is already gone is a
    /// success, so a retried retraction never errors.
    ///
    /// # Errors
    ///
    /// As for [`subscribe`](Self::subscribe).
    pub fn retract(&mut self, at: BrokerId, id: SubId, epoch: u64) -> Result<(), ServiceError> {
        self.send(&Frame::Retract { at, id, epoch })?;
        match self.receive()? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Publishes `event` at broker `at`, returning the deliveries it caused
    /// across the whole overlay as sorted `(broker, client)` pairs.
    ///
    /// # Errors
    ///
    /// As for [`subscribe`](Self::subscribe).
    pub fn publish(
        &mut self,
        at: BrokerId,
        event: &Event,
    ) -> Result<Vec<(BrokerId, ClientId)>, ServiceError> {
        self.send(&Frame::Publish {
            at,
            values: event.values().to_vec(),
        })?;
        match self.receive()? {
            Frame::Deliveries { pairs } => Ok(pairs),
            other => Err(unexpected(other)),
        }
    }

    /// Publishes a whole burst of events pipelined — all requests go out
    /// before any response is read — returning one delivery list per event,
    /// in order. On an overlay served to many clients this is the
    /// throughput shape: one flush per burst, one batched response write
    /// from the daemon.
    ///
    /// # Errors
    ///
    /// Fails with a [`BatchError`] carrying every delivery list that was
    /// acknowledged before the failure, so callers can resume from
    /// `acked.len()` instead of blindly re-publishing the whole batch. The
    /// first rejected publish fails the rest of the batch the same way.
    pub fn publish_batch(
        &mut self,
        at: BrokerId,
        events: &[Event],
    ) -> Result<Vec<Vec<(BrokerId, ClientId)>>, BatchError> {
        let mut acked: Vec<Vec<(BrokerId, ClientId)>> = Vec::with_capacity(events.len());
        let fail = |acked: &mut Vec<Vec<(BrokerId, ClientId)>>, error: ServiceError| BatchError {
            acked: std::mem::take(acked),
            error,
        };
        for event in events {
            encode_frame(
                &Frame::Publish {
                    at,
                    values: event.values().to_vec(),
                },
                &mut self.out,
            );
            if let Err(e) = self.writer.write_all(&self.out) {
                return Err(fail(&mut acked, e.into()));
            }
        }
        if let Err(e) = self.writer.flush() {
            return Err(fail(&mut acked, e.into()));
        }
        for _ in events {
            match read_frame(&mut self.reader, &mut self.scratch) {
                Ok(Frame::Deliveries { pairs }) => acked.push(pairs),
                Ok(other) => {
                    let error = unexpected(other);
                    return Err(fail(&mut acked, error));
                }
                Err(e) => return Err(fail(&mut acked, e)),
            }
        }
        Ok(acked)
    }

    /// Encodes, writes and flushes one request frame.
    fn send(&mut self, frame: &Frame) -> Result<(), ServiceError> {
        encode_frame(frame, &mut self.out);
        self.writer.write_all(&self.out)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one response frame.
    fn receive(&mut self) -> Result<Frame, ServiceError> {
        read_frame(&mut self.reader, &mut self.scratch)
    }
}

/// Maps a non-success response to the matching error: daemon `Err` frames
/// become [`ServiceError::Rejected`], `Rejected` frames (overload
/// shedding — the request was *not* executed) become
/// [`ServiceError::Overloaded`], anything else is a protocol violation.
fn unexpected(frame: Frame) -> ServiceError {
    match frame {
        Frame::Err { message } => ServiceError::Rejected { message },
        Frame::Rejected { reason } => ServiceError::Overloaded { reason },
        other => ServiceError::UnexpectedFrame {
            kind: other.kind_name().to_string(),
        },
    }
}
