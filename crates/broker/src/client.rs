//! A blocking client for the `acd-brokerd` daemon.
//!
//! [`BrokerClient::connect`] performs the `Hello` handshake and rebuilds
//! the daemon's [`Schema`] locally, so subscriptions and events can be
//! constructed client-side against the exact attribute universe the
//! network uses. Requests are strict request/response except
//! [`publish_batch`](BrokerClient::publish_batch), which pipelines a whole
//! burst of publishes over the socket before collecting the responses —
//! the shape the daemon's flush-on-idle batching is built for.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use acd_subscription::{Event, Schema, SubId, Subscription};

use crate::broker::{BrokerId, ClientId};
use crate::error::ServiceError;
use crate::wire::{encode_frame, read_frame, Frame};

/// A connection to a broker daemon.
#[derive(Debug)]
pub struct BrokerClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    schema: Schema,
    /// Reused encode buffer: steady-state requests allocate nothing.
    out: Vec<u8>,
    /// Reused decode payload buffer.
    scratch: Vec<u8>,
}

impl BrokerClient {
    /// Connects and completes the `Hello` handshake.
    ///
    /// # Errors
    ///
    /// Returns an error if the connection fails, the greeting is corrupt,
    /// or the daemon's schema does not parse.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<BrokerClient, ServiceError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let mut reader = BufReader::new(stream);
        let mut scratch = Vec::new();
        let schema =
            match read_frame(&mut reader, &mut scratch)? {
                Frame::Hello { schema_json } => serde_json::from_str::<Schema>(&schema_json)
                    .map_err(|e| ServiceError::CorruptFrame {
                        reason: format!("Hello schema does not parse: {e}"),
                    })?,
                other => {
                    return Err(ServiceError::UnexpectedFrame {
                        kind: other.kind_name().to_string(),
                    })
                }
            };
        Ok(BrokerClient {
            reader,
            writer,
            schema,
            out: Vec::new(),
            scratch,
        })
    }

    /// The schema the daemon's network uses (from the `Hello` greeting).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Registers `subscription` for `client` at broker `at`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Rejected`] if the daemon's network refused
    /// the registration, or a transport/protocol error.
    pub fn subscribe(
        &mut self,
        at: BrokerId,
        client: ClientId,
        subscription: &Subscription,
    ) -> Result<(), ServiceError> {
        self.send(&Frame::subscribe(at, client, subscription))?;
        match self.receive()? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Retracts subscription `id` from broker `at`.
    ///
    /// # Errors
    ///
    /// As for [`subscribe`](Self::subscribe).
    pub fn unsubscribe(&mut self, at: BrokerId, id: SubId) -> Result<(), ServiceError> {
        self.send(&Frame::Unsubscribe { at, id })?;
        match self.receive()? {
            Frame::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Publishes `event` at broker `at`, returning the deliveries it caused
    /// across the whole overlay as sorted `(broker, client)` pairs.
    ///
    /// # Errors
    ///
    /// As for [`subscribe`](Self::subscribe).
    pub fn publish(
        &mut self,
        at: BrokerId,
        event: &Event,
    ) -> Result<Vec<(BrokerId, ClientId)>, ServiceError> {
        self.send(&Frame::Publish {
            at,
            values: event.values().to_vec(),
        })?;
        match self.receive()? {
            Frame::Deliveries { pairs } => Ok(pairs),
            other => Err(unexpected(other)),
        }
    }

    /// Publishes a whole burst of events pipelined — all requests go out
    /// before any response is read — returning one delivery list per event,
    /// in order. On an overlay served to many clients this is the
    /// throughput shape: one flush per burst, one batched response write
    /// from the daemon.
    ///
    /// # Errors
    ///
    /// As for [`subscribe`](Self::subscribe); the first rejected publish
    /// fails the whole batch.
    pub fn publish_batch(
        &mut self,
        at: BrokerId,
        events: &[Event],
    ) -> Result<Vec<Vec<(BrokerId, ClientId)>>, ServiceError> {
        for event in events {
            encode_frame(
                &Frame::Publish {
                    at,
                    values: event.values().to_vec(),
                },
                &mut self.out,
            );
            self.writer.write_all(&self.out)?;
        }
        self.writer.flush()?;
        let mut batches = Vec::with_capacity(events.len());
        for _ in events {
            match read_frame(&mut self.reader, &mut self.scratch)? {
                Frame::Deliveries { pairs } => batches.push(pairs),
                other => return Err(unexpected(other)),
            }
        }
        Ok(batches)
    }

    /// Encodes, writes and flushes one request frame.
    fn send(&mut self, frame: &Frame) -> Result<(), ServiceError> {
        encode_frame(frame, &mut self.out);
        self.writer.write_all(&self.out)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one response frame.
    fn receive(&mut self) -> Result<Frame, ServiceError> {
        read_frame(&mut self.reader, &mut self.scratch)
    }
}

/// Maps a non-success response to the matching error: daemon `Err` frames
/// become [`ServiceError::Rejected`], anything else is a protocol
/// violation.
fn unexpected(frame: Frame) -> ServiceError {
    match frame {
        Frame::Err { message } => ServiceError::Rejected { message },
        other => ServiceError::UnexpectedFrame {
            kind: other.kind_name().to_string(),
        },
    }
}
