//! The TCP front door: a daemon serving one [`BrokerNetwork`] to remote
//! clients over the [`crate::wire`] protocol.
//!
//! Architecture:
//!
//! * an **accept thread** polls the listener (non-blocking, so shutdown is
//!   observed without a wake-up connection), applies the connection cap —
//!   over-cap peers get a typed [`Frame::Rejected`] answer instead of an
//!   accept-then-stall — and hands each admitted socket to
//! * a **connection worker team** — the same long-lived channel-fed
//!   [`QueryPool`] the sharded index uses for queries — where each
//!   connection is served to completion by one worker;
//! * every worker drives the **shared network through `&self`**: the
//!   overlay's interior locking (see `LOCKING.md`) is what lets N
//!   connections subscribe, unsubscribe and publish concurrently.
//!
//! Per connection the worker speaks a strict request/response protocol
//! (`Hello` greeting, then one response frame per request frame, in order)
//! with **flush-on-idle batching**: responses are buffered while more
//! requests are already readable and flushed when the connection goes
//! idle, so a pipelining client pays one syscall per burst instead of one
//! per publish.
//!
//! # Failure handling
//!
//! The daemon is the resilient half of the client/server pair:
//!
//! * **Sessions are connection-scoped.** Every subscription registered over
//!   a connection is tracked in a session map; when the connection ends —
//!   clean EOF, protocol error, slow-consumer eviction or idle reap — its
//!   surviving registrations are retracted exactly like `unsubscribe`
//!   (the *drained-state invariant*: a dead client leaves no routing
//!   entries behind).
//! * **Replay is idempotent.** [`Frame::Resubscribe`]/[`Frame::Retract`]
//!   carry the client's session *epoch*; the daemon acts only on frames
//!   whose epoch is current, so a stalled request from a pre-reconnect
//!   connection can never clobber state the reconnected client already
//!   replayed.
//! * **Overload is answered, not queued.** Beyond
//!   [`DaemonOptions::max_connections`] the accept thread answers
//!   [`Frame::Rejected`] and closes; beyond
//!   [`DaemonOptions::max_inflight`] unflushed responses, further
//!   pipelined requests on that connection are answered `Rejected`
//!   without executing.
//! * **Faults are injectable.** With [`DaemonOptions::chaos`], every
//!   admitted connection is wrapped in a pair of seeded
//!   [`FaultyStream`]s, so unmodified clients on clean sockets experience
//!   drops, corruption, stalls and disconnects deterministically.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acd_covering::ordered::{OrderedMutex, RANK_JOURNAL, RANK_SESSION};
use acd_covering::storage::{
    read_snapshot, write_snapshot, JournalRecord, StorageError, SubscriptionJournal,
};
use acd_covering::QueryPool;
use acd_subscription::{Event, Schema, SubId, Subscription, SubscriptionBuilder};

use crate::broker::BrokerId;
use crate::error::{BrokerError, ServiceError};
use crate::faults::{FaultPlan, FaultyStream};
use crate::metrics::MetricCounters;
use crate::network::BrokerNetwork;
use crate::wire::{buffered_publish, encode_frame, read_frame, Frame};

/// How long a blocked connection read waits before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// How long the accept thread sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Write deadline for the `Rejected` frame sent to an over-cap peer — the
/// one write the daemon performs on a connection it never admitted.
const REJECT_WRITE_TIMEOUT: Duration = Duration::from_millis(1000);

/// The append-only journal inside [`DaemonOptions::data_dir`].
const JOURNAL_FILE: &str = "journal.acd";

/// The graceful-shutdown snapshot inside [`DaemonOptions::data_dir`].
const SNAPSHOT_FILE: &str = "snapshot.acd";

/// Session owner of subscriptions restored from the data directory. No
/// real connection ever gets this id (they count up from zero), so a
/// recovered registration is never swept by connection cleanup — it lives
/// until a client retracts it or takes it over by resubscribing.
const RECOVERED_CONN: u64 = u64::MAX;

/// Tuning for a [`BrokerDaemon`]: worker count, overload caps, eviction
/// deadlines and the optional chaos schedule.
#[derive(Debug, Clone, Default)]
pub struct DaemonOptions {
    /// Connection workers; each serves one connection at a time, so this
    /// bounds the number of concurrently *served* clients (0 is treated as
    /// 1 by the pool).
    pub workers: usize,
    /// Accepted-connection cap (0 = unlimited). Peers beyond the cap are
    /// answered with a typed [`Frame::Rejected`] and closed instead of
    /// being accepted and left to stall in the worker queue.
    pub max_connections: usize,
    /// Per-connection cap on unflushed pipelined responses (0 =
    /// unlimited). Requests beyond it are answered [`Frame::Rejected`]
    /// without executing, keeping the one-response-per-request cadence.
    pub max_inflight: usize,
    /// Evict a connection that has sent no request for this long
    /// (`None` = never). Reaped sessions are retracted like `unsubscribe`.
    pub idle_timeout: Option<Duration>,
    /// Socket write deadline (`None` = block forever). A consumer too slow
    /// to drain its responses within the deadline is evicted.
    pub write_timeout: Option<Duration>,
    /// Fault-injection schedule applied to every admitted connection
    /// (`None` = clean transport). See [`FaultPlan`].
    pub chaos: Option<FaultPlan>,
    /// Durable state directory (`None` = in-memory only). When set, every
    /// acknowledged subscribe/unsubscribe is journaled **and fsynced**
    /// before the ack is sent, the journal is compacted into a snapshot on
    /// graceful shutdown, and start-up replays `snapshot ∘ journal` — so
    /// the acked subscription set survives a kill -9, an OS crash, or
    /// power loss.
    pub data_dir: Option<PathBuf>,
}

/// One tracked subscription registration: which connection owns it, the
/// session epoch that installed it, and its home broker (for retraction).
#[derive(Debug, Clone, Copy)]
struct SessionEntry {
    conn: u64,
    epoch: u64,
    at: BrokerId,
}

/// The daemon's durable half: the open journal, the directory it lives
/// in, and the durable live set (id → its `Subscribe` record), maintained
/// in lockstep with every append so the shutdown snapshot needs no
/// replay.
#[derive(Debug)]
struct Persistence {
    dir: PathBuf,
    journal: SubscriptionJournal,
    live: HashMap<SubId, JournalRecord>,
}

/// Shared state of a running daemon: the served network, options, the
/// session registry and the live-connection gauge.
#[derive(Debug)]
struct DaemonState {
    network: Arc<BrokerNetwork>,
    options: DaemonOptions,
    chaos: Option<Arc<FaultPlan>>,
    shutdown: AtomicBool,
    /// Subscription id → owning session. Rank `session` (3): handlers hold
    /// this mutex *across* the `network.subscribe`/`unsubscribe` calls that
    /// install or retract the registration, so replay and retraction of one
    /// id are serialized — see `LOCKING.md`.
    sessions: OrderedMutex<HashMap<SubId, SessionEntry>>,
    /// The durable journal, `None` without a data directory. Rank
    /// `journal` (4): appended to while the session entry is held, so the
    /// journal order matches the serialization the session lock imposes.
    journal: OrderedMutex<Option<Persistence>>,
    active: AtomicUsize,
}

impl DaemonState {
    fn new(
        network: Arc<BrokerNetwork>,
        options: DaemonOptions,
    ) -> Result<DaemonState, ServiceError> {
        let chaos = options
            .chaos
            .as_ref()
            .filter(|plan| !plan.is_noop())
            .cloned()
            .map(Arc::new);
        let mut sessions = HashMap::new();
        let persistence = match &options.data_dir {
            Some(dir) => Some(recover(&network, dir, &mut sessions)?),
            None => None,
        };
        Ok(DaemonState {
            network,
            options,
            chaos,
            shutdown: AtomicBool::new(false),
            sessions: OrderedMutex::new(RANK_SESSION, "session", sessions),
            journal: OrderedMutex::new(RANK_JOURNAL, "journal", persistence),
            active: AtomicUsize::new(0),
        })
    }
}

/// The id a journal record is about.
fn record_id(record: &JournalRecord) -> SubId {
    match record {
        JournalRecord::Subscribe { id, .. } | JournalRecord::Unsubscribe { id, .. } => *id,
    }
}

/// Loads `snapshot ∘ journal` from the data directory, re-registers every
/// surviving subscription with the network, and seeds the session map
/// (owner [`RECOVERED_CONN`]) so reconnecting clients take their
/// registrations over with an ordinary `Resubscribe`.
fn recover(
    network: &BrokerNetwork,
    dir: &Path,
    sessions: &mut HashMap<SubId, SessionEntry>,
) -> Result<Persistence, ServiceError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| ServiceError::Io(format!("create {}: {e}", dir.display())))?;
    let storage = |e: StorageError| ServiceError::Io(e.to_string());
    let snapshot = read_snapshot(&dir.join(SNAPSHOT_FILE)).map_err(storage)?;
    let (journal, tail) = SubscriptionJournal::open(&dir.join(JOURNAL_FILE)).map_err(storage)?;
    let mut live: HashMap<SubId, JournalRecord> = HashMap::new();
    for record in snapshot.unwrap_or_default().into_iter().chain(tail) {
        match record {
            JournalRecord::Subscribe { id, .. } => {
                live.insert(id, record);
            }
            JournalRecord::Unsubscribe { id, .. } => {
                live.remove(&id);
            }
        }
    }
    let mut restored: Vec<&JournalRecord> = live.values().collect();
    restored.sort_by_key(|record| record_id(record));
    for record in restored {
        let JournalRecord::Subscribe {
            at,
            client,
            id,
            bounds,
        } = record
        else {
            continue;
        };
        let subscription =
            build_subscription(network.schema(), *id, bounds).map_err(|message| {
                ServiceError::Io(format!("recovered subscription {id}: {message}"))
            })?;
        let at = *at as BrokerId;
        network
            .subscribe(at, *client, &subscription)
            .map_err(ServiceError::Broker)?;
        sessions.insert(
            *id,
            SessionEntry {
                conn: RECOVERED_CONN,
                epoch: 0,
                at,
            },
        );
    }
    Ok(Persistence {
        dir: dir.to_owned(),
        journal,
        live,
    })
}

/// Appends one record to the journal (and the mirrored live set) — a
/// no-op without a data directory. The caller must already hold the
/// session entry for the record's id, so appends land in the same order
/// the mutations were serialized in.
fn journal_append(state: &DaemonState, record: JournalRecord) -> Result<(), StorageError> {
    let mut journal = state.journal.lock();
    let Some(persistence) = journal.as_mut() else {
        return Ok(());
    };
    persistence.journal.append(&record)?;
    match record {
        JournalRecord::Subscribe { id, .. } => {
            persistence.live.insert(id, record);
        }
        JournalRecord::Unsubscribe { id, .. } => {
            persistence.live.remove(&id);
        }
    }
    Ok(())
}

/// Acks a completed retraction, durably when a journal is configured. A
/// failed journal write turns the ack into an error so the client
/// retries — retraction is idempotent, so the retry converges.
fn journalled_retract_ok(state: &DaemonState, at: BrokerId, id: SubId) -> Frame {
    match journal_append(state, JournalRecord::Unsubscribe { at: at as u64, id }) {
        Ok(()) => Frame::Ok,
        Err(e) => Frame::Err {
            message: format!("journal write failed: {e}"),
        },
    }
}

/// A running broker daemon: owns the listener and the connection worker
/// team, serves until dropped (or [`shutdown`](Self::shutdown)).
///
/// ```no_run
/// use std::sync::Arc;
/// use acd_broker::{BrokerConfig, BrokerDaemon, Topology};
/// use acd_subscription::Schema;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = Schema::builder().attribute("x", 0.0, 100.0).build()?;
/// let net = Arc::new(BrokerConfig::new(Topology::star(4)?, &schema).build()?);
/// let daemon = BrokerDaemon::start(net, "127.0.0.1:0", 4)?;
/// println!("listening on {}", daemon.local_addr());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BrokerDaemon {
    state: Arc<DaemonState>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl BrokerDaemon {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `network` with a team of `workers` connection workers and no caps —
    /// the permissive configuration PR-7 shipped. See
    /// [`start_with`](Self::start_with) for the tunable version.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start(
        network: Arc<BrokerNetwork>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> Result<BrokerDaemon, ServiceError> {
        BrokerDaemon::start_with(
            network,
            addr,
            DaemonOptions {
                workers,
                ..DaemonOptions::default()
            },
        )
    }

    /// Binds `addr` and starts serving `network` with full [`DaemonOptions`]
    /// control: overload caps, eviction deadlines and chaos injection.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start_with(
        network: Arc<BrokerNetwork>,
        addr: impl ToSocketAddrs,
        options: DaemonOptions,
    ) -> Result<BrokerDaemon, ServiceError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(DaemonState::new(network, options)?);
        let accept_thread = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("acd-brokerd-accept".into())
                .spawn(move || accept_loop(listener, state))
                .map_err(ServiceError::from)?
        };
        Ok(BrokerDaemon {
            state,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the daemon is actually listening on (with the real port
    /// when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served network — callers can inspect metrics or drive it
    /// in-process alongside the remote clients.
    pub fn network(&self) -> &Arc<BrokerNetwork> {
        &self.state.network
    }

    /// Stops accepting, drains the worker team, and returns once every
    /// connection worker has exited. With a data directory, the live
    /// subscription set is then compacted into an atomic snapshot and the
    /// journal reset, so the next start loads one small file instead of
    /// replaying the full log. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            // Joining the accept thread drops the pool, which joins every
            // connection worker.
            let _ = handle.join();
            // Workers are gone, so the live set is quiescent: snapshot it.
            let mut journal = self.state.journal.lock();
            if let Some(persistence) = journal.as_mut() {
                let mut records: Vec<JournalRecord> = persistence.live.values().cloned().collect();
                records.sort_by_key(record_id);
                let outcome = write_snapshot(&persistence.dir.join(SNAPSHOT_FILE), &records)
                    .and_then(|()| persistence.journal.reset());
                if let Err(e) = outcome {
                    // The journal still holds the full history, so a failed
                    // compaction costs replay time, not data.
                    eprintln!("acd-brokerd: snapshot on shutdown failed: {e}");
                }
            }
        }
    }
}

impl Drop for BrokerDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts until shutdown, dispatching each admitted connection to the
/// worker team and answering over-cap peers with [`Frame::Rejected`].
fn accept_loop(listener: TcpListener, state: Arc<DaemonState>) {
    let pool = QueryPool::new(state.options.workers);
    let mut next_conn: u64 = 0;
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let cap = state.options.max_connections;
                if cap != 0 && state.active.load(Ordering::SeqCst) >= cap {
                    reject_connection(&state, stream, cap);
                    continue;
                }
                let conn = next_conn;
                next_conn += 1;
                // Counted at accept (not at first service) so queued
                // connections hold a slot — the cap bounds admission, and
                // over-cap peers learn it immediately instead of stalling
                // in the worker queue.
                state.active.fetch_add(1, Ordering::SeqCst);
                let state = Arc::clone(&state);
                pool.execute(move || {
                    // A connection failing (corrupt frames, peer reset) only
                    // closes that connection; the daemon keeps serving.
                    let _ = serve_connection(&state, stream, conn);
                    state.active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping the pool here joins the connection workers; their reads
    // observe the shutdown flag within one READ_POLL.
}

/// Answers an over-cap peer with a typed rejection and closes — bounded by
/// a short write deadline so a hostile peer cannot stall the accept loop.
fn reject_connection(state: &DaemonState, stream: TcpStream, cap: usize) {
    MetricCounters::bump(&state.network.counters().connections_rejected);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(REJECT_WRITE_TIMEOUT));
    let mut out = Vec::new();
    encode_frame(
        &Frame::Rejected {
            reason: format!("connection cap reached ({cap} active)"),
        },
        &mut out,
    );
    let mut writer = &stream;
    let _ = writer.write_all(&out);
    let _ = writer.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Configures the admitted socket and serves it, applying the chaos
/// schedule when one is installed.
fn serve_connection(state: &DaemonState, stream: TcpStream, conn: u64) -> Result<(), ServiceError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    if state.options.write_timeout.is_some() {
        // try_clone shares the fd, so one call covers both halves.
        stream.set_write_timeout(state.options.write_timeout)?;
    }
    let read_half = stream.try_clone()?;
    match &state.chaos {
        Some(plan) => {
            // Separate per-direction salts: the two halves draw
            // independent, reproducible fault schedules.
            let reader = FaultyStream::new(read_half, Arc::clone(plan), conn * 2);
            let writer = FaultyStream::new(stream, Arc::clone(plan), conn * 2 + 1);
            serve_session(state, reader, writer, conn)
        }
        None => serve_session(state, read_half, stream, conn),
    }
}

/// Serves one connection over any transport, then retracts whatever the
/// session still has registered — the drained-state invariant holds on
/// *every* exit path: clean EOF, corrupt frame, slow-consumer eviction,
/// idle reap, or daemon shutdown.
fn serve_session<S: Read, W: Write>(
    state: &DaemonState,
    transport: S,
    sink: W,
    conn: u64,
) -> Result<(), ServiceError> {
    let result = session_loop(state, transport, sink, conn);
    // Only a session the *daemon* tore down (the shutdown flag synthesized
    // its EOF) keeps its registrations out of the journal; a client that
    // genuinely vanished — real EOF, corrupt frame, eviction — is cleaned
    // up like an unsubscribe even if a graceful shutdown is racing us.
    let daemon_teardown = matches!(result, Ok(true));
    cleanup_sessions(state, conn, daemon_teardown);
    result.map(|_| ())
}

/// The request/response loop: `Hello` greeting, then one response per
/// request with flush-on-idle batching and the in-flight cap. A clean end
/// returns whether the *daemon* ended the session (its shutdown flag
/// synthesized the EOF) rather than the peer.
fn session_loop<S: Read, W: Write>(
    state: &DaemonState,
    transport: S,
    sink: W,
    conn: u64,
) -> Result<bool, ServiceError> {
    let mut writer = BufWriter::new(sink);
    let mut reader = BufReader::new(PatientStream::new(
        transport,
        &state.shutdown,
        state.options.idle_timeout,
    ));
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    let counters = state.network.counters();

    let schema_json = serde_json::to_string(state.network.schema())
        .map_err(|e| ServiceError::Io(e.to_string()))?;
    encode_frame(&Frame::Hello { schema_json }, &mut out);
    send(state, &mut writer, &out)?;
    flush(state, &mut writer)?;

    let mut inflight = 0usize;
    let mut replies: Vec<Frame> = Vec::new();
    loop {
        // Peek for data so a clean disconnect (EOF at a frame boundary,
        // including our own shutdown and the idle reaper) ends the loop
        // without an error.
        if reader.fill_buf()?.is_empty() {
            flush(state, &mut writer)?;
            if reader.get_ref().reaped() {
                MetricCounters::bump(&counters.connections_evicted);
            }
            return Ok(reader.get_ref().ended_by_shutdown());
        }
        let request = match read_frame(&mut reader, &mut scratch) {
            Ok(frame) => frame,
            Err(e) => {
                if matches!(
                    e,
                    ServiceError::CorruptFrame { .. } | ServiceError::VersionMismatch { .. }
                ) {
                    MetricCounters::bump(&counters.frames_corrupt);
                }
                return Err(e);
            }
        };
        let cap = state.options.max_inflight;
        replies.clear();
        if cap != 0 && inflight >= cap {
            MetricCounters::bump(&counters.connections_rejected);
            replies.push(Frame::Rejected {
                reason: format!("in-flight cap reached ({cap} unflushed responses)"),
            });
        } else if let Frame::Publish { at, values } = request {
            // A pipelining client's burst of same-broker publishes executes
            // as one batch: drain every *fully buffered* Publish frame for
            // the same broker (never blocking on a partial frame, never
            // crossing the in-flight cap — frames beyond it stay buffered
            // and are answered `Rejected` one by one, as before).
            let mut batch: Vec<Vec<f64>> = Vec::new();
            batch.push(values);
            while cap == 0 || inflight + batch.len() < cap {
                if buffered_publish(reader.buffer()) != Some(at) {
                    break;
                }
                match read_frame(&mut reader, &mut scratch) {
                    Ok(Frame::Publish { values, .. }) => batch.push(values),
                    Ok(other) => {
                        return Err(ServiceError::UnexpectedFrame {
                            kind: other.kind_name().to_string(),
                        })
                    }
                    Err(e) => {
                        // The peek validates the header but not the
                        // checksum; corruption surfaces here like on the
                        // ordinary read path.
                        if matches!(e, ServiceError::CorruptFrame { .. }) {
                            MetricCounters::bump(&counters.frames_corrupt);
                        }
                        return Err(e);
                    }
                }
            }
            if batch.len() == 1 {
                let values = batch.pop().expect("the batch holds the first publish");
                replies.push(handle_request(state, conn, Frame::Publish { at, values })?);
            } else {
                handle_publish_batch(state, at, batch, &mut replies);
            }
        } else {
            replies.push(handle_request(state, conn, request)?);
        }
        for response in &replies {
            inflight += 1;
            encode_frame(response, &mut out);
            send(state, &mut writer, &out)?;
        }
        // Flush-on-idle: only pay the syscall when no further request is
        // already buffered (a pipelining client gets its whole burst of
        // responses in one write).
        if reader.buffer().is_empty() {
            flush(state, &mut writer)?;
            inflight = 0;
        }
    }
}

/// Executes a drained pipeline of same-broker publishes as **one** batched
/// overlay walk ([`BrokerNetwork::publish_batch`]), pushing exactly one
/// response frame per drained request, in order.
///
/// Failure semantics match the client's `BatchError::acked` resume
/// contract: events are parsed in request order and only the valid prefix
/// executes (as one batch, bumping `events_published` and the delivery
/// counters exactly once per executed event); the first malformed publish
/// answers its own error, and everything behind it answers an error
/// *without executing* — so the daemon's counters always equal the number
/// of `Deliveries` frames the client acks, never the number of requests it
/// pipelined.
fn handle_publish_batch(
    state: &DaemonState,
    at: BrokerId,
    batch: Vec<Vec<f64>>,
    replies: &mut Vec<Frame>,
) {
    let total = batch.len();
    let mut events = Vec::with_capacity(total);
    let mut parse_error = None;
    for values in batch {
        match Event::new(state.network.schema(), values) {
            Ok(event) => events.push(event),
            Err(e) => {
                parse_error = Some(e.to_string());
                break;
            }
        }
    }
    match state.network.publish_batch(at, &events) {
        Ok(deliveries) => {
            for pairs in deliveries {
                replies.push(Frame::Deliveries { pairs });
            }
        }
        Err(e) => {
            // The batch shares one origin broker, so a network-level refusal
            // (unknown broker) applies to every event — and the batch was
            // validated before any counter moved, so nothing executed.
            let message = e.to_string();
            for _ in 0..events.len() {
                replies.push(Frame::Err {
                    message: message.clone(),
                });
            }
        }
    }
    if let Some(message) = parse_error {
        replies.push(Frame::Err { message });
        while replies.len() < total {
            replies.push(Frame::Err {
                message: "not executed: aborted after an earlier malformed publish in the \
                          pipelined batch"
                    .into(),
            });
        }
    }
}

/// Writes through, classifying a timed-out write as a slow-consumer
/// eviction before surfacing the error.
fn send<W: Write>(state: &DaemonState, writer: &mut W, bytes: &[u8]) -> Result<(), ServiceError> {
    writer
        .write_all(bytes)
        .map_err(|e| classify_write_error(state, e))
}

/// Flush counterpart of [`send`].
fn flush<W: Write>(state: &DaemonState, writer: &mut W) -> Result<(), ServiceError> {
    writer.flush().map_err(|e| classify_write_error(state, e))
}

/// A response write that hit the socket write deadline means the consumer
/// is not draining: count the eviction (the session cleanup then retracts
/// its registrations).
fn classify_write_error(state: &DaemonState, e: std::io::Error) -> ServiceError {
    if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
        MetricCounters::bump(&state.network.counters().connections_evicted);
    }
    ServiceError::from(e)
}

/// Retracts every registration still owned by connection `conn` — exactly
/// like `unsubscribe`, so an evicted or vanished client leaves no routing
/// entries behind. Sessions taken over by a reconnected client (different
/// `conn`) are left alone.
///
/// `daemon_teardown` is the session's *own* end cause, not the global
/// shutdown flag: keying off the flag would let a genuine client
/// disconnect that races a graceful shutdown skip its journal entry and
/// leave an ownerless registration in the shutdown snapshot.
fn cleanup_sessions(state: &DaemonState, conn: u64, daemon_teardown: bool) {
    let mut sessions = state.sessions.lock();
    let owned: Vec<(SubId, BrokerId)> = sessions
        .iter()
        .filter(|(_, entry)| entry.conn == conn)
        .map(|(id, entry)| (*id, entry.at))
        .collect();
    for (id, at) in owned {
        sessions.remove(&id);
        // Racing an in-process unsubscribe is benign: the entry is gone
        // either way.
        let _ = state.network.unsubscribe(at, id);
        // A vanished *client* is journaled (best-effort) like an
        // unsubscribe. A daemon-initiated teardown is not: those sessions
        // end because the daemon is stopping, and their registrations
        // must survive into the shutdown snapshot so a restarted daemon
        // serves them again (clients take them over by resubscribing).
        if !daemon_teardown {
            let _ = journal_append(state, JournalRecord::Unsubscribe { at: at as u64, id });
        }
    }
}

/// Rebuilds a subscription from its wire form, reporting schema problems
/// as a reply message rather than a connection error.
fn build_subscription(
    schema: &Schema,
    id: SubId,
    bounds: &[(f64, f64)],
) -> Result<Subscription, String> {
    if bounds.len() != schema.arity() {
        return Err(format!(
            "subscription has {} bounds but the schema has {} attributes",
            bounds.len(),
            schema.arity()
        ));
    }
    let mut builder = SubscriptionBuilder::new(schema);
    for (attribute, (lo, hi)) in schema.attributes().iter().zip(bounds) {
        builder = builder.range(attribute.name(), *lo, *hi);
    }
    builder.build(id).map_err(|e| e.to_string())
}

/// Executes one request against the network. Broker-level rejections come
/// back as [`Frame::Err`] (the connection continues); protocol violations
/// are returned as hard errors (the connection closes).
fn handle_request(state: &DaemonState, conn: u64, request: Frame) -> Result<Frame, ServiceError> {
    let counters = state.network.counters();
    match request {
        Frame::Subscribe {
            at,
            client,
            id,
            bounds,
        } => {
            let subscription = match build_subscription(state.network.schema(), id, &bounds) {
                Ok(s) => s,
                Err(message) => return Ok(Frame::Err { message }),
            };
            let mut sessions = state.sessions.lock();
            match state.network.subscribe(at, client, &subscription) {
                Ok(()) => {
                    let record = JournalRecord::Subscribe {
                        at: at as u64,
                        client,
                        id,
                        bounds,
                    };
                    if let Err(e) = journal_append(state, record) {
                        // Durable-ack discipline: an unjournaled mutation
                        // is not acknowledged — roll it back and report.
                        let _ = state.network.unsubscribe(at, id);
                        return Ok(Frame::Err {
                            message: format!("journal write failed: {e}"),
                        });
                    }
                    sessions.insert(id, SessionEntry { conn, epoch: 0, at });
                    Ok(Frame::Ok)
                }
                Err(e) => Ok(Frame::Err {
                    message: e.to_string(),
                }),
            }
        }
        Frame::Resubscribe {
            at,
            client,
            id,
            bounds,
            epoch,
        } => {
            let subscription = match build_subscription(state.network.schema(), id, &bounds) {
                Ok(s) => s,
                Err(message) => return Ok(Frame::Err { message }),
            };
            let mut sessions = state.sessions.lock();
            let previous = sessions.get(&id).copied();
            if let Some(entry) = previous {
                if epoch < entry.epoch {
                    // A stalled replay from a pre-reconnect connection: the
                    // newer session owns this id; absorb without acting.
                    MetricCounters::bump(&counters.client_retries);
                    return Ok(Frame::Ok);
                }
                // Current epoch (a retry) or a newer one (a takeover):
                // reinstall from scratch so the home broker can move.
                match state.network.unsubscribe(entry.at, id) {
                    Ok(()) | Err(BrokerError::UnknownSubscription { .. }) => {}
                    Err(e) => {
                        sessions.remove(&id);
                        return Ok(Frame::Err {
                            message: e.to_string(),
                        });
                    }
                }
                if entry.conn != conn {
                    MetricCounters::bump(&counters.client_reconnects);
                } else {
                    MetricCounters::bump(&counters.client_retries);
                }
            }
            match state.network.subscribe(at, client, &subscription) {
                Ok(()) => {
                    let record = JournalRecord::Subscribe {
                        at: at as u64,
                        client,
                        id,
                        bounds,
                    };
                    if let Err(e) = journal_append(state, record) {
                        let _ = state.network.unsubscribe(at, id);
                        sessions.remove(&id);
                        return Ok(Frame::Err {
                            message: format!("journal write failed: {e}"),
                        });
                    }
                    sessions.insert(id, SessionEntry { conn, epoch, at });
                    Ok(Frame::Ok)
                }
                Err(e) => {
                    sessions.remove(&id);
                    // The reinstall failed after the old registration was
                    // retracted: bring the durable state along (best
                    // effort — the reply is already an error).
                    let _ = journal_append(state, JournalRecord::Unsubscribe { at: at as u64, id });
                    Ok(Frame::Err {
                        message: e.to_string(),
                    })
                }
            }
        }
        Frame::Retract { at, id, epoch } => {
            let mut sessions = state.sessions.lock();
            match sessions.get(&id).copied() {
                Some(entry) if epoch < entry.epoch => {
                    // Stale retraction of an id a newer session replayed.
                    MetricCounters::bump(&counters.client_retries);
                    Ok(Frame::Ok)
                }
                Some(entry) => {
                    sessions.remove(&id);
                    match state.network.unsubscribe(entry.at, id) {
                        Ok(()) => Ok(journalled_retract_ok(state, entry.at, id)),
                        Err(BrokerError::UnknownSubscription { .. }) => {
                            MetricCounters::bump(&counters.client_retries);
                            Ok(journalled_retract_ok(state, entry.at, id))
                        }
                        Err(e) => Ok(Frame::Err {
                            message: e.to_string(),
                        }),
                    }
                }
                None => match state.network.unsubscribe(at, id) {
                    Ok(()) => Ok(journalled_retract_ok(state, at, id)),
                    // Already gone — a retried retraction is a success.
                    Err(BrokerError::UnknownSubscription { .. }) => {
                        MetricCounters::bump(&counters.client_retries);
                        Ok(journalled_retract_ok(state, at, id))
                    }
                    Err(e) => Ok(Frame::Err {
                        message: e.to_string(),
                    }),
                },
            }
        }
        Frame::Unsubscribe { at, id } => {
            let mut sessions = state.sessions.lock();
            match state.network.unsubscribe(at, id) {
                Ok(()) => {
                    sessions.remove(&id);
                    Ok(journalled_retract_ok(state, at, id))
                }
                Err(e) => Ok(Frame::Err {
                    message: e.to_string(),
                }),
            }
        }
        Frame::Publish { at, values } => {
            let outcome = Event::new(state.network.schema(), values)
                .map_err(crate::BrokerError::from)
                .and_then(|event| state.network.publish(at, &event))
                .map(|pairs| Frame::Deliveries { pairs });
            Ok(reply(outcome))
        }
        other => Err(ServiceError::UnexpectedFrame {
            kind: other.kind_name().to_string(),
        }),
    }
}

/// Folds a broker outcome into its response frame.
fn reply(outcome: Result<Frame, crate::BrokerError>) -> Frame {
    match outcome {
        Ok(frame) => frame,
        Err(e) => Frame::Err {
            message: e.to_string(),
        },
    }
}

/// A [`Read`] adapter that turns read timeouts into polite polling: it
/// retries on `WouldBlock`/`TimedOut` until bytes arrive, the daemon shuts
/// down, or the idle deadline passes (both reported as EOF, so
/// frame-boundary reads end cleanly); `Interrupted` reads are retried like
/// the kernel convention requires. Because the retry lives *inside*
/// `read`, `read_exact` above it never sees a timeout mid-frame and
/// partial reads are never lost.
#[derive(Debug)]
struct PatientStream<'a, S> {
    inner: S,
    shutdown: &'a AtomicBool,
    idle_timeout: Option<Duration>,
    idle_since: Instant,
    reaped: bool,
    shutdown_eof: bool,
}

impl<'a, S: Read> PatientStream<'a, S> {
    fn new(
        inner: S,
        shutdown: &'a AtomicBool,
        idle_timeout: Option<Duration>,
    ) -> PatientStream<'a, S> {
        PatientStream {
            inner,
            shutdown,
            idle_timeout,
            idle_since: Instant::now(),
            reaped: false,
            shutdown_eof: false,
        }
    }

    /// True when the last EOF was the idle reaper, not the peer.
    fn reaped(&self) -> bool {
        self.reaped
    }

    /// True when the last EOF was synthesized by the daemon's shutdown
    /// flag — a daemon-initiated teardown, not a vanished peer.
    fn ended_by_shutdown(&self) -> bool {
        self.shutdown_eof
    }
}

impl<S: Read> Read for PatientStream<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.shutdown_eof = true;
                return Ok(0);
            }
            match self.inner.read(buf) {
                Ok(0) => return Ok(0),
                Ok(n) => {
                    self.idle_since = Instant::now();
                    return Ok(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if let Some(limit) = self.idle_timeout {
                        if self.idle_since.elapsed() >= limit {
                            self.reaped = true;
                            return Ok(0);
                        }
                    }
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                result => return result,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::BrokerClient;
    use crate::network::BrokerConfig;
    use crate::topology::Topology;
    use acd_covering::CoveringPolicy;
    use acd_subscription::Schema;

    fn test_schema() -> Schema {
        Schema::builder()
            .attribute("x", 0.0, 100.0)
            .bits_per_attribute(8)
            .build()
            .unwrap()
    }

    fn test_network(policy: CoveringPolicy) -> Arc<BrokerNetwork> {
        Arc::new(
            BrokerConfig::new(Topology::line(3).unwrap(), &test_schema())
                .policy(policy)
                .build()
                .unwrap(),
        )
    }

    fn daemon(policy: CoveringPolicy) -> BrokerDaemon {
        BrokerDaemon::start(test_network(policy), "127.0.0.1:0", 2).unwrap()
    }

    fn state_with(options: DaemonOptions) -> DaemonState {
        DaemonState::new(test_network(CoveringPolicy::ExactSfc), options).unwrap()
    }

    /// Encodes `frames` as one pipelined request stream.
    fn requests(frames: &[Frame]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut one = Vec::new();
        for frame in frames {
            encode_frame(frame, &mut one);
            buf.extend_from_slice(&one);
        }
        buf
    }

    /// Decodes every response frame the session wrote (Hello first).
    fn responses(bytes: &[u8]) -> Vec<Frame> {
        let mut frames = Vec::new();
        let mut scratch = Vec::new();
        let mut cursor = bytes;
        while !cursor.is_empty() {
            frames.push(read_frame(&mut cursor, &mut scratch).expect("well-formed response"));
        }
        frames
    }

    #[test]
    fn daemon_serves_subscribe_publish_unsubscribe() {
        let daemon = daemon(CoveringPolicy::ExactSfc);
        let mut client = BrokerClient::connect(daemon.local_addr()).unwrap();
        let schema = client.schema().clone();
        let sub = SubscriptionBuilder::new(&schema)
            .range("x", 10.0, 40.0)
            .build(1)
            .unwrap();
        client.subscribe(0, 7, &sub).unwrap();
        let hit = Event::new(&schema, vec![25.0]).unwrap();
        assert_eq!(client.publish(2, &hit).unwrap(), vec![(0, 7)]);
        let miss = Event::new(&schema, vec![80.0]).unwrap();
        assert_eq!(client.publish(2, &miss).unwrap(), vec![]);
        client.unsubscribe(0, 1).unwrap();
        assert_eq!(client.publish(2, &hit).unwrap(), vec![]);
        assert_eq!(daemon.network().metrics().events_published, 3);
    }

    #[test]
    fn data_dir_restores_subscriptions_after_graceful_restart() {
        let dir = std::env::temp_dir().join(format!("acd-daemon-data-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let options = || DaemonOptions {
            workers: 2,
            data_dir: Some(dir.clone()),
            ..DaemonOptions::default()
        };
        let mut daemon = BrokerDaemon::start_with(
            test_network(CoveringPolicy::ExactSfc),
            "127.0.0.1:0",
            options(),
        )
        .unwrap();
        let mut client = BrokerClient::connect(daemon.local_addr()).unwrap();
        let schema = client.schema().clone();
        let keep = SubscriptionBuilder::new(&schema)
            .range("x", 10.0, 40.0)
            .build(1)
            .unwrap();
        let gone = SubscriptionBuilder::new(&schema)
            .range("x", 0.0, 90.0)
            .build(2)
            .unwrap();
        client.subscribe(0, 7, &keep).unwrap();
        client.subscribe(1, 8, &gone).unwrap();
        client.unsubscribe(1, 2).unwrap();
        // Graceful shutdown with the client still connected: the teardown
        // retraction must NOT count as an unsubscribe — the registration
        // belongs in the shutdown snapshot.
        daemon.shutdown();
        drop(daemon);
        drop(client);

        // A fresh daemon over the same directory serves the survivors.
        let daemon = BrokerDaemon::start_with(
            test_network(CoveringPolicy::ExactSfc),
            "127.0.0.1:0",
            options(),
        )
        .unwrap();
        let mut client = BrokerClient::connect(daemon.local_addr()).unwrap();
        let hit = Event::new(&schema, vec![25.0]).unwrap();
        assert_eq!(
            client.publish(2, &hit).unwrap(),
            vec![(0, 7)],
            "the subscription that was live at shutdown must be restored"
        );
        let miss = Event::new(&schema, vec![80.0]).unwrap();
        assert_eq!(
            client.publish(2, &miss).unwrap(),
            vec![],
            "the unsubscribed id must stay retracted across the restart"
        );
        // The restored registration is owned by no live connection, yet an
        // ordinary unsubscribe retracts it — durably.
        client.unsubscribe(0, 1).unwrap();
        assert_eq!(client.publish(2, &hit).unwrap(), vec![]);
        drop(client);
        drop(daemon);
        let daemon = BrokerDaemon::start_with(
            test_network(CoveringPolicy::ExactSfc),
            "127.0.0.1:0",
            options(),
        )
        .unwrap();
        let mut client = BrokerClient::connect(daemon.local_addr()).unwrap();
        assert_eq!(
            client.publish(2, &hit).unwrap(),
            vec![],
            "the retraction must be durable too"
        );
        drop(client);
        drop(daemon);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn broker_rejections_travel_as_err_frames_and_keep_the_connection() {
        let daemon = daemon(CoveringPolicy::None);
        let mut client = BrokerClient::connect(daemon.local_addr()).unwrap();
        let schema = client.schema().clone();
        let sub = SubscriptionBuilder::new(&schema)
            .range("x", 0.0, 50.0)
            .build(1)
            .unwrap();
        client.subscribe(0, 7, &sub).unwrap();
        // Duplicate id: rejected with the broker's message, connection fine.
        let rejected = client.subscribe(1, 8, &sub);
        assert!(matches!(
            rejected,
            Err(ServiceError::Rejected { message }) if message.contains("already registered")
        ));
        // Unknown broker: same shape.
        assert!(client
            .publish(99, &Event::new(&schema, vec![1.0]).unwrap())
            .is_err());
        // The connection still works after both rejections.
        assert_eq!(
            client
                .publish(2, &Event::new(&schema, vec![10.0]).unwrap())
                .unwrap(),
            vec![(0, 7)]
        );
    }

    #[test]
    fn pipelined_publishes_come_back_in_order() {
        let daemon = daemon(CoveringPolicy::ExactSfc);
        let mut client = BrokerClient::connect(daemon.local_addr()).unwrap();
        let schema = client.schema().clone();
        let sub = SubscriptionBuilder::new(&schema)
            .range("x", 0.0, 50.0)
            .build(1)
            .unwrap();
        client.subscribe(0, 7, &sub).unwrap();
        let events: Vec<Event> = (0..20)
            .map(|i| Event::new(&schema, vec![i as f64 * 5.0]).unwrap())
            .collect();
        let batches = client.publish_batch(2, &events).unwrap();
        assert_eq!(batches.len(), events.len());
        for (event, deliveries) in events.iter().zip(&batches) {
            let expected: Vec<(usize, u64)> = if event.value(0) <= 50.0 {
                vec![(0, 7)]
            } else {
                vec![]
            };
            assert_eq!(deliveries, &expected);
        }
    }

    #[test]
    fn shutdown_disconnects_clients_and_joins_workers() {
        let mut daemon = daemon(CoveringPolicy::None);
        let addr = daemon.local_addr();
        let mut client = BrokerClient::connect(addr).unwrap();
        daemon.shutdown();
        // The daemon is gone: either the next request errors out, or new
        // connections are refused.
        let schema = client.schema().clone();
        let result = client.publish(0, &Event::new(&schema, vec![1.0]).unwrap());
        assert!(result.is_err());
        assert!(BrokerClient::connect(addr).is_err());
    }

    #[test]
    fn connection_cap_answers_rejected_instead_of_stalling() {
        let net = test_network(CoveringPolicy::ExactSfc);
        let daemon = BrokerDaemon::start_with(
            Arc::clone(&net),
            "127.0.0.1:0",
            DaemonOptions {
                workers: 1,
                max_connections: 1,
                ..DaemonOptions::default()
            },
        )
        .unwrap();
        let _first = BrokerClient::connect(daemon.local_addr()).unwrap();
        let started = Instant::now();
        let second = BrokerClient::connect(daemon.local_addr());
        assert!(
            matches!(
                second,
                Err(ServiceError::Overloaded { ref reason }) if reason.contains("connection cap")
            ),
            "over-cap connect must be a typed rejection, got {second:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "rejection must arrive within the deadline, not hang"
        );
        assert_eq!(net.metrics().connections_rejected, 1);
    }

    #[test]
    fn inflight_cap_rejects_excess_pipelined_requests_without_executing() {
        let state = state_with(DaemonOptions {
            max_inflight: 2,
            ..DaemonOptions::default()
        });
        // One pipelined burst: 4 publishes, all buffered before the first
        // response flush, so the cap sees them as one in-flight window.
        let burst = requests(&[
            Frame::Publish {
                at: 0,
                values: vec![10.0],
            },
            Frame::Publish {
                at: 0,
                values: vec![20.0],
            },
            Frame::Publish {
                at: 0,
                values: vec![30.0],
            },
            Frame::Publish {
                at: 0,
                values: vec![40.0],
            },
        ]);
        let mut sink = Vec::new();
        serve_session(&state, burst.as_slice(), &mut sink, 1).unwrap();
        let frames = responses(&sink);
        assert!(matches!(frames[0], Frame::Hello { .. }));
        assert!(matches!(frames[1], Frame::Deliveries { .. }));
        assert!(matches!(frames[2], Frame::Deliveries { .. }));
        assert!(matches!(frames[3], Frame::Rejected { .. }));
        assert!(matches!(frames[4], Frame::Rejected { .. }));
        // Only the two admitted publishes executed.
        assert_eq!(state.network.metrics().events_published, 2);
        assert_eq!(state.network.metrics().connections_rejected, 2);
    }

    #[test]
    fn mid_batch_failure_leaves_counters_at_the_acked_prefix() {
        let state = state_with(DaemonOptions::default());
        // Five pipelined same-broker publishes, the third malformed (wrong
        // arity): the valid prefix executes as one batch, the bad one
        // answers its own error, and the tail is *not executed* — so the
        // counters equal the number of Deliveries the client acks before
        // its `BatchError`, exactly the `acked` resume contract.
        let burst = requests(&[
            Frame::Publish {
                at: 0,
                values: vec![10.0],
            },
            Frame::Publish {
                at: 0,
                values: vec![20.0],
            },
            Frame::Publish {
                at: 0,
                values: vec![1.0, 2.0],
            },
            Frame::Publish {
                at: 0,
                values: vec![30.0],
            },
            Frame::Publish {
                at: 0,
                values: vec![40.0],
            },
        ]);
        let mut sink = Vec::new();
        serve_session(&state, burst.as_slice(), &mut sink, 1).unwrap();
        let frames = responses(&sink);
        assert!(matches!(frames[0], Frame::Hello { .. }));
        assert!(matches!(frames[1], Frame::Deliveries { .. }));
        assert!(matches!(frames[2], Frame::Deliveries { .. }));
        assert!(matches!(frames[3], Frame::Err { .. }));
        assert!(
            matches!(&frames[4], Frame::Err { message } if message.contains("not executed")),
            "the tail behind a failed publish must be refused, got {:?}",
            frames[4]
        );
        assert!(matches!(frames[5], Frame::Err { .. }));
        assert_eq!(frames.len(), 6, "one response per request");
        assert_eq!(
            state.network.metrics().events_published,
            2,
            "only the acked prefix may execute"
        );

        // A batch aimed at an unknown broker fails whole: every request
        // answered, nothing executed, no counter moved.
        let burst = requests(&[
            Frame::Publish {
                at: 99,
                values: vec![10.0],
            },
            Frame::Publish {
                at: 99,
                values: vec![20.0],
            },
        ]);
        let mut sink = Vec::new();
        serve_session(&state, burst.as_slice(), &mut sink, 2).unwrap();
        let frames = responses(&sink);
        assert!(matches!(frames[1], Frame::Err { .. }));
        assert!(matches!(frames[2], Frame::Err { .. }));
        assert_eq!(frames.len(), 3);
        assert_eq!(state.network.metrics().events_published, 2);
    }

    #[test]
    fn batched_publishes_deliver_like_serial_ones() {
        let state = state_with(DaemonOptions::default());
        handle_request(
            &state,
            1,
            Frame::Subscribe {
                at: 0,
                client: 7,
                id: 1,
                bounds: vec![(0.0, 50.0)],
            },
        )
        .unwrap();
        // A mixed-broker pipeline splits into per-broker batches and every
        // response still lands in request order.
        let burst = requests(&[
            Frame::Publish {
                at: 2,
                values: vec![10.0],
            },
            Frame::Publish {
                at: 2,
                values: vec![80.0],
            },
            Frame::Publish {
                at: 1,
                values: vec![20.0],
            },
        ]);
        let mut sink = Vec::new();
        serve_session(&state, burst.as_slice(), &mut sink, 1).unwrap();
        let frames = responses(&sink);
        assert_eq!(
            frames[1],
            Frame::Deliveries {
                pairs: vec![(0, 7)]
            }
        );
        assert_eq!(frames[2], Frame::Deliveries { pairs: vec![] });
        assert_eq!(
            frames[3],
            Frame::Deliveries {
                pairs: vec![(0, 7)]
            }
        );
        assert_eq!(state.network.metrics().events_published, 3);
        assert_eq!(state.network.metrics().deliveries, 2);
    }

    #[test]
    fn disconnect_retracts_sessions_like_unsubscribe() {
        let state = state_with(DaemonOptions::default());
        let stream = requests(&[Frame::Subscribe {
            at: 0,
            client: 7,
            id: 1,
            bounds: vec![(0.0, 50.0)],
        }]);
        let mut sink = Vec::new();
        // The transport ends (EOF) right after the subscribe — a client
        // that vanished without unsubscribing.
        serve_session(&state, stream.as_slice(), &mut sink, 1).unwrap();
        let frames = responses(&sink);
        assert!(matches!(frames[1], Frame::Ok));
        // Drained-state invariant: the registration was retracted exactly
        // like an unsubscribe, so nothing matches and nothing lingers.
        let metrics = state.network.metrics();
        assert_eq!(metrics.unsubscriptions, 1);
        assert_eq!(metrics.routing_table_entries, 0);
        let event = Event::new(state.network.schema(), vec![25.0]).unwrap();
        assert_eq!(state.network.publish(2, &event).unwrap(), vec![]);
        assert!(state.sessions.lock().is_empty());
    }

    #[test]
    fn resubscribe_epoch_takeover_defeats_stale_replays() {
        let state = state_with(DaemonOptions::default());
        let bounds = vec![(0.0, 50.0)];
        // Connection 1 registers id 9 at broker 0 (epoch 0).
        let reply = handle_request(
            &state,
            1,
            Frame::Resubscribe {
                at: 0,
                client: 7,
                id: 9,
                bounds: bounds.clone(),
                epoch: 0,
            },
        )
        .unwrap();
        assert!(matches!(reply, Frame::Ok));
        // Connection 2 (the reconnected client, epoch 1) replays it at
        // broker 2: a takeover that moves the home broker.
        let reply = handle_request(
            &state,
            2,
            Frame::Resubscribe {
                at: 2,
                client: 7,
                id: 9,
                bounds: bounds.clone(),
                epoch: 1,
            },
        )
        .unwrap();
        assert!(matches!(reply, Frame::Ok));
        // A stalled replay from the dead connection arrives late: absorbed
        // without clobbering the takeover.
        let reply = handle_request(
            &state,
            1,
            Frame::Resubscribe {
                at: 0,
                client: 7,
                id: 9,
                bounds: bounds.clone(),
                epoch: 0,
            },
        )
        .unwrap();
        assert!(matches!(reply, Frame::Ok));
        let event = Event::new(state.network.schema(), vec![25.0]).unwrap();
        assert_eq!(
            state.network.publish(1, &event).unwrap(),
            vec![(2, 7)],
            "registration must live at the takeover's broker"
        );
        let metrics = state.network.metrics();
        assert_eq!(metrics.client_reconnects, 1);
        assert_eq!(metrics.client_retries, 1);
        // The dead connection's cleanup must not touch the taken-over id...
        cleanup_sessions(&state, 1, false);
        assert_eq!(state.network.publish(1, &event).unwrap(), vec![(2, 7)]);
        // ...while the owner's cleanup retracts it.
        cleanup_sessions(&state, 2, false);
        assert_eq!(state.network.publish(1, &event).unwrap(), vec![]);
    }

    #[test]
    fn stale_retract_is_absorbed_and_fresh_retract_is_idempotent() {
        let state = state_with(DaemonOptions::default());
        let bounds = vec![(0.0, 50.0)];
        for (conn, epoch) in [(1u64, 0u64), (2, 1)] {
            let reply = handle_request(
                &state,
                conn,
                Frame::Resubscribe {
                    at: 0,
                    client: 7,
                    id: 9,
                    bounds: bounds.clone(),
                    epoch,
                },
            )
            .unwrap();
            assert!(matches!(reply, Frame::Ok));
        }
        // Stale retract (epoch 0) from the dead connection: no-op.
        let reply = handle_request(
            &state,
            1,
            Frame::Retract {
                at: 0,
                id: 9,
                epoch: 0,
            },
        )
        .unwrap();
        assert!(matches!(reply, Frame::Ok));
        let event = Event::new(state.network.schema(), vec![25.0]).unwrap();
        assert_eq!(state.network.publish(1, &event).unwrap(), vec![(0, 7)]);
        // Current retract removes it; a retried retract still answers Ok.
        for _ in 0..2 {
            let reply = handle_request(
                &state,
                2,
                Frame::Retract {
                    at: 0,
                    id: 9,
                    epoch: 1,
                },
            )
            .unwrap();
            assert!(matches!(reply, Frame::Ok));
        }
        assert_eq!(state.network.publish(1, &event).unwrap(), vec![]);
    }

    /// A transport that yields `Interrupted` a few times before the data,
    /// then EOF — the syscall-restart convention.
    struct InterruptedSource {
        interruptions: usize,
        data: Vec<u8>,
        served: bool,
    }

    impl Read for InterruptedSource {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.interruptions > 0 {
                self.interruptions -= 1;
                return Err(std::io::Error::new(ErrorKind::Interrupted, "signal"));
            }
            if self.served || buf.is_empty() {
                return Ok(0);
            }
            self.served = true;
            let n = self.data.len().min(buf.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            Ok(n)
        }
    }

    /// A transport that always times out, like a socket with a read
    /// timeout and a silent peer.
    struct SilentSource;

    impl Read for SilentSource {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            std::thread::sleep(Duration::from_millis(1));
            Err(std::io::Error::new(ErrorKind::WouldBlock, "timeout"))
        }
    }

    #[test]
    fn patient_stream_retries_interrupted_reads() {
        let shutdown = AtomicBool::new(false);
        let source = InterruptedSource {
            interruptions: 3,
            data: b"abc".to_vec(),
            served: false,
        };
        let mut patient = PatientStream::new(source, &shutdown, None);
        let mut buf = [0u8; 8];
        assert_eq!(patient.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"abc");
        // And the eventual EOF still comes through.
        assert_eq!(patient.read(&mut buf).unwrap(), 0);
        assert!(!patient.reaped());
    }

    #[test]
    fn patient_stream_zero_length_reads_return_without_blocking() {
        let shutdown = AtomicBool::new(false);
        let source = InterruptedSource {
            interruptions: 0,
            data: b"pending".to_vec(),
            served: false,
        };
        let mut patient = PatientStream::new(source, &shutdown, None);
        // An empty destination is satisfied immediately (not EOF, not a
        // hang) and consumes nothing...
        assert_eq!(patient.read(&mut []).unwrap(), 0);
        // ...the pending data is still there for the next real read.
        let mut buf = [0u8; 16];
        assert_eq!(patient.read(&mut buf).unwrap(), 7);
        assert_eq!(&buf[..7], b"pending");
    }

    #[test]
    fn patient_stream_read_timeout_racing_shutdown_ends_as_eof() {
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        // The reader is mid-poll (every poll times out) when another
        // thread raises the shutdown flag: the read must end as a clean
        // EOF, not hang and not error.
        let reader = std::thread::spawn(move || {
            let mut patient = PatientStream::new(SilentSource, &flag, None);
            let mut buf = [0u8; 8];
            patient.read(&mut buf)
        });
        std::thread::sleep(Duration::from_millis(20));
        shutdown.store(true, Ordering::SeqCst);
        let result = reader.join().expect("reader must not panic");
        assert_eq!(result.unwrap(), 0, "shutdown mid-poll reads as EOF");
    }

    #[test]
    fn patient_stream_reaps_idle_connections() {
        let shutdown = AtomicBool::new(false);
        let mut patient =
            PatientStream::new(SilentSource, &shutdown, Some(Duration::from_millis(10)));
        let mut buf = [0u8; 8];
        assert_eq!(patient.read(&mut buf).unwrap(), 0, "idle deadline → EOF");
        assert!(patient.reaped(), "EOF must be attributed to the reaper");
    }

    #[test]
    fn idle_reap_is_counted_and_drains_the_session() {
        let state = state_with(DaemonOptions {
            idle_timeout: Some(Duration::from_millis(10)),
            ..DaemonOptions::default()
        });
        // A subscribe, then silence: the reaper must end the session and
        // the cleanup must retract the registration.
        struct ThenSilent {
            data: Vec<u8>,
            offset: usize,
        }
        impl Read for ThenSilent {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.offset < self.data.len() && !buf.is_empty() {
                    let n = (self.data.len() - self.offset).min(buf.len());
                    buf[..n].copy_from_slice(&self.data[self.offset..self.offset + n]);
                    self.offset += n;
                    return Ok(n);
                }
                std::thread::sleep(Duration::from_millis(1));
                Err(std::io::Error::new(ErrorKind::WouldBlock, "timeout"))
            }
        }
        let transport = ThenSilent {
            data: requests(&[Frame::Subscribe {
                at: 0,
                client: 7,
                id: 1,
                bounds: vec![(0.0, 50.0)],
            }]),
            offset: 0,
        };
        let mut sink = Vec::new();
        serve_session(&state, transport, &mut sink, 1).unwrap();
        let metrics = state.network.metrics();
        assert_eq!(metrics.connections_evicted, 1, "reap counts as eviction");
        assert_eq!(metrics.routing_table_entries, 0, "session drained");
    }

    /// Regression: the journal-or-not decision at cleanup keys off the
    /// session's own teardown cause, not the global shutdown flag. A
    /// client whose genuine EOF lands just as a graceful shutdown begins
    /// must still have its retraction journaled — otherwise the shutdown
    /// snapshot restores a registration whose owner is gone.
    #[test]
    fn client_eof_racing_shutdown_still_journals_the_retraction() {
        let dir = std::env::temp_dir().join(format!("acd-eof-race-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let state = state_with(DaemonOptions {
            data_dir: Some(dir.clone()),
            ..DaemonOptions::default()
        });
        // A subscribe, then a *real* peer hang-up whose EOF is observed
        // while a graceful shutdown flips the flag concurrently.
        struct EofFlipsShutdown<'a> {
            data: Vec<u8>,
            offset: usize,
            shutdown: &'a AtomicBool,
        }
        impl Read for EofFlipsShutdown<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.offset < self.data.len() && !buf.is_empty() {
                    let n = (self.data.len() - self.offset).min(buf.len());
                    buf[..n].copy_from_slice(&self.data[self.offset..self.offset + n]);
                    self.offset += n;
                    return Ok(n);
                }
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(0)
            }
        }
        let transport = EofFlipsShutdown {
            data: requests(&[Frame::Subscribe {
                at: 0,
                client: 7,
                id: 1,
                bounds: vec![(0.0, 50.0)],
            }]),
            offset: 0,
            shutdown: &state.shutdown,
        };
        let mut sink = Vec::new();
        serve_session(&state, transport, &mut sink, 1).unwrap();
        assert_eq!(state.network.metrics().routing_table_entries, 0);
        {
            let journal = state.journal.lock();
            let live = &journal.as_ref().unwrap().live;
            assert!(
                live.is_empty(),
                "the vanished client's registration must not survive into \
                 the shutdown snapshot: {live:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_request_frames_are_counted_and_close_the_connection() {
        let state = state_with(DaemonOptions::default());
        let mut garbage = requests(&[Frame::Publish {
            at: 0,
            values: vec![10.0],
        }]);
        let last = garbage.len() - 1;
        garbage[last] ^= 0xff; // break the checksum
        let mut sink = Vec::new();
        let result = serve_session(&state, garbage.as_slice(), &mut sink, 1);
        assert!(matches!(result, Err(ServiceError::CorruptFrame { .. })));
        assert_eq!(state.network.metrics().frames_corrupt, 1);
        assert_eq!(
            state.network.metrics().events_published,
            0,
            "a corrupt request must not execute"
        );
    }
}
