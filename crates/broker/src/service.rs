//! The TCP front door: a daemon serving one [`BrokerNetwork`] to remote
//! clients over the [`crate::wire`] protocol.
//!
//! Architecture:
//!
//! * an **accept thread** polls the listener (non-blocking, so shutdown is
//!   observed without a wake-up connection) and hands each accepted socket
//!   to
//! * a **connection worker team** — the same long-lived channel-fed
//!   [`QueryPool`] the sharded index uses for queries — where each
//!   connection is served to completion by one worker;
//! * every worker drives the **shared network through `&self`**: the
//!   overlay's interior locking (see `LOCKING.md`) is what lets N
//!   connections subscribe, unsubscribe and publish concurrently.
//!
//! Per connection the worker speaks a strict request/response protocol
//! (`Hello` greeting, then one response frame per request frame, in order)
//! with **flush-on-idle batching**: responses are buffered while more
//! requests are already readable and flushed when the connection goes
//! idle, so a pipelining client pays one syscall per burst instead of one
//! per publish.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use acd_covering::QueryPool;
use acd_subscription::{Event, SubscriptionBuilder};

use crate::error::ServiceError;
use crate::network::BrokerNetwork;
use crate::wire::{encode_frame, read_frame, Frame};

/// How long a blocked connection read waits before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// How long the accept thread sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A running broker daemon: owns the listener and the connection worker
/// team, serves until dropped (or [`shutdown`](Self::shutdown)).
///
/// ```no_run
/// use std::sync::Arc;
/// use acd_broker::{BrokerConfig, BrokerDaemon, Topology};
/// use acd_subscription::Schema;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schema = Schema::builder().attribute("x", 0.0, 100.0).build()?;
/// let net = Arc::new(BrokerConfig::new(Topology::star(4)?, &schema).build()?);
/// let daemon = BrokerDaemon::start(net, "127.0.0.1:0", 4)?;
/// println!("listening on {}", daemon.local_addr());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BrokerDaemon {
    network: Arc<BrokerNetwork>,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl BrokerDaemon {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `network` with a team of `workers` connection workers. Each worker
    /// serves one connection at a time, so `workers` bounds the number of
    /// concurrently served clients; further connections queue.
    ///
    /// # Errors
    ///
    /// Returns an error if the address cannot be bound.
    pub fn start(
        network: Arc<BrokerNetwork>,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> Result<BrokerDaemon, ServiceError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let network = Arc::clone(&network);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("acd-brokerd-accept".into())
                .spawn(move || accept_loop(listener, network, shutdown, workers))
                .map_err(ServiceError::from)?
        };
        Ok(BrokerDaemon {
            network,
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the daemon is actually listening on (with the real port
    /// when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served network — callers can inspect metrics or drive it
    /// in-process alongside the remote clients.
    pub fn network(&self) -> &Arc<BrokerNetwork> {
        &self.network
    }

    /// Stops accepting, drains the worker team, and returns once every
    /// connection worker has exited. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            // Joining the accept thread drops the pool, which joins every
            // connection worker.
            let _ = handle.join();
        }
    }
}

impl Drop for BrokerDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts until shutdown, dispatching each connection to the worker team.
fn accept_loop(
    listener: TcpListener,
    network: Arc<BrokerNetwork>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
) {
    let pool = QueryPool::new(workers);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let network = Arc::clone(&network);
                let shutdown = Arc::clone(&shutdown);
                pool.execute(move || {
                    // A connection failing (corrupt frames, peer reset) only
                    // closes that connection; the daemon keeps serving.
                    let _ = serve_connection(&network, stream, &shutdown);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping the pool here joins the connection workers; their reads
    // observe the shutdown flag within one READ_POLL.
}

/// A [`Read`] adapter that turns read timeouts into polite polling: it
/// retries on `WouldBlock`/`TimedOut` until bytes arrive or the daemon
/// shuts down (reported as EOF, so frame-boundary reads end cleanly).
/// Because the retry lives *inside* `read`, `read_exact` above it never
/// sees a timeout mid-frame and partial reads are never lost.
#[derive(Debug)]
struct PatientStream<'a> {
    stream: &'a TcpStream,
    shutdown: &'a AtomicBool,
}

impl Read for PatientStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(0);
            }
            match self.stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                result => return result,
            }
        }
    }
}

/// Serves one connection to completion: `Hello` greeting, then one
/// response per request with flush-on-idle batching.
fn serve_connection(
    network: &BrokerNetwork,
    stream: TcpStream,
    shutdown: &AtomicBool,
) -> Result<(), ServiceError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(PatientStream {
        stream: &stream,
        shutdown,
    });
    let mut out = Vec::new();
    let mut scratch = Vec::new();

    let schema_json =
        serde_json::to_string(network.schema()).map_err(|e| ServiceError::Io(e.to_string()))?;
    encode_frame(&Frame::Hello { schema_json }, &mut out);
    writer.write_all(&out)?;
    writer.flush()?;

    loop {
        // Peek for data so a clean disconnect (EOF at a frame boundary,
        // including our own shutdown) ends the loop without an error.
        if reader.fill_buf()?.is_empty() {
            writer.flush()?;
            return Ok(());
        }
        let request = read_frame(&mut reader, &mut scratch)?;
        let response = handle_request(network, request)?;
        encode_frame(&response, &mut out);
        writer.write_all(&out)?;
        // Flush-on-idle: only pay the syscall when no further request is
        // already buffered (a pipelining client gets its whole burst of
        // responses in one write).
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
    }
}

/// Executes one request against the network. Broker-level rejections come
/// back as [`Frame::Err`] (the connection continues); protocol violations
/// are returned as hard errors (the connection closes).
fn handle_request(network: &BrokerNetwork, request: Frame) -> Result<Frame, ServiceError> {
    match request {
        Frame::Subscribe {
            at,
            client,
            id,
            bounds,
        } => {
            let schema = network.schema();
            if bounds.len() != schema.arity() {
                return Ok(Frame::Err {
                    message: format!(
                        "subscription has {} bounds but the schema has {} attributes",
                        bounds.len(),
                        schema.arity()
                    ),
                });
            }
            let mut builder = SubscriptionBuilder::new(schema);
            for (attribute, (lo, hi)) in schema.attributes().iter().zip(&bounds) {
                builder = builder.range(attribute.name(), *lo, *hi);
            }
            let outcome = builder
                .build(id)
                .map_err(crate::BrokerError::from)
                .and_then(|subscription| network.subscribe(at, client, &subscription));
            Ok(reply(outcome.map(|()| Frame::Ok)))
        }
        Frame::Unsubscribe { at, id } => Ok(reply(network.unsubscribe(at, id).map(|()| Frame::Ok))),
        Frame::Publish { at, values } => {
            let outcome = Event::new(network.schema(), values)
                .map_err(crate::BrokerError::from)
                .and_then(|event| network.publish(at, &event))
                .map(|pairs| Frame::Deliveries { pairs });
            Ok(reply(outcome))
        }
        other => Err(ServiceError::UnexpectedFrame {
            kind: other.kind_name().to_string(),
        }),
    }
}

/// Folds a broker outcome into its response frame.
fn reply(outcome: Result<Frame, crate::BrokerError>) -> Frame {
    match outcome {
        Ok(frame) => frame,
        Err(e) => Frame::Err {
            message: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::BrokerClient;
    use crate::network::BrokerConfig;
    use crate::topology::Topology;
    use acd_covering::CoveringPolicy;
    use acd_subscription::Schema;

    fn daemon(policy: CoveringPolicy) -> BrokerDaemon {
        let schema = Schema::builder()
            .attribute("x", 0.0, 100.0)
            .bits_per_attribute(8)
            .build()
            .unwrap();
        let net = Arc::new(
            BrokerConfig::new(Topology::line(3).unwrap(), &schema)
                .policy(policy)
                .build()
                .unwrap(),
        );
        BrokerDaemon::start(net, "127.0.0.1:0", 2).unwrap()
    }

    #[test]
    fn daemon_serves_subscribe_publish_unsubscribe() {
        let daemon = daemon(CoveringPolicy::ExactSfc);
        let mut client = BrokerClient::connect(daemon.local_addr()).unwrap();
        let schema = client.schema().clone();
        let sub = SubscriptionBuilder::new(&schema)
            .range("x", 10.0, 40.0)
            .build(1)
            .unwrap();
        client.subscribe(0, 7, &sub).unwrap();
        let hit = Event::new(&schema, vec![25.0]).unwrap();
        assert_eq!(client.publish(2, &hit).unwrap(), vec![(0, 7)]);
        let miss = Event::new(&schema, vec![80.0]).unwrap();
        assert_eq!(client.publish(2, &miss).unwrap(), vec![]);
        client.unsubscribe(0, 1).unwrap();
        assert_eq!(client.publish(2, &hit).unwrap(), vec![]);
        assert_eq!(daemon.network().metrics().events_published, 3);
    }

    #[test]
    fn broker_rejections_travel_as_err_frames_and_keep_the_connection() {
        let daemon = daemon(CoveringPolicy::None);
        let mut client = BrokerClient::connect(daemon.local_addr()).unwrap();
        let schema = client.schema().clone();
        let sub = SubscriptionBuilder::new(&schema)
            .range("x", 0.0, 50.0)
            .build(1)
            .unwrap();
        client.subscribe(0, 7, &sub).unwrap();
        // Duplicate id: rejected with the broker's message, connection fine.
        let rejected = client.subscribe(1, 8, &sub);
        assert!(matches!(
            rejected,
            Err(ServiceError::Rejected { message }) if message.contains("already registered")
        ));
        // Unknown broker: same shape.
        assert!(client
            .publish(99, &Event::new(&schema, vec![1.0]).unwrap())
            .is_err());
        // The connection still works after both rejections.
        assert_eq!(
            client
                .publish(2, &Event::new(&schema, vec![10.0]).unwrap())
                .unwrap(),
            vec![(0, 7)]
        );
    }

    #[test]
    fn pipelined_publishes_come_back_in_order() {
        let daemon = daemon(CoveringPolicy::ExactSfc);
        let mut client = BrokerClient::connect(daemon.local_addr()).unwrap();
        let schema = client.schema().clone();
        let sub = SubscriptionBuilder::new(&schema)
            .range("x", 0.0, 50.0)
            .build(1)
            .unwrap();
        client.subscribe(0, 7, &sub).unwrap();
        let events: Vec<Event> = (0..20)
            .map(|i| Event::new(&schema, vec![i as f64 * 5.0]).unwrap())
            .collect();
        let batches = client.publish_batch(2, &events).unwrap();
        assert_eq!(batches.len(), events.len());
        for (event, deliveries) in events.iter().zip(&batches) {
            let expected: Vec<(usize, u64)> = if event.value(0) <= 50.0 {
                vec![(0, 7)]
            } else {
                vec![]
            };
            assert_eq!(deliveries, &expected);
        }
    }

    #[test]
    fn shutdown_disconnects_clients_and_joins_workers() {
        let mut daemon = daemon(CoveringPolicy::None);
        let addr = daemon.local_addr();
        let mut client = BrokerClient::connect(addr).unwrap();
        daemon.shutdown();
        // The daemon is gone: either the next request errors out, or new
        // connections are refused.
        let schema = client.schema().clone();
        let result = client.publish(0, &Event::new(&schema, vec![1.0]).unwrap());
        assert!(result.is_err());
        assert!(BrokerClient::connect(addr).is_err());
    }
}
