//! The daemon's wire protocol: hand-rolled, length-prefixed, versioned
//! little-endian frames with a per-frame checksum.
//!
//! Every frame has the same envelope:
//!
//! ```text
//! +----------+---------+------+-------------+-----------+-----------+
//! | magic    | version | kind | payload_len | payload   | checksum  |
//! | u32 LE   | u8      | u8   | u32 LE      | len bytes | u32 LE    |
//! +----------+---------+------+-------------+-----------+-----------+
//! ```
//!
//! * `magic` is [`MAGIC`] (`"ACDB"`), so a connection that is not speaking
//!   this protocol is rejected on its first bytes;
//! * `version` is [`VERSION`]; a peer from the future gets a clean
//!   [`ServiceError::VersionMismatch`], not a misparse;
//! * `payload_len` is capped at [`MAX_PAYLOAD`] so a corrupt length cannot
//!   make the reader balloon its buffer;
//! * `checksum` is a CRC-32 (IEEE polynomial) over **everything before it**
//!   — header and payload — so a flipped bit anywhere in the frame is
//!   detected and surfaced as [`ServiceError::CorruptFrame`], never a panic
//!   and never a silently wrong message.
//!
//! [`check_header`] validates the fixed prefix and [`check_footer`] the
//! trailing checksum, in the style of an index-file codec: decode only
//! between a verified header and a verified footer. All multi-byte integers
//! are little-endian; floats travel as their IEEE-754 bit patterns.
//!
//! Encoding reuses a caller-owned scratch buffer ([`encode_frame`] clears
//! and fills it), so steady-state connections encode without allocating.

use std::io::Read;

use acd_subscription::{SubId, Subscription};

use crate::broker::{BrokerId, ClientId};
use crate::error::ServiceError;

/// First four bytes of every frame: `"ACDB"` read as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"ACDB");

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Upper bound on `payload_len` (16 MiB): anything larger is corruption,
/// not data.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Envelope bytes before the payload: magic + version + kind + length.
pub const HEADER_LEN: usize = 10;

/// Envelope bytes after the payload: the CRC-32.
pub const FOOTER_LEN: usize = 4;

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Daemon → client greeting: the network's schema as JSON (schemas are
    /// structural and self-describing, so JSON beats hand-rolling their
    /// encoding; everything on the hot path stays binary).
    Hello {
        /// The serialized [`acd_subscription::Schema`].
        schema_json: String,
    },
    /// Client → daemon: register a subscription.
    Subscribe {
        /// Broker the client is attached to.
        at: BrokerId,
        /// The subscribing client.
        client: ClientId,
        /// Network-unique subscription identifier.
        id: SubId,
        /// Per-attribute `[lo, hi]` ranges in schema attribute order.
        bounds: Vec<(f64, f64)>,
    },
    /// Client → daemon: retract a subscription registered on this
    /// connection.
    Unsubscribe {
        /// Broker the subscription was registered at.
        at: BrokerId,
        /// The identifier to retract.
        id: SubId,
    },
    /// Client → daemon: publish an event.
    Publish {
        /// Broker the event enters the overlay at.
        at: BrokerId,
        /// Attribute values in schema attribute order.
        values: Vec<f64>,
    },
    /// Daemon → client: the deliveries one publish caused, as sorted
    /// `(broker, client)` pairs.
    Deliveries {
        /// One pair per delivered (matching) subscription.
        pairs: Vec<(BrokerId, ClientId)>,
    },
    /// Daemon → client: the request succeeded with nothing to report.
    Ok,
    /// Daemon → client: the request failed; the broker-side error as text.
    Err {
        /// Display rendering of the daemon-side error.
        message: String,
    },
    /// Daemon → client: the daemon is shedding load and did not execute the
    /// request (or, before `Hello`, refused the connection outright). Unlike
    /// [`Frame::Err`] this is retryable by construction — nothing was
    /// applied — so resilient clients back off and try again.
    Rejected {
        /// Why the daemon shed this request/connection.
        reason: String,
    },
    /// Client → daemon: idempotently (re-)register a subscription. Where
    /// [`Frame::Subscribe`] fails on a duplicate id, `Resubscribe` takes the
    /// registration over: if `id` is live under an older session epoch it is
    /// retracted and re-registered fresh, so a client replaying its live set
    /// after a reconnect (or retrying an ack it never saw) always converges.
    Resubscribe {
        /// Broker the client is attached to.
        at: BrokerId,
        /// The subscribing client.
        client: ClientId,
        /// Network-unique subscription identifier.
        id: SubId,
        /// Per-attribute `[lo, hi]` ranges in schema attribute order.
        bounds: Vec<(f64, f64)>,
        /// The client's session epoch (bumped on every reconnect). A frame
        /// carrying an epoch older than the registration's current owner is
        /// acknowledged without acting, so a stalled pre-reconnect request
        /// can never clobber the replayed state that superseded it.
        epoch: u64,
    },
    /// Client → daemon: idempotently retract a subscription. Where
    /// [`Frame::Unsubscribe`] fails on an unknown id, `Retract` treats
    /// "already gone" as success — the state a retrying client wants.
    Retract {
        /// Broker the subscription was registered at.
        at: BrokerId,
        /// The identifier to retract.
        id: SubId,
        /// The client's session epoch, as in [`Frame::Resubscribe`].
        epoch: u64,
    },
}

/// Frame kind discriminants (the `kind` header byte).
mod kind {
    pub const HELLO: u8 = 0;
    pub const SUBSCRIBE: u8 = 1;
    pub const UNSUBSCRIBE: u8 = 2;
    pub const PUBLISH: u8 = 3;
    pub const DELIVERIES: u8 = 4;
    pub const OK: u8 = 5;
    pub const ERR: u8 = 6;
    pub const REJECTED: u8 = 7;
    pub const RESUBSCRIBE: u8 = 8;
    pub const RETRACT: u8 = 9;
}

impl Frame {
    /// The `kind` byte this frame travels under.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => kind::HELLO,
            Frame::Subscribe { .. } => kind::SUBSCRIBE,
            Frame::Unsubscribe { .. } => kind::UNSUBSCRIBE,
            Frame::Publish { .. } => kind::PUBLISH,
            Frame::Deliveries { .. } => kind::DELIVERIES,
            Frame::Ok => kind::OK,
            Frame::Err { .. } => kind::ERR,
            Frame::Rejected { .. } => kind::REJECTED,
            Frame::Resubscribe { .. } => kind::RESUBSCRIBE,
            Frame::Retract { .. } => kind::RETRACT,
        }
    }

    /// Human-readable kind name, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Subscribe { .. } => "Subscribe",
            Frame::Unsubscribe { .. } => "Unsubscribe",
            Frame::Publish { .. } => "Publish",
            Frame::Deliveries { .. } => "Deliveries",
            Frame::Ok => "Ok",
            Frame::Err { .. } => "Err",
            Frame::Rejected { .. } => "Rejected",
            Frame::Resubscribe { .. } => "Resubscribe",
            Frame::Retract { .. } => "Retract",
        }
    }

    /// Builds a `Subscribe` frame from a subscription's raw bounds.
    pub fn subscribe(at: BrokerId, client: ClientId, subscription: &Subscription) -> Frame {
        Frame::Subscribe {
            at,
            client,
            id: subscription.id(),
            bounds: subscription.raw_bounds().to_vec(),
        }
    }

    /// Builds a `Resubscribe` frame from a subscription's raw bounds.
    pub fn resubscribe(
        at: BrokerId,
        client: ClientId,
        subscription: &Subscription,
        epoch: u64,
    ) -> Frame {
        Frame::Resubscribe {
            at,
            client,
            id: subscription.id(),
            bounds: subscription.raw_bounds().to_vec(),
            epoch,
        }
    }
}

// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Built at compile
// time so the hot path is one table lookup per byte.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // acd-lint: allow(panic-hygiene) const-fn table builder; `i` is the loop bound over table.len()
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        // acd-lint: allow(panic-hygiene) index is masked to 0..256 on a 256-entry table
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Validates a frame's fixed header: magic, version, and a sane payload
/// length. Returns `(kind, payload_len)`.
///
/// # Errors
///
/// [`ServiceError::CorruptFrame`] on a bad magic or an oversized length,
/// [`ServiceError::VersionMismatch`] on a foreign version byte.
pub fn check_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32), ServiceError> {
    let [m0, m1, m2, m3, version, kind, l0, l1, l2, l3] = *header;
    let magic = u32::from_le_bytes([m0, m1, m2, m3]);
    if magic != MAGIC {
        return Err(ServiceError::CorruptFrame {
            reason: format!("bad magic 0x{magic:08x}, expected 0x{MAGIC:08x}"),
        });
    }
    if version != VERSION {
        return Err(ServiceError::VersionMismatch { found: version });
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_PAYLOAD {
        return Err(ServiceError::CorruptFrame {
            reason: format!("payload length {len} exceeds cap {MAX_PAYLOAD}"),
        });
    }
    Ok((kind, len))
}

/// Validates a frame's trailing checksum against the one computed over the
/// received header + payload bytes.
///
/// # Errors
///
/// [`ServiceError::CorruptFrame`] on a mismatch.
pub fn check_footer(received: u32, computed: u32) -> Result<(), ServiceError> {
    if received != computed {
        return Err(ServiceError::CorruptFrame {
            reason: format!(
                "checksum mismatch: frame says 0x{received:08x}, bytes hash to 0x{computed:08x}"
            ),
        });
    }
    Ok(())
}

/// Encodes `frame` into `out`, replacing its contents. `out` is a reusable
/// scratch buffer: after warm-up, encoding allocates nothing.
// acd-lint: hot
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(frame.kind());
    out.extend_from_slice(&[0, 0, 0, 0]); // payload_len, patched below
    match frame {
        Frame::Hello { schema_json } => {
            put_bytes(out, schema_json.as_bytes());
        }
        Frame::Subscribe {
            at,
            client,
            id,
            bounds,
        } => {
            out.extend_from_slice(&(*at as u64).to_le_bytes());
            out.extend_from_slice(&client.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(bounds.len() as u32).to_le_bytes());
            for (lo, hi) in bounds {
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
        }
        Frame::Unsubscribe { at, id } => {
            out.extend_from_slice(&(*at as u64).to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
        }
        Frame::Publish { at, values } => {
            out.extend_from_slice(&(*at as u64).to_le_bytes());
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Frame::Deliveries { pairs } => {
            out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
            for (broker, client) in pairs {
                out.extend_from_slice(&(*broker as u64).to_le_bytes());
                out.extend_from_slice(&client.to_le_bytes());
            }
        }
        Frame::Ok => {}
        Frame::Err { message } => {
            put_bytes(out, message.as_bytes());
        }
        Frame::Rejected { reason } => {
            put_bytes(out, reason.as_bytes());
        }
        Frame::Resubscribe {
            at,
            client,
            id,
            bounds,
            epoch,
        } => {
            out.extend_from_slice(&(*at as u64).to_le_bytes());
            out.extend_from_slice(&client.to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&(bounds.len() as u32).to_le_bytes());
            for (lo, hi) in bounds {
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
        }
        Frame::Retract { at, id, epoch } => {
            out.extend_from_slice(&(*at as u64).to_le_bytes());
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
        }
    }
    let payload_len = (out.len() - HEADER_LEN) as u32;
    out.get_mut(6..HEADER_LEN)
        .expect("encode starts by writing a full header")
        .copy_from_slice(&payload_len.to_le_bytes());
    let crc = crc32(out);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Appends a length-prefixed byte string.
// acd-lint: hot
fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Reads and validates one frame from `reader`, reusing `scratch` as the
/// payload buffer. Any malformation — bad magic, foreign version, oversized
/// length, truncation, checksum mismatch, short or over-long payload — comes
/// back as an error; this function never panics on wire bytes.
///
/// # Errors
///
/// [`ServiceError::CorruptFrame`] / [`ServiceError::VersionMismatch`] as in
/// [`check_header`]/[`check_footer`]; [`ServiceError::Io`] if the transport
/// itself fails mid-frame (a clean EOF before the first header byte is also
/// `Io`, distinguishable by its message).
pub fn read_frame<R: Read>(reader: &mut R, scratch: &mut Vec<u8>) -> Result<Frame, ServiceError> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header).map_err(ServiceError::from)?;
    let (kind, len) = check_header(&header)?;
    scratch.resize(len as usize, 0);
    reader.read_exact(scratch).map_err(truncated)?;
    let mut footer = [0u8; FOOTER_LEN];
    reader.read_exact(&mut footer).map_err(truncated)?;
    let mut crc = crc32(&header);
    // One-shot CRC over two spans: continue the running value by hand.
    crc = continue_crc32(crc, scratch);
    check_footer(u32::from_le_bytes(footer), crc)?;
    decode_payload(kind, scratch)
}

/// Continues a finished CRC-32 value over more bytes (equivalent to hashing
/// the concatenation).
fn continue_crc32(finished: u32, bytes: &[u8]) -> u32 {
    let mut crc = !finished;
    for &b in bytes {
        // acd-lint: allow(panic-hygiene) index is masked to 0..256 on a 256-entry table
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Peeks at the frame heading `buf` without consuming anything: returns the
/// origin broker iff a **complete** `Publish` frame is buffered (header,
/// payload and checksum all present). The daemon uses this to drain
/// pipelined publishes from one connection into a batch without ever
/// blocking on a partial frame or committing to a frame of another kind.
/// Anything that is not a whole well-headed Publish — too few bytes, a
/// different kind, a corrupt header — answers `None`; the frame is then
/// consumed (and fully validated) by [`read_frame`] on the ordinary path,
/// which surfaces corruption as an error.
pub(crate) fn buffered_publish(buf: &[u8]) -> Option<BrokerId> {
    let header: [u8; HEADER_LEN] = buf.get(..HEADER_LEN)?.try_into().ok()?;
    let (frame_kind, len) = check_header(&header).ok()?;
    if frame_kind != kind::PUBLISH {
        return None;
    }
    let payload = buf
        .get(HEADER_LEN..HEADER_LEN + len as usize + FOOTER_LEN)?
        .get(..len as usize)?;
    // The origin broker is the Publish payload's first field; the checksum
    // is verified by `read_frame` when the frame is actually consumed.
    let at = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
    Some(at as BrokerId)
}

/// Maps a mid-frame read failure to `CorruptFrame` (EOF inside a frame is a
/// framing problem, not a transport one).
fn truncated(e: std::io::Error) -> ServiceError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ServiceError::CorruptFrame {
            reason: "stream ended mid-frame".into(),
        }
    } else {
        ServiceError::from(e)
    }
}

/// Decodes a checksum-verified payload into a [`Frame`].
fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, ServiceError> {
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let frame = match kind {
        kind::HELLO => Frame::Hello {
            schema_json: c.take_string()?,
        },
        kind::SUBSCRIBE => {
            let at = c.take_u64()? as BrokerId;
            let client = c.take_u64()?;
            let id = c.take_u64()?;
            let n = c.take_u32()? as usize;
            c.check_remaining(n, 16)?;
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                bounds.push((c.take_f64()?, c.take_f64()?));
            }
            Frame::Subscribe {
                at,
                client,
                id,
                bounds,
            }
        }
        kind::UNSUBSCRIBE => Frame::Unsubscribe {
            at: c.take_u64()? as BrokerId,
            id: c.take_u64()?,
        },
        kind::PUBLISH => {
            let at = c.take_u64()? as BrokerId;
            let n = c.take_u32()? as usize;
            c.check_remaining(n, 8)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(c.take_f64()?);
            }
            Frame::Publish { at, values }
        }
        kind::DELIVERIES => {
            let n = c.take_u32()? as usize;
            c.check_remaining(n, 16)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let broker = c.take_u64()? as BrokerId;
                pairs.push((broker, c.take_u64()?));
            }
            Frame::Deliveries { pairs }
        }
        kind::OK => Frame::Ok,
        kind::ERR => Frame::Err {
            message: c.take_string()?,
        },
        kind::REJECTED => Frame::Rejected {
            reason: c.take_string()?,
        },
        kind::RESUBSCRIBE => {
            let at = c.take_u64()? as BrokerId;
            let client = c.take_u64()?;
            let id = c.take_u64()?;
            let epoch = c.take_u64()?;
            let n = c.take_u32()? as usize;
            c.check_remaining(n, 16)?;
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                bounds.push((c.take_f64()?, c.take_f64()?));
            }
            Frame::Resubscribe {
                at,
                client,
                id,
                bounds,
                epoch,
            }
        }
        kind::RETRACT => Frame::Retract {
            at: c.take_u64()? as BrokerId,
            id: c.take_u64()?,
            epoch: c.take_u64()?,
        },
        other => {
            return Err(ServiceError::CorruptFrame {
                reason: format!("unknown frame kind {other}"),
            })
        }
    };
    c.finish()?;
    Ok(frame)
}

/// A bounds-checked reader over a payload slice: every primitive read can
/// fail cleanly instead of panicking on a short buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ServiceError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end.and_then(|end| self.buf.get(self.at..end)) {
            Some(slice) => {
                self.at = self.at.saturating_add(n);
                Ok(slice)
            }
            None => Err(ServiceError::CorruptFrame {
                reason: "payload shorter than its fields claim".into(),
            }),
        }
    }

    fn take_u32(&mut self) -> Result<u32, ServiceError> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .expect("take(4) returns exactly four bytes");
        Ok(u32::from_le_bytes(b))
    }

    fn take_u64(&mut self) -> Result<u64, ServiceError> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .expect("take(8) returns exactly eight bytes");
        Ok(u64::from_le_bytes(b))
    }

    fn take_f64(&mut self) -> Result<f64, ServiceError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    fn take_string(&mut self) -> Result<String, ServiceError> {
        let n = self.take_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ServiceError::CorruptFrame {
            reason: "string field is not UTF-8".into(),
        })
    }

    /// Rejects element counts that could not possibly fit in the remaining
    /// bytes, before `Vec::with_capacity` trusts them.
    fn check_remaining(&self, count: usize, elem_size: usize) -> Result<(), ServiceError> {
        let need = count.checked_mul(elem_size);
        if need.is_none_or(|need| need > self.buf.len() - self.at) {
            return Err(ServiceError::CorruptFrame {
                reason: "element count exceeds payload size".into(),
            });
        }
        Ok(())
    }

    /// Every payload byte must be consumed — trailing garbage is corruption.
    fn finish(&self) -> Result<(), ServiceError> {
        if self.at != self.buf.len() {
            return Err(ServiceError::CorruptFrame {
                reason: format!(
                    "{} trailing payload bytes after decoding",
                    self.buf.len() - self.at
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                schema_json: "{\"attributes\":[]}".into(),
            },
            Frame::Subscribe {
                at: 3,
                client: 42,
                id: 7,
                bounds: vec![(0.0, 10.5), (-3.25, f64::MAX)],
            },
            Frame::Unsubscribe { at: 0, id: 7 },
            Frame::Publish {
                at: 1,
                values: vec![1.5, 2.5, 3.5],
            },
            Frame::Deliveries {
                pairs: vec![(0, 10), (3, 99)],
            },
            Frame::Ok,
            Frame::Err {
                message: "subscription 7 is already registered".into(),
            },
            Frame::Rejected {
                reason: "connection cap reached (4 of 4 busy)".into(),
            },
            Frame::Resubscribe {
                at: 2,
                client: 13,
                id: 9,
                bounds: vec![(1.0, 2.0)],
                epoch: 3,
            },
            Frame::Retract {
                at: 1,
                id: 9,
                epoch: 3,
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        for frame in frames() {
            encode_frame(&frame, &mut buf);
            let decoded = read_frame(&mut buf.as_slice(), &mut scratch).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn frames_round_trip_back_to_back_on_one_stream() {
        let mut stream = Vec::new();
        let mut buf = Vec::new();
        for frame in frames() {
            encode_frame(&frame, &mut buf);
            stream.extend_from_slice(&buf);
        }
        let mut reader = stream.as_slice();
        let mut scratch = Vec::new();
        for frame in frames() {
            assert_eq!(read_frame(&mut reader, &mut scratch).unwrap(), frame);
        }
        assert!(reader.is_empty());
    }

    #[test]
    fn every_single_flipped_byte_is_rejected() {
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        for frame in frames() {
            encode_frame(&frame, &mut buf);
            for i in 0..buf.len() {
                for bit in 0..8 {
                    let mut corrupt = buf.clone();
                    corrupt[i] ^= 1 << bit;
                    let result = read_frame(&mut corrupt.as_slice(), &mut scratch);
                    assert!(
                        result.is_err(),
                        "{}: flipping byte {i} bit {bit} went undetected",
                        frame.kind_name()
                    );
                }
            }
        }
    }

    #[test]
    fn truncation_anywhere_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        encode_frame(
            &Frame::Subscribe {
                at: 1,
                client: 2,
                id: 3,
                bounds: vec![(0.0, 1.0)],
            },
            &mut buf,
        );
        for cut in 1..buf.len() {
            let result = read_frame(&mut &buf[..cut], &mut scratch);
            assert!(result.is_err(), "truncation at {cut} went undetected");
        }
    }

    #[test]
    fn header_checks_name_the_problem() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Ok, &mut buf);
        let mut scratch = Vec::new();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad_magic.as_slice(), &mut scratch),
            Err(ServiceError::CorruptFrame { reason }) if reason.contains("magic")
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = 9;
        assert!(matches!(
            read_frame(&mut bad_version.as_slice(), &mut scratch),
            Err(ServiceError::VersionMismatch { found: 9 })
        ));

        let mut bad_len = buf.clone();
        bad_len[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bad_len.as_slice(), &mut scratch),
            Err(ServiceError::CorruptFrame { reason }) if reason.contains("cap")
        ));
    }

    #[test]
    fn buffered_publish_peeks_only_whole_publish_frames() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Publish {
                at: 5,
                values: vec![1.0, 2.0],
            },
            &mut buf,
        );
        assert_eq!(buffered_publish(&buf), Some(5));
        // A second frame behind it does not confuse the peek.
        let mut two = buf.clone();
        two.extend_from_slice(&buf);
        assert_eq!(buffered_publish(&two), Some(5));
        // Every truncation of a Publish answers None (frame not complete).
        for cut in 0..buf.len() {
            assert_eq!(buffered_publish(&buf[..cut]), None, "cut at {cut}");
        }
        // Other kinds answer None however complete.
        let mut other = Vec::new();
        encode_frame(&Frame::Unsubscribe { at: 5, id: 1 }, &mut other);
        assert_eq!(buffered_publish(&other), None);
        // A corrupt header answers None (the consuming path reports it).
        let mut corrupt = buf.clone();
        corrupt[0] = b'X';
        assert_eq!(buffered_publish(&corrupt), None);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard check: CRC-32("123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Split computation agrees with one-shot.
        let whole = crc32(b"hello world");
        assert_eq!(continue_crc32(crc32(b"hello "), b"world"), whole);
    }

    #[test]
    fn encode_reuses_the_scratch_buffer() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Publish {
                at: 0,
                values: vec![1.0; 64],
            },
            &mut buf,
        );
        let cap = buf.capacity();
        for _ in 0..100 {
            encode_frame(
                &Frame::Publish {
                    at: 0,
                    values: vec![2.0; 64],
                },
                &mut buf,
            );
        }
        assert_eq!(buf.capacity(), cap, "steady-state encode must not grow");
    }
}
