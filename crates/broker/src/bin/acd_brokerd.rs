//! `acd-brokerd` — serve a covering-aware broker overlay over TCP.
//!
//! ```text
//! acd-brokerd [--addr 127.0.0.1:0] [--topology star|line|tree|random]
//!             [--brokers N] [--policy none|exact-linear|exact-sfc|
//!              sharded-sfc:SHARDS|approx:EPSILON]
//!             [--workers N] [--attributes N] [--bits B] [--seed S]
//!             [--max-connections N] [--max-inflight N]
//!             [--idle-timeout-ms MS] [--chaos SPEC] [--data-dir PATH]
//! ```
//!
//! `--chaos` injects deterministic transport faults into every accepted
//! connection (see `acd_broker::FaultPlan::parse` for the spec grammar,
//! e.g. `seed=7,corrupt=0.01,disconnect=0.005`) — the fault-injection
//! harness the chaos test suite drives. `--max-connections` /
//! `--max-inflight` bound admission (excess work is answered with typed
//! `Rejected` frames instead of stalling), and `--idle-timeout-ms` reaps
//! connections that stay silent. `--data-dir` makes the subscription set
//! durable: every acknowledged subscribe/unsubscribe is journaled before
//! its ack, a snapshot is written on graceful shutdown, and start-up
//! replays `snapshot ∘ journal` — so a restarted daemon (even after a
//! kill -9) serves the same registrations.
//!
//! The schema is the synthetic-workload one (`attr0..attrN-1`, domain
//! `[0, 1e6]`), so `acd-brokerload` streams are compatible out of the box.
//! On startup the daemon prints exactly one line, `listening on ADDR`, to
//! stdout — scripts (and the e2e integration test) parse it to learn the
//! ephemeral port.

use std::io::Write;
use std::sync::Arc;

use acd_broker::{BrokerConfig, BrokerDaemon, CoveringPolicy, DaemonOptions, FaultPlan, Topology};
use acd_workload::{SubscriptionWorkload, WorkloadConfig};

struct Args {
    addr: String,
    topology: String,
    brokers: usize,
    policy: CoveringPolicy,
    workers: usize,
    attributes: usize,
    bits: u32,
    seed: u64,
    max_connections: usize,
    max_inflight: usize,
    idle_timeout_ms: u64,
    chaos: Option<FaultPlan>,
    data_dir: Option<std::path::PathBuf>,
}

fn parse_policy(s: &str) -> Result<CoveringPolicy, String> {
    if let Some(shards) = s.strip_prefix("sharded-sfc:") {
        let shards: usize = shards
            .parse()
            .map_err(|_| format!("bad shard count in {s:?}"))?;
        return Ok(CoveringPolicy::ShardedSfc { shards });
    }
    if let Some(eps) = s.strip_prefix("approx:") {
        let epsilon: f64 = eps.parse().map_err(|_| format!("bad epsilon in {s:?}"))?;
        return Ok(CoveringPolicy::Approximate { epsilon });
    }
    match s {
        "none" => Ok(CoveringPolicy::None),
        "exact-linear" => Ok(CoveringPolicy::ExactLinear),
        "exact-sfc" => Ok(CoveringPolicy::ExactSfc),
        other => Err(format!(
            "unknown policy {other:?} (none, exact-linear, exact-sfc, \
             sharded-sfc:SHARDS, approx:EPSILON)"
        )),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        topology: "line".into(),
        brokers: 8,
        policy: CoveringPolicy::ExactSfc,
        workers: 4,
        attributes: 2,
        bits: 10,
        seed: 42,
        max_connections: 0,
        max_inflight: 0,
        idle_timeout_ms: 0,
        chaos: None,
        data_dir: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--topology" => args.topology = value("--topology")?,
            "--brokers" => {
                args.brokers = value("--brokers")?
                    .parse()
                    .map_err(|e| format!("--brokers: {e}"))?
            }
            "--policy" => args.policy = parse_policy(&value("--policy")?)?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--attributes" => {
                args.attributes = value("--attributes")?
                    .parse()
                    .map_err(|e| format!("--attributes: {e}"))?
            }
            "--bits" => {
                args.bits = value("--bits")?
                    .parse()
                    .map_err(|e| format!("--bits: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--max-inflight" => {
                args.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?
            }
            "--idle-timeout-ms" => {
                args.idle_timeout_ms = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?
            }
            "--chaos" => args.chaos = Some(FaultPlan::parse(&value("--chaos")?)?),
            "--data-dir" => args.data_dir = Some(std::path::PathBuf::from(value("--data-dir")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn build_topology(kind: &str, brokers: usize, seed: u64) -> Result<Topology, String> {
    let topology = match kind {
        "star" => Topology::star(brokers),
        "line" => Topology::line(brokers),
        "tree" => {
            // Smallest balanced binary tree with at least the requested
            // broker count.
            let mut depth = 1;
            while (1 << (depth + 1)) - 1 < brokers {
                depth += 1;
            }
            Topology::balanced_tree(2, depth)
        }
        "random" => Topology::random_tree(brokers, seed),
        other => {
            return Err(format!(
                "unknown topology {other:?} (star, line, tree, random)"
            ))
        }
    };
    topology.map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let topology = build_topology(&args.topology, args.brokers, args.seed)?;
    let workload = WorkloadConfig::builder()
        .attributes(args.attributes)
        .bits_per_attribute(args.bits)
        .seed(args.seed)
        .build()
        .map_err(|e| e.to_string())?;
    let schema = SubscriptionWorkload::new(&workload)
        .map_err(|e| e.to_string())?
        .schema()
        .clone();
    let network = Arc::new(
        BrokerConfig::new(topology, &schema)
            .policy(args.policy)
            .build()
            .map_err(|e| e.to_string())?,
    );
    eprintln!(
        "acd-brokerd: {} brokers ({}), policy {}, {} connection workers",
        network.topology().brokers(),
        args.topology,
        args.policy.label(),
        args.workers
    );
    if args.chaos.is_some() {
        eprintln!("acd-brokerd: chaos enabled — injecting transport faults");
    }
    if let Some(dir) = &args.data_dir {
        eprintln!("acd-brokerd: durable subscriptions in {}", dir.display());
    }
    let options = DaemonOptions {
        workers: args.workers,
        max_connections: args.max_connections,
        max_inflight: args.max_inflight,
        idle_timeout: (args.idle_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(args.idle_timeout_ms)),
        chaos: args.chaos,
        data_dir: args.data_dir,
        ..DaemonOptions::default()
    };
    let daemon = BrokerDaemon::start_with(network, args.addr.as_str(), options)
        .map_err(|e| e.to_string())?;
    // The one machine-readable line scripts depend on.
    println!("listening on {}", daemon.local_addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() {
    if let Err(message) = run() {
        eprintln!("acd-brokerd: {message}");
        std::process::exit(2);
    }
}
