//! `acd-brokerload` — replay churn workloads against a running
//! `acd-brokerd` over N real TCP connections.
//!
//! ```text
//! acd-brokerload --addr HOST:PORT [--connections N] [--ops N]
//!                [--brokers N] [--attributes N] [--bits B] [--seed S]
//! ```
//!
//! Each connection runs its own thread with an independent
//! [`ChurnWorkload`] stream (seed offset by the connection index) and
//! replays it through a [`BrokerClient`]: subscribes land at a broker
//! derived from the subscription id, unsubscribes retract at the same
//! broker, publishes fan out from rotating brokers. Subscription ids are
//! remapped (`id * connections + index`) so concurrent streams never
//! collide. `--brokers`, `--attributes` and `--bits` must match the
//! daemon's; a mismatch shows up as rejected requests, not corruption.

use std::time::Instant;

use acd_broker::{BrokerClient, BrokerId, ServiceError};
use acd_workload::{ChurnConfig, ChurnOp, ChurnWorkload, WorkloadConfig};

struct Args {
    addr: String,
    connections: usize,
    ops: usize,
    brokers: usize,
    attributes: usize,
    bits: u32,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        connections: 4,
        ops: 1000,
        brokers: 8,
        attributes: 2,
        bits: 10,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("--connections: {e}"))?
            }
            "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--brokers" => {
                args.brokers = value("--brokers")?
                    .parse()
                    .map_err(|e| format!("--brokers: {e}"))?
            }
            "--attributes" => {
                args.attributes = value("--attributes")?
                    .parse()
                    .map_err(|e| format!("--attributes: {e}"))?
            }
            "--bits" => {
                args.bits = value("--bits")?
                    .parse()
                    .map_err(|e| format!("--bits: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr HOST:PORT is required".into());
    }
    if args.connections == 0 {
        return Err("--connections must be at least 1".into());
    }
    Ok(args)
}

#[derive(Debug, Default)]
struct ConnStats {
    subscribes: u64,
    unsubscribes: u64,
    publishes: u64,
    deliveries: u64,
    rejected: u64,
}

/// Replays one churn stream over one connection.
fn drive_connection(args: &Args, index: usize) -> Result<ConnStats, ServiceError> {
    let workload = WorkloadConfig::builder()
        .attributes(args.attributes)
        .bits_per_attribute(args.bits)
        .seed(args.seed.wrapping_add(index as u64))
        .build()
        .map_err(|e| ServiceError::Io(e.to_string()))?;
    let mut churn = ChurnWorkload::new(&ChurnConfig::balanced(workload))
        .map_err(|e| ServiceError::Io(e.to_string()))?;
    let mut client = BrokerClient::connect(args.addr.as_str())?;
    let connections = args.connections as u64;
    let remap = |id: u64| id * connections + index as u64;
    let home = |id: u64| (id % args.brokers as u64) as BrokerId;
    let mut stats = ConnStats::default();
    for step in 0..args.ops {
        match churn.next_op() {
            ChurnOp::Subscribe(sub) => {
                let sub = sub.with_id(remap(sub.id()));
                match client.subscribe(home(sub.id()), index as u64, &sub) {
                    Ok(()) => stats.subscribes += 1,
                    Err(ServiceError::Rejected { .. }) => stats.rejected += 1,
                    Err(e) => return Err(e),
                }
            }
            ChurnOp::Unsubscribe(id) => {
                let id = remap(id);
                match client.unsubscribe(home(id), id) {
                    Ok(()) => stats.unsubscribes += 1,
                    Err(ServiceError::Rejected { .. }) => stats.rejected += 1,
                    Err(e) => return Err(e),
                }
            }
            ChurnOp::Publish(event) => {
                let at = step % args.brokers;
                match client.publish(at, &event) {
                    Ok(pairs) => {
                        stats.publishes += 1;
                        stats.deliveries += pairs.len() as u64;
                    }
                    Err(ServiceError::Rejected { .. }) => stats.rejected += 1,
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(stats)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let started = Instant::now();
    let results: Vec<Result<ConnStats, ServiceError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.connections)
            .map(|index| {
                let args = &args;
                scope.spawn(move || drive_connection(args, index))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(ServiceError::Io("connection thread panicked".into())))
            })
            .collect()
    });
    let elapsed = started.elapsed();

    let mut total = ConnStats::default();
    let mut failures = 0usize;
    for (index, result) in results.into_iter().enumerate() {
        match result {
            Ok(stats) => {
                eprintln!(
                    "connection {index}: {} subs, {} unsubs, {} publishes, \
                     {} deliveries, {} rejected",
                    stats.subscribes,
                    stats.unsubscribes,
                    stats.publishes,
                    stats.deliveries,
                    stats.rejected
                );
                total.subscribes += stats.subscribes;
                total.unsubscribes += stats.unsubscribes;
                total.publishes += stats.publishes;
                total.deliveries += stats.deliveries;
                total.rejected += stats.rejected;
            }
            Err(e) => {
                failures += 1;
                eprintln!("connection {index}: failed: {e}");
            }
        }
    }
    let ops = total.subscribes + total.unsubscribes + total.publishes;
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "{} connections, {ops} ops in {:.3}s ({:.0} ops/s), \
         {} publishes ({:.0} events/s), {} deliveries, {} rejected",
        args.connections,
        secs,
        ops as f64 / secs,
        total.publishes,
        total.publishes as f64 / secs,
        total.deliveries,
        total.rejected
    );
    if failures > 0 {
        return Err(format!("{failures} connection(s) failed"));
    }
    Ok(())
}

fn main() {
    if let Err(message) = run() {
        eprintln!("acd-brokerload: {message}");
        std::process::exit(2);
    }
}
