//! # acd-broker — a Siena-style broker overlay with covering-aware
//! subscription propagation
//!
//! The paper motivates approximate covering detection with its effect on a
//! distributed publish/subscribe system: fewer subscriptions propagated,
//! smaller routing tables, cheaper covering checks. This crate provides the
//! substrate to measure exactly that — a deterministic, in-process simulator
//! of an acyclic broker overlay implementing content-based routing:
//!
//! * [`Topology`] — star, line, balanced-tree and random-tree overlays;
//! * [`BrokerNetwork`] — the overlay service, built with [`BrokerConfig`]:
//!   clients attach to brokers, register [`Subscription`]s and publish
//!   [`Event`]s; subscriptions are propagated through the overlay with
//!   per-interface *sender-side covering suppression* governed by a
//!   [`CoveringPolicy`]; events are forwarded along reverse subscription
//!   paths and delivered to matching clients. All operations take `&self`
//!   behind interior locking, so one network can be driven from many
//!   threads at once (see `LOCKING.md` for the lock hierarchy);
//! * [`NetworkMetrics`] — subscription messages, routing-table entries, event
//!   messages, deliveries and covering-detection cost, the quantities the
//!   broker experiment (E7) reports;
//! * [`service`] / [`client`] / [`wire`] — a TCP front door: the
//!   `acd-brokerd` daemon serves a network over a length-prefixed,
//!   checksummed binary protocol, and [`BrokerClient`] is the matching
//!   blocking client.
//!
//! The overlay's key correctness property — **covering suppression never
//! changes what subscribers receive** — is verified in the crate's tests by
//! comparing deliveries against a flooding configuration.
//!
//! ## Example
//!
//! ```
//! use acd_broker::{BrokerConfig, Topology};
//! use acd_covering::CoveringPolicy;
//! use acd_subscription::{Schema, SubscriptionBuilder, Event};
//!
//! # fn main() -> Result<(), acd_broker::BrokerError> {
//! let schema = Schema::builder()
//!     .attribute("price", 0.0, 100.0)
//!     .bits_per_attribute(8)
//!     .build()?;
//! let topology = Topology::star(4)?; // broker 0 in the middle
//! let net = BrokerConfig::new(topology, &schema)
//!     .policy(CoveringPolicy::ExactSfc)
//!     .build()?;
//!
//! let wide = SubscriptionBuilder::new(&schema).range("price", 0.0, 90.0).build(1)?;
//! net.subscribe(1, 100, &wide)?;
//! let event = Event::new(&schema, vec![50.0])?;
//! let deliveries = net.publish(3, &event)?;
//! assert_eq!(deliveries, vec![(1, 100)]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod broker;
pub mod client;
mod error;
pub mod faults;
pub mod metrics;
pub mod network;
pub mod resilient;
pub mod service;
pub mod topology;
pub mod wire;

pub use broker::{Broker, BrokerId, ClientId, EventChunk};
pub use client::{BatchError, BrokerClient};
pub use error::{BrokerError, ServiceError};
pub use faults::{FaultPlan, FaultyStream};
pub use metrics::NetworkMetrics;
pub use network::{BrokerConfig, BrokerNetwork, BrokerRef};
pub use resilient::{ClientStats, GaveUp, Resilience, ResilientClient, RetryPolicy};
pub use service::{BrokerDaemon, DaemonOptions};
pub use topology::Topology;

// Re-exports so examples can depend on a single crate.
pub use acd_covering::CoveringPolicy;
pub use acd_subscription::{Event, Subscription};

/// Convenience result alias used throughout the crate.
pub type Result<T, E = BrokerError> = std::result::Result<T, E>;
