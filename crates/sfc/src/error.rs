use std::error::Error;
use std::fmt;

/// Error type for the space-filling-curve substrate.
///
/// Every fallible public operation in this crate returns [`SfcError`], which
/// implements [`std::error::Error`] and is `Send + Sync + 'static` so it can
/// be boxed and propagated by downstream crates.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SfcError {
    /// A universe was requested with an unsupported shape.
    InvalidUniverse {
        /// Number of dimensions requested.
        dims: usize,
        /// Bits per dimension requested.
        bits_per_dim: u32,
        /// Human readable reason.
        reason: &'static str,
    },
    /// A point has the wrong number of coordinates for the universe.
    DimensionMismatch {
        /// Dimensions the universe has.
        expected: usize,
        /// Dimensions the argument has.
        actual: usize,
    },
    /// A coordinate lies outside the universe.
    CoordinateOutOfRange {
        /// Dimension of the offending coordinate.
        dim: usize,
        /// Offending value.
        value: u64,
        /// Exclusive upper bound (`2^k`).
        bound: u64,
    },
    /// A key has the wrong bit-length for the universe.
    KeyLengthMismatch {
        /// Expected number of bits (`d·k`).
        expected: u32,
        /// Actual number of bits.
        actual: u32,
    },
    /// A rectangle was given with `lo > hi` along some dimension.
    EmptyRectangle {
        /// Dimension along which the rectangle is inverted.
        dim: usize,
    },
    /// A side length of an extremal rectangle is zero or exceeds the universe.
    InvalidSideLength {
        /// Dimension of the offending side.
        dim: usize,
        /// Offending length.
        length: u64,
        /// Inclusive upper bound (`2^k`).
        bound: u64,
    },
    /// The epsilon parameter of an approximate query is outside `(0, 1)`.
    InvalidEpsilon {
        /// The offending value.
        epsilon: f64,
    },
    /// A pre-sorted bulk load ([`crate::SfcArray::from_sorted_packed`]) was
    /// handed a batch whose keys decrease.
    UnsortedBatch {
        /// Index of the first out-of-order entry.
        index: usize,
    },
    /// An empty point set or region where a non-empty one is required.
    Empty,
}

impl fmt::Display for SfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfcError::InvalidUniverse {
                dims,
                bits_per_dim,
                reason,
            } => write!(
                f,
                "invalid universe with {dims} dimensions and {bits_per_dim} bits per dimension: {reason}"
            ),
            SfcError::DimensionMismatch { expected, actual } => write!(
                f,
                "dimension mismatch: universe has {expected} dimensions but argument has {actual}"
            ),
            SfcError::CoordinateOutOfRange { dim, value, bound } => write!(
                f,
                "coordinate {value} on dimension {dim} is outside the universe (must be < {bound})"
            ),
            SfcError::KeyLengthMismatch { expected, actual } => write!(
                f,
                "key length mismatch: expected {expected} bits but key has {actual}"
            ),
            SfcError::EmptyRectangle { dim } => {
                write!(f, "rectangle is empty along dimension {dim} (lo > hi)")
            }
            SfcError::InvalidSideLength { dim, length, bound } => write!(
                f,
                "side length {length} on dimension {dim} is invalid (must be in 1..={bound})"
            ),
            SfcError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon {epsilon} is outside the open interval (0, 1)")
            }
            SfcError::UnsortedBatch { index } => {
                write!(f, "pre-sorted batch is out of key order at entry {index}")
            }
            SfcError::Empty => write!(f, "operation requires a non-empty region or point set"),
        }
    }
}

impl Error for SfcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SfcError::DimensionMismatch {
            expected: 4,
            actual: 2,
        };
        let s = e.to_string();
        assert!(s.contains('4') && s.contains('2'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: Send + Sync + 'static>() {}
        assert_traits::<SfcError>();
    }

    #[test]
    fn errors_compare_equal_structurally() {
        assert_eq!(SfcError::Empty, SfcError::Empty,);
        assert_ne!(SfcError::Empty, SfcError::EmptyRectangle { dim: 0 },);
    }
}
