//! The Z-order (Morton) curve.
//!
//! The key of a cell is obtained by interleaving the bits of its coordinates,
//! most significant bit first, cycling through the dimensions: the top bit of
//! the key is the top bit of dimension 0, followed by the top bit of
//! dimension 1, and so on. This matches the paper's example (Section 5):
//! the cell with coordinates `(3, 5) = (011, 101)` has key `011011 = 27`
//! when interleaving starts with the first dimension's most significant bit —
//! i.e. the key bits are `x1[2] x2[2] x1[1] x2[1] x1[0] x2[0]` read as
//! `0·1 1·0 1·1`.

use crate::cube::StandardCube;
use crate::curve::{CurveKind, RegionSeeker, SpaceFillingCurve};
use crate::key::{Key, KeyRange};
use crate::rect::Rect;
use crate::universe::{Point, Universe};
use crate::Result;

/// The Z-order (Morton) space filling curve over a fixed universe.
///
/// # Example
///
/// ```
/// use acd_sfc::{Universe, Point, ZCurve, SpaceFillingCurve};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let curve = ZCurve::new(Universe::new(2, 3)?);
/// let key = curve.key_of_point(&Point::new(vec![3, 5])?)?;
/// assert_eq!(key.to_u128(), Some(27)); // the paper's worked example
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZCurve {
    universe: Universe,
}

/// Lazily-built byte-spread tables, shared per dimension count:
/// `spread_table(d)[v]` scatters the 8 bits of `v` to positions
/// `0, d, 2d, …` (positions ≥ 128 are dropped — they can only correspond to
/// coordinate bits that are always zero in a ≤128-bit universe).
static SPREAD_TABLES: [std::sync::OnceLock<Box<[u128; 256]>>; crate::universe::MAX_DIMS + 1] =
    [const { std::sync::OnceLock::new() }; crate::universe::MAX_DIMS + 1];

fn spread_table(d: usize) -> &'static [u128; 256] {
    SPREAD_TABLES[d].get_or_init(|| {
        let mut table = Box::new([0u128; 256]);
        for (v, out) in table.iter_mut().enumerate() {
            for b in 0..8 {
                let pos = b * d;
                if (v >> b) & 1 == 1 && pos < 128 {
                    *out |= 1u128 << pos;
                }
            }
        }
        table
    })
}

impl ZCurve {
    /// Creates a Z-order curve over `universe`.
    pub fn new(universe: Universe) -> Self {
        ZCurve { universe }
    }

    /// Interleaves the coordinate bits of `coords` into a key.
    ///
    /// Bit layout: for bit position `b` from most significant (`k−1`) down to
    /// 0, and for each dimension `0..d` in order, the next key bit is bit `b`
    /// of that dimension's coordinate.
    ///
    /// Keys that fit 128 bits (the common subscription shapes) are built with
    /// pure `u128` shifts — no allocation and no per-bit [`Key::set_bit`]
    /// calls.
    pub(crate) fn interleave(universe: &Universe, coords: &[u64]) -> Key {
        let total = universe.key_bits();
        if total <= 128 {
            return Key::from_u128(Self::interleave_u128(universe, coords), total);
        }
        let d = universe.dims();
        let k = universe.bits_per_dim();
        let mut key = Key::zero(total);
        // Key bit index counted from the most significant side.
        for level in 0..k {
            let coord_bit = k - 1 - level;
            for (dim, &c) in coords.iter().enumerate() {
                if (c >> coord_bit) & 1 == 1 {
                    // Position from the MSB: level*d + dim; convert to
                    // LSB-based index for Key::set_bit.
                    let from_msb = level * d as u32 + dim as u32;
                    let index = total - 1 - from_msb;
                    key.set_bit(index, true);
                }
            }
        }
        key
    }

    /// Interleaves coordinates directly into a `u128` (no allocation). Only
    /// valid when the universe's key width fits 128 bits.
    ///
    /// Bit `b` of dimension `dim` lands at key bit `b·d + (d−1−dim)`
    /// (counting from the LSB), so each dimension is spread with stride `d`
    /// — one shared 256-entry table lookup per coordinate byte instead of a
    /// shift-or per bit.
    fn interleave_u128(universe: &Universe, coords: &[u64]) -> u128 {
        let d = universe.dims();
        let table = spread_table(d);
        let mut out = 0u128;
        for (dim, &c) in coords.iter().enumerate() {
            let mut acc = 0u128;
            let mut c = c;
            // Byte m of the coordinate starts at key bit 8·m·d.
            let mut shift = 0usize;
            while c != 0 && shift < 128 {
                acc |= table[(c & 0xFF) as usize] << shift;
                c >>= 8;
                shift += 8 * d;
            }
            out |= acc << (d - 1 - dim);
        }
        out
    }

    /// Reverses [`interleave`](Self::interleave), writing the coordinates
    /// into `coords` (whose length selects the number of dimensions).
    pub(crate) fn deinterleave_into(universe: &Universe, key: &Key, coords: &mut [u64]) {
        let d = universe.dims();
        let k = universe.bits_per_dim();
        let total = universe.key_bits();
        debug_assert_eq!(coords.len(), d);
        coords.fill(0);
        if total <= 128 {
            let v = key.to_u128().expect("≤128-bit keys always fit a u128");
            for (dim, coord) in coords.iter_mut().enumerate() {
                let mut pos = d as u32 - 1 - dim as u32;
                for b in 0..k {
                    *coord |= (((v >> pos) & 1) as u64) << b;
                    pos += d as u32;
                }
            }
            return;
        }
        for level in 0..k {
            let coord_bit = k - 1 - level;
            for (dim, coord) in coords.iter_mut().enumerate() {
                let from_msb = level * d as u32 + dim as u32;
                let index = total - 1 - from_msb;
                if key.bit(index) {
                    *coord |= 1 << coord_bit;
                }
            }
        }
    }

    /// Reverses [`interleave`](Self::interleave).
    pub(crate) fn deinterleave(universe: &Universe, key: &Key) -> Vec<u64> {
        let mut coords = vec![0u64; universe.dims()];
        Self::deinterleave_into(universe, key, &mut coords);
        coords
    }
}

impl SpaceFillingCurve for ZCurve {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn kind(&self) -> CurveKind {
        CurveKind::Z
    }

    fn key_of_point(&self, point: &Point) -> Result<Key> {
        self.universe.validate_point(point)?;
        Ok(Self::interleave(&self.universe, point.coords()))
    }

    fn point_of_key(&self, key: &Key) -> Result<Point> {
        key.expect_bits(self.universe.key_bits())?;
        let d = self.universe.dims();
        if d <= crate::universe::POINT_INLINE_DIMS {
            let mut buf = [0u64; crate::universe::POINT_INLINE_DIMS];
            Self::deinterleave_into(&self.universe, key, &mut buf[..d]);
            Ok(Point::from_slice(&buf[..d]))
        } else {
            Ok(Point::from_vec(Self::deinterleave(&self.universe, key)))
        }
    }

    /// On the Z curve the along-curve order of a cube's children is the
    /// numeric order of their offset masks with dimension 0 most significant,
    /// so the children can be produced directly: the `p`-th child in key
    /// order shifts dimension `j` by half the side iff bit `d−1−j` of `p` is
    /// set, and its key range is the `p`-th equal slice of the parent's
    /// range. One corner encoding replaces the `2^d` encodings (plus a sort)
    /// of the generic implementation.
    fn children_in_key_order(&self, cube: &StandardCube) -> Vec<(StandardCube, KeyRange)> {
        assert!(
            cube.side_exp() > 0,
            "children_in_key_order called on a single-cell cube"
        );
        let d = self.universe.dims();
        let parent = self
            .cube_key_range(cube)
            .expect("cube belongs to the curve's universe");
        let child_exp = cube.side_exp() - 1;
        let child_low_bits = child_exp * d as u32;
        let half = 1u64 << child_exp;
        let mut out = Vec::with_capacity(1 << d);
        for p in 0u64..(1u64 << d) {
            let mut lo = parent.lo().clone();
            let mut corner = cube.corner().to_vec();
            for (dim, c) in corner.iter_mut().enumerate() {
                if (p >> (d - 1 - dim)) & 1 == 1 {
                    *c += half;
                    lo.set_bit(child_low_bits + (d - 1 - dim) as u32, true);
                }
            }
            let hi = lo.with_low_bits_set(child_low_bits);
            let child = StandardCube::new(&self.universe, corner, child_exp)
                .expect("child of an in-universe cube is in the universe");
            let range = KeyRange::new(lo, hi).expect("child range is non-empty");
            out.push((child, range));
        }
        out
    }

    /// Builds the reusable BIGMIN seeker for `rect`: corner Z codes and
    /// per-dimension bit masks are precomputed here, once per query region,
    /// so each [`RegionSeeker::seek`] is a pure O(`d·k`) bit-walk with no
    /// allocation beyond the returned key. Returns `None` (generic stream
    /// fallback) when the key width exceeds 128 bits.
    fn region_seeker(&self, rect: &Rect) -> Option<Box<dyn RegionSeeker>> {
        let total = self.universe.key_bits();
        if total > 128 || rect.dims() != self.universe.dims() {
            return None;
        }
        let d = self.universe.dims() as u32;
        // Per-dimension bit masks of the interleaved layout (dimension 0
        // owns the most significant bit of each level), then flattened into
        // one mask per bit position: `low_masks[j]` keeps the bits of `j`'s
        // own dimension strictly below `j`, so the walk is pure ALU work.
        let mut dim_masks = vec![0u128; d as usize];
        for bit in 0..total {
            let dim = ((total - 1 - bit) % d) as usize;
            dim_masks[dim] |= 1u128 << bit;
        }
        let low_masks: Vec<u128> = (0..total)
            .map(|j| {
                let dim = ((total - 1 - j) % d) as usize;
                let below = if j == 0 { 0 } else { (1u128 << j) - 1 };
                dim_masks[dim] & below
            })
            .collect();
        // Z codes of the rectangle's corners. Interleaving preserves
        // componentwise dominance, so these bound every in-rect key.
        let zmin = Self::interleave_u128(&self.universe, rect.lo());
        let zmax = Self::interleave_u128(&self.universe, rect.hi());
        if total <= 64 {
            Some(Box::new(ZRegionSeeker64 {
                zmin: zmin as u64,
                zmax: zmax as u64,
                low_masks: low_masks.iter().map(|&m| m as u64).collect(),
                total,
            }))
        } else {
            Some(Box::new(ZRegionSeeker128 {
                zmin,
                zmax,
                low_masks,
                total,
            }))
        }
    }
}

/// The Z curve's precomputed BIGMIN state for one query rectangle,
/// monomorphized per machine word: `u64` arithmetic when the key width fits
/// one word (the common subscription shapes), `u128` otherwise.
///
/// The walk does not visit every bit: positions where the key and both
/// corner codes agree are skipped wholesale by jumping straight to the next
/// disagreeing bit with a `leading_zeros` count, so a seek costs a handful
/// of iterations (bounded by the number of corner-code refinements, not by
/// `d·k`).
macro_rules! define_z_seeker {
    ($name:ident, $int:ty) => {
        #[derive(Debug)]
        struct $name {
            zmin: $int,
            zmax: $int,
            /// `low_masks[j]`: the bits of bit `j`'s dimension strictly
            /// below position `j` — precomputed so the walk does no
            /// dimension arithmetic (in particular no integer modulo) per
            /// visited bit.
            low_masks: Vec<$int>,
            total: u32,
        }

        impl RegionSeeker for $name {
            /// The classic BIGMIN bit-walk (Tropf–Herzog, generalized to `d`
            /// dimensions): the smallest Z key at-or-after `key` whose cell
            /// lies in the rectangle, without touching the decomposition at
            /// all and without allocating (the returned key is inline).
            // acd-lint: hot
            fn seek(&self, key: &Key) -> Option<Key> {
                let total = self.total;
                debug_assert_eq!(key.bits(), total);
                let k = key.to_u128()? as $int;
                // zmin/zmax are the Z codes of the smallest/largest in-rect
                // cells of the still-active subtree.
                let mut zmin = self.zmin;
                let mut zmax = self.zmax;
                let mut bigmin: Option<$int> = None;
                // Bit positions not yet decided (all positions below the
                // last processed one).
                let mut pending: $int = if total >= <$int>::BITS {
                    <$int>::MAX
                } else {
                    ((1 as $int) << total) - 1
                };
                loop {
                    // Bits where the key escapes [zmin, zmax]'s shared
                    // pattern; positions where all three agree need no
                    // decision and are skipped in one jump.
                    let diff = ((k ^ zmin) | (k ^ zmax)) & pending;
                    if diff == 0 {
                        // Every remaining bit of the key stays within the
                        // per-dimension bounds: the key's own cell lies
                        // inside the rectangle.
                        return Some(key.clone());
                    }
                    let j = <$int>::BITS - 1 - diff.leading_zeros();
                    pending = if j == 0 { 0 } else { ((1 as $int) << j) - 1 };
                    let bit_k = (k >> j) & 1;
                    let bit_min = (zmin >> j) & 1;
                    let bit_max = (zmax >> j) & 1;
                    // Bits of the same dimension strictly below position j.
                    let low_mask = self.low_masks[j as usize];
                    match (bit_k, bit_min, bit_max) {
                        (0, 0, 1) => {
                            // The box spans both halves of this dimension
                            // while the key stays in the lower one: remember
                            // the smallest upper-half candidate, then
                            // continue in the lower half.
                            bigmin = Some((zmin & !low_mask) | ((1 as $int) << j));
                            zmax = (zmax | low_mask) & !((1 as $int) << j);
                        }
                        (0, 1, 1) => {
                            // The whole remaining box lies above the key.
                            return Some(Key::from_u128(zmin as u128, total));
                        }
                        (1, 0, 0) => {
                            // The whole remaining box lies below the key;
                            // the saved candidate (if any) is the answer.
                            return bigmin.map(|v| Key::from_u128(v as u128, total));
                        }
                        (1, 0, 1) => {
                            // Key is in the upper half: restrict the box.
                            zmin = (zmin & !low_mask) | ((1 as $int) << j);
                        }
                        // acd-lint: allow(panic-hygiene) the remaining bit patterns require zmin > zmax at the deciding bit, which KeyRange ordering excludes
                        _ => unreachable!("zmin > zmax is impossible for a valid rectangle"),
                    }
                }
            }
        }
    };
}

define_z_seeker!(ZRegionSeeker64, u64);
define_z_seeker!(ZRegionSeeker128, u128);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::StandardCube;

    fn curve(d: usize, k: u32) -> ZCurve {
        ZCurve::new(Universe::new(d, k).unwrap())
    }

    #[test]
    fn paper_example_3_5_gives_27() {
        let c = curve(2, 3);
        let key = c.key_of_point(&Point::new(vec![3, 5]).unwrap()).unwrap();
        assert_eq!(key.to_u128(), Some(27));
    }

    #[test]
    fn two_dim_keys_follow_z_pattern() {
        // In a 2x2 universe, the Z curve visits (0,0), (0,1), (1,0), (1,1)
        // in the order 0, 1, 2, 3 with dimension-0 bits ahead of dimension-1
        // bits.
        let c = curve(2, 1);
        let key = |x: u64, y: u64| {
            c.key_of_point(&Point::new(vec![x, y]).unwrap())
                .unwrap()
                .to_u128()
                .unwrap()
        };
        assert_eq!(key(0, 0), 0);
        assert_eq!(key(0, 1), 1);
        assert_eq!(key(1, 0), 2);
        assert_eq!(key(1, 1), 3);
    }

    #[test]
    fn encode_decode_round_trip_exhaustive_small() {
        for (d, k) in [(1usize, 4u32), (2, 3), (3, 2)] {
            let c = curve(d, k);
            let side = 1u64 << k;
            let total = side.pow(d as u32);
            let mut seen = std::collections::BTreeSet::new();
            for idx in 0..total {
                // Enumerate all points of the universe.
                let mut coords = vec![0u64; d];
                let mut rem = idx;
                for coord in coords.iter_mut() {
                    *coord = rem % side;
                    rem /= side;
                }
                let p = Point::new(coords).unwrap();
                let key = c.key_of_point(&p).unwrap();
                assert_eq!(c.point_of_key(&key).unwrap(), p);
                seen.insert(key.to_u128().unwrap());
            }
            assert_eq!(seen.len() as u64, total, "keys must be a bijection");
        }
    }

    #[test]
    fn keys_reject_wrong_inputs() {
        let c = curve(2, 4);
        assert!(c.key_of_point(&Point::new(vec![16, 0]).unwrap()).is_err());
        assert!(c.key_of_point(&Point::new(vec![1]).unwrap()).is_err());
        let wrong_width = Key::zero(9);
        assert!(c.point_of_key(&wrong_width).is_err());
    }

    #[test]
    fn cube_key_range_covers_exactly_the_cube() {
        let u = Universe::new(2, 3).unwrap();
        let c = ZCurve::new(u.clone());
        let cube = StandardCube::new(&u, vec![4, 2], 1).unwrap();
        let range = c.cube_key_range(&cube).unwrap();
        assert_eq!(range.len(), Some(4));
        // Every cell inside the cube maps into the range; every cell outside
        // does not.
        for x in 0..8u64 {
            for y in 0..8u64 {
                let p = Point::new(vec![x, y]).unwrap();
                let key = c.key_of_point(&p).unwrap();
                assert_eq!(
                    range.contains(&key),
                    cube.contains_coords(&[x, y]),
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn whole_universe_cube_is_the_full_key_range() {
        let u = Universe::new(3, 2).unwrap();
        let c = ZCurve::new(u.clone());
        let cube = StandardCube::whole_universe(&u);
        let range = c.cube_key_range(&cube).unwrap();
        assert_eq!(range.lo().to_u128(), Some(0));
        assert_eq!(range.hi().to_u128(), Some(63));
    }

    #[test]
    fn high_dimensional_keys_round_trip() {
        // 20 dimensions x 8 bits = 160-bit keys: exercise the multi-word path.
        let u = Universe::new(20, 8).unwrap();
        let c = ZCurve::new(u.clone());
        let p = Point::new((0..20).map(|i| (i * 13 + 7) % 256).collect()).unwrap();
        let key = c.key_of_point(&p).unwrap();
        assert_eq!(key.bits(), 160);
        assert_eq!(c.point_of_key(&key).unwrap(), p);
    }

    #[test]
    fn children_in_key_order_matches_the_generic_construction() {
        // The direct Morton construction must agree with the generic
        // encode-and-sort path for cubes of every size and position.
        for (d, k) in [(2usize, 4u32), (3, 3), (4, 2)] {
            let u = Universe::new(d, k).unwrap();
            let c = ZCurve::new(u.clone());
            let mut state = 0x5eedu64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for exp in 1..=k {
                for _ in 0..8 {
                    let side = 1u64 << exp;
                    let corner: Vec<u64> = (0..d)
                        .map(|_| (next() % (1u64 << (k - exp))) * side)
                        .collect();
                    let cube = StandardCube::new(&u, corner, exp).unwrap();
                    let fast = c.children_in_key_order(&cube);
                    let mut generic: Vec<(StandardCube, KeyRange)> = cube
                        .children()
                        .unwrap()
                        .into_iter()
                        .map(|child| {
                            let range = c.cube_key_range(&child).unwrap();
                            (child, range)
                        })
                        .collect();
                    generic.sort_by(|a, b| a.1.lo().cmp(b.1.lo()));
                    assert_eq!(fast, generic, "d={d} k={k} cube {cube}");
                }
            }
        }
    }

    #[test]
    fn seek_in_rect_matches_brute_force_exhaustively() {
        // Small universes: compare the BIGMIN bit-walk against a brute-force
        // scan over every (rect, key) pair.
        for (d, k) in [(2usize, 3u32), (3, 2)] {
            let u = Universe::new(d, k).unwrap();
            let c = ZCurve::new(u.clone());
            let side = 1u64 << k;
            let total_cells = side.pow(d as u32);
            let total_bits = u.key_bits();
            let mut state = 0x9e3779b97f4a7c15u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..25 {
                let mut lo = Vec::with_capacity(d);
                let mut hi = Vec::with_capacity(d);
                for _ in 0..d {
                    let (a, b) = (next() % side, next() % side);
                    lo.push(a.min(b));
                    hi.push(a.max(b));
                }
                let rect = Rect::new(lo, hi).unwrap();
                // Brute force: sorted list of in-rect keys.
                let mut in_rect: Vec<u128> = Vec::new();
                for idx in 0..total_cells {
                    let mut coords = vec![0u64; d];
                    let mut rem = idx;
                    for coord in coords.iter_mut() {
                        *coord = rem % side;
                        rem /= side;
                    }
                    if rect.contains_coords(&coords) {
                        let key = c.key_of_point(&Point::new(coords).unwrap()).unwrap();
                        in_rect.push(key.to_u128().unwrap());
                    }
                }
                in_rect.sort_unstable();
                let seeker = c
                    .region_seeker(&rect)
                    .expect("u128-sized universe supports the fast path");
                for key_val in 0..(1u128 << total_bits) {
                    let key = Key::from_u128(key_val, total_bits);
                    let got = seeker.seek(&key).map(|k| k.to_u128().unwrap());
                    let expected = in_rect.iter().copied().find(|&v| v >= key_val);
                    assert_eq!(got, expected, "d={d} k={k} rect {rect} key {key_val}");
                }
            }
        }
    }

    #[test]
    fn seek_in_rect_agrees_with_the_cube_stream() {
        // Larger universe spot-check: the arithmetic fast path and the
        // generic decomposition stream must land on the same key.
        use crate::decompose::CubeStream;
        let u = Universe::new(3, 5).unwrap();
        let c = ZCurve::new(u.clone());
        let rect = Rect::new(vec![3, 9, 17], vec![25, 30, 28]).unwrap();
        let total_bits = u.key_bits();
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let seeker = c.region_seeker(&rect).expect("fast path supported");
        for _ in 0..200 {
            let key = Key::from_u128((next() as u128) % (1u128 << total_bits), total_bits);
            let fast = seeker.seek(&key).map(|k| k.to_u128().unwrap());
            let mut stream = CubeStream::new(&c, &rect).unwrap();
            stream.seek(&key);
            let generic = stream.next_cube().map(|(_, range)| {
                if range.lo() >= &key {
                    range.lo().to_u128().unwrap()
                } else {
                    key.to_u128().unwrap()
                }
            });
            assert_eq!(fast, generic, "key {key}");
        }
    }

    #[test]
    fn locality_of_first_dimension_is_most_significant() {
        // Points that differ in the most significant bit of dimension 0 are
        // far apart in key space.
        let c = curve(2, 4);
        let a = c
            .key_of_point(&Point::new(vec![0, 0]).unwrap())
            .unwrap()
            .to_u128()
            .unwrap();
        let b = c
            .key_of_point(&Point::new(vec![8, 0]).unwrap())
            .unwrap()
            .to_u128()
            .unwrap();
        assert_eq!(b - a, 128);
    }
}
