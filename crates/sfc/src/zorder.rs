//! The Z-order (Morton) curve.
//!
//! The key of a cell is obtained by interleaving the bits of its coordinates,
//! most significant bit first, cycling through the dimensions: the top bit of
//! the key is the top bit of dimension 0, followed by the top bit of
//! dimension 1, and so on. This matches the paper's example (Section 5):
//! the cell with coordinates `(3, 5) = (011, 101)` has key `011011 = 27`
//! when interleaving starts with the first dimension's most significant bit —
//! i.e. the key bits are `x1[2] x2[2] x1[1] x2[1] x1[0] x2[0]` read as
//! `0·1 1·0 1·1`.

use crate::curve::{CurveKind, SpaceFillingCurve};
use crate::key::Key;
use crate::universe::{Point, Universe};
use crate::Result;

/// The Z-order (Morton) space filling curve over a fixed universe.
///
/// # Example
///
/// ```
/// use acd_sfc::{Universe, Point, ZCurve, SpaceFillingCurve};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let curve = ZCurve::new(Universe::new(2, 3)?);
/// let key = curve.key_of_point(&Point::new(vec![3, 5])?)?;
/// assert_eq!(key.to_u128(), Some(27)); // the paper's worked example
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZCurve {
    universe: Universe,
}

impl ZCurve {
    /// Creates a Z-order curve over `universe`.
    pub fn new(universe: Universe) -> Self {
        ZCurve { universe }
    }

    /// Interleaves the coordinate bits of `coords` into a key.
    ///
    /// Bit layout: for bit position `b` from most significant (`k−1`) down to
    /// 0, and for each dimension `0..d` in order, the next key bit is bit `b`
    /// of that dimension's coordinate.
    pub(crate) fn interleave(universe: &Universe, coords: &[u64]) -> Key {
        let d = universe.dims();
        let k = universe.bits_per_dim();
        let mut key = Key::zero(universe.key_bits());
        // Key bit index counted from the most significant side.
        for level in 0..k {
            let coord_bit = k - 1 - level;
            for (dim, &c) in coords.iter().enumerate() {
                if (c >> coord_bit) & 1 == 1 {
                    // Position from the MSB: level*d + dim; convert to
                    // LSB-based index for Key::set_bit.
                    let from_msb = level * d as u32 + dim as u32;
                    let index = universe.key_bits() - 1 - from_msb;
                    key.set_bit(index, true);
                }
            }
        }
        key
    }

    /// Reverses [`interleave`](Self::interleave).
    pub(crate) fn deinterleave(universe: &Universe, key: &Key) -> Vec<u64> {
        let d = universe.dims();
        let k = universe.bits_per_dim();
        let mut coords = vec![0u64; d];
        for level in 0..k {
            let coord_bit = k - 1 - level;
            for (dim, coord) in coords.iter_mut().enumerate() {
                let from_msb = level * d as u32 + dim as u32;
                let index = universe.key_bits() - 1 - from_msb;
                if key.bit(index) {
                    *coord |= 1 << coord_bit;
                }
            }
        }
        coords
    }
}

impl SpaceFillingCurve for ZCurve {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn kind(&self) -> CurveKind {
        CurveKind::Z
    }

    fn key_of_point(&self, point: &Point) -> Result<Key> {
        self.universe.validate_point(point)?;
        Ok(Self::interleave(&self.universe, point.coords()))
    }

    fn point_of_key(&self, key: &Key) -> Result<Point> {
        key.expect_bits(self.universe.key_bits())?;
        Ok(Point::from_vec(Self::deinterleave(&self.universe, key)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::StandardCube;

    fn curve(d: usize, k: u32) -> ZCurve {
        ZCurve::new(Universe::new(d, k).unwrap())
    }

    #[test]
    fn paper_example_3_5_gives_27() {
        let c = curve(2, 3);
        let key = c.key_of_point(&Point::new(vec![3, 5]).unwrap()).unwrap();
        assert_eq!(key.to_u128(), Some(27));
    }

    #[test]
    fn two_dim_keys_follow_z_pattern() {
        // In a 2x2 universe, the Z curve visits (0,0), (0,1), (1,0), (1,1)
        // in the order 0, 1, 2, 3 with dimension-0 bits ahead of dimension-1
        // bits.
        let c = curve(2, 1);
        let key = |x: u64, y: u64| {
            c.key_of_point(&Point::new(vec![x, y]).unwrap())
                .unwrap()
                .to_u128()
                .unwrap()
        };
        assert_eq!(key(0, 0), 0);
        assert_eq!(key(0, 1), 1);
        assert_eq!(key(1, 0), 2);
        assert_eq!(key(1, 1), 3);
    }

    #[test]
    fn encode_decode_round_trip_exhaustive_small() {
        for (d, k) in [(1usize, 4u32), (2, 3), (3, 2)] {
            let c = curve(d, k);
            let side = 1u64 << k;
            let total = side.pow(d as u32);
            let mut seen = std::collections::BTreeSet::new();
            for idx in 0..total {
                // Enumerate all points of the universe.
                let mut coords = vec![0u64; d];
                let mut rem = idx;
                for coord in coords.iter_mut() {
                    *coord = rem % side;
                    rem /= side;
                }
                let p = Point::new(coords).unwrap();
                let key = c.key_of_point(&p).unwrap();
                assert_eq!(c.point_of_key(&key).unwrap(), p);
                seen.insert(key.to_u128().unwrap());
            }
            assert_eq!(seen.len() as u64, total, "keys must be a bijection");
        }
    }

    #[test]
    fn keys_reject_wrong_inputs() {
        let c = curve(2, 4);
        assert!(c.key_of_point(&Point::new(vec![16, 0]).unwrap()).is_err());
        assert!(c.key_of_point(&Point::new(vec![1]).unwrap()).is_err());
        let wrong_width = Key::zero(9);
        assert!(c.point_of_key(&wrong_width).is_err());
    }

    #[test]
    fn cube_key_range_covers_exactly_the_cube() {
        let u = Universe::new(2, 3).unwrap();
        let c = ZCurve::new(u.clone());
        let cube = StandardCube::new(&u, vec![4, 2], 1).unwrap();
        let range = c.cube_key_range(&cube).unwrap();
        assert_eq!(range.len(), Some(4));
        // Every cell inside the cube maps into the range; every cell outside
        // does not.
        for x in 0..8u64 {
            for y in 0..8u64 {
                let p = Point::new(vec![x, y]).unwrap();
                let key = c.key_of_point(&p).unwrap();
                assert_eq!(
                    range.contains(&key),
                    cube.contains_coords(&[x, y]),
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn whole_universe_cube_is_the_full_key_range() {
        let u = Universe::new(3, 2).unwrap();
        let c = ZCurve::new(u.clone());
        let cube = StandardCube::whole_universe(&u);
        let range = c.cube_key_range(&cube).unwrap();
        assert_eq!(range.lo().to_u128(), Some(0));
        assert_eq!(range.hi().to_u128(), Some(63));
    }

    #[test]
    fn high_dimensional_keys_round_trip() {
        // 20 dimensions x 8 bits = 160-bit keys: exercise the multi-word path.
        let u = Universe::new(20, 8).unwrap();
        let c = ZCurve::new(u.clone());
        let p = Point::new((0..20).map(|i| (i * 13 + 7) % 256).collect()).unwrap();
        let key = c.key_of_point(&p).unwrap();
        assert_eq!(key.bits(), 160);
        assert_eq!(c.point_of_key(&key).unwrap(), p);
    }

    #[test]
    fn locality_of_first_dimension_is_most_significant() {
        // Points that differ in the most significant bit of dimension 0 are
        // far apart in key space.
        let c = curve(2, 4);
        let a = c
            .key_of_point(&Point::new(vec![0, 0]).unwrap())
            .unwrap()
            .to_u128()
            .unwrap();
        let b = c
            .key_of_point(&Point::new(vec![8, 0]).unwrap())
            .unwrap()
            .to_u128()
            .unwrap();
        assert_eq!(b - a, 128);
    }
}
