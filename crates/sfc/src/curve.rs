//! The [`SpaceFillingCurve`] trait shared by the Z-order, Hilbert and
//! Gray-code curves.
//!
//! All supported curves recursively bisect the universe, which gives them the
//! crucial property the paper relies on (Fact 2.1): every standard cube is a
//! single contiguous run of keys, and that run is exactly the set of keys that
//! share the cube's `d·ℓ`-bit prefix. The trait therefore provides a generic
//! [`cube_key_range`](SpaceFillingCurve::cube_key_range) built on top of each
//! curve's point encoder.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cube::StandardCube;
use crate::key::{Key, KeyRange};
use crate::rect::Rect;
use crate::universe::{Point, Universe};
use crate::Result;

/// A space filling curve over a fixed [`Universe`].
///
/// Implementations must be *recursive* curves: the key of a cell inside a
/// standard cube at level `ℓ` must share its most significant `d·ℓ` bits with
/// every other cell of that cube. The Z-order, Hilbert and Gray-code curves
/// all have this property.
pub trait SpaceFillingCurve: fmt::Debug + Send + Sync {
    /// The universe this curve is defined over.
    fn universe(&self) -> &Universe;

    /// Which member of the curve family this is.
    fn kind(&self) -> CurveKind;

    /// Encodes a cell into its `d·k`-bit key.
    ///
    /// # Errors
    ///
    /// Returns an error if the point does not belong to the universe.
    fn key_of_point(&self, point: &Point) -> Result<Key>;

    /// Decodes a key back into the cell it names.
    ///
    /// # Errors
    ///
    /// Returns an error if the key has the wrong bit width for the universe.
    fn point_of_key(&self, key: &Key) -> Result<Point>;

    /// The contiguous key range occupied by a standard cube (Fact 2.1).
    ///
    /// The default implementation encodes the cube's lower corner and derives
    /// the range from the shared `d·level` bit prefix; this is correct for
    /// every recursive curve.
    ///
    /// # Errors
    ///
    /// Returns an error if the cube does not belong to the universe.
    fn cube_key_range(&self, cube: &StandardCube) -> Result<KeyRange> {
        let low_bits = cube.side_exp() * self.universe().dims() as u32;
        let corner_key = self.key_of_point(&cube.corner_point())?;
        let lo = corner_key.with_low_bits_cleared(low_bits);
        let hi = corner_key.with_low_bits_set(low_bits);
        KeyRange::new(lo, hi)
    }

    /// The `2^d` children of a standard cube together with their key ranges,
    /// sorted by increasing key order (the order the curve visits them).
    ///
    /// This is the primitive that lets a region decomposition be *re-anchored*
    /// at an arbitrary key: descending from the universe cube and always
    /// picking the first child whose range ends at-or-after the target key
    /// reaches the decomposition's next cube without enumerating anything
    /// before it (see [`crate::decompose::CubeStream::seek`]).
    ///
    /// The default implementation encodes each child's corner
    /// ([`key_of_point`](Self::key_of_point)) and sorts; curves with a known
    /// child visiting order (the Z curve) override it with a direct
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics if the cube is a single cell (no children) or does not belong
    /// to this curve's universe.
    fn children_in_key_order(&self, cube: &StandardCube) -> Vec<(StandardCube, KeyRange)> {
        let children = cube
            .children()
            .expect("children_in_key_order called on a single-cell cube");
        let mut out: Vec<(StandardCube, KeyRange)> = children
            .into_iter()
            .map(|child| {
                let range = self
                    .cube_key_range(&child)
                    .expect("child of an in-universe cube is in the universe");
                (child, range)
            })
            .collect();
        out.sort_by(|a, b| a.1.lo().cmp(b.1.lo()));
        out
    }

    /// Curve-specific accelerated region seeking: returns a reusable
    /// [`RegionSeeker`] for `rect`, or `None` when this curve (or this
    /// universe size) has no arithmetic fast path — callers then fall back
    /// to the seekable [`CubeStream`](crate::decompose::CubeStream) /
    /// [`RunStream`](crate::runs::RunStream) walk of the decomposition.
    ///
    /// The Z curve overrides this with the classic BIGMIN bit-walk
    /// (O(`d·k`) integer operations per seek, with the rectangle's corner
    /// codes and dimension masks precomputed once here) whenever the key
    /// width fits 128 bits; it is the engine behind the populated-key query
    /// sweep's gap jumps.
    fn region_seeker(&self, rect: &Rect) -> Option<Box<dyn RegionSeeker>> {
        let _ = rect;
        None
    }

    /// Human readable name of the curve.
    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

/// A reusable handle answering "what is the smallest key at-or-after `key`
/// whose cell lies inside the rectangle this seeker was built for?" —
/// created once per query region via
/// [`SpaceFillingCurve::region_seeker`] so that any per-region
/// precomputation is paid once, not per seek.
pub trait RegionSeeker: fmt::Debug {
    /// The smallest in-region key at-or-after `key`, or `None` if no such
    /// key exists. The result equals `key` exactly when `key`'s own cell
    /// lies inside the region.
    fn seek(&self, key: &Key) -> Option<Key>;
}

/// Identifies one of the supported curve families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurveKind {
    /// The Z-order (Morton) curve: bit interleaving.
    Z,
    /// The Hilbert curve.
    Hilbert,
    /// The Gray-code curve.
    Gray,
}

impl CurveKind {
    /// Human readable name.
    pub fn name(self) -> &'static str {
        match self {
            CurveKind::Z => "z-order",
            CurveKind::Hilbert => "hilbert",
            CurveKind::Gray => "gray-code",
        }
    }

    /// All supported curve kinds.
    pub fn all() -> [CurveKind; 3] {
        [CurveKind::Z, CurveKind::Hilbert, CurveKind::Gray]
    }

    /// Constructs a boxed curve of this kind over `universe`.
    pub fn build(self, universe: Universe) -> Box<dyn SpaceFillingCurve> {
        match self {
            CurveKind::Z => Box::new(crate::zorder::ZCurve::new(universe)),
            CurveKind::Hilbert => Box::new(crate::hilbert::HilbertCurve::new(universe)),
            CurveKind::Gray => Box::new(crate::gray::GrayCurve::new(universe)),
        }
    }
}

impl fmt::Display for CurveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CurveKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "z" | "z-order" | "morton" | "zorder" => Ok(CurveKind::Z),
            "hilbert" => Ok(CurveKind::Hilbert),
            "gray" | "gray-code" | "graycode" => Ok(CurveKind::Gray),
            other => Err(format!("unknown curve kind: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_kind_parsing_and_display() {
        assert_eq!("z".parse::<CurveKind>().unwrap(), CurveKind::Z);
        assert_eq!("Morton".parse::<CurveKind>().unwrap(), CurveKind::Z);
        assert_eq!("hilbert".parse::<CurveKind>().unwrap(), CurveKind::Hilbert);
        assert_eq!("gray".parse::<CurveKind>().unwrap(), CurveKind::Gray);
        assert!("peano".parse::<CurveKind>().is_err());
        assert_eq!(CurveKind::Hilbert.to_string(), "hilbert");
        assert_eq!(CurveKind::all().len(), 3);
    }

    #[test]
    fn build_produces_matching_kind() {
        let u = Universe::new(2, 4).unwrap();
        for kind in CurveKind::all() {
            let curve = kind.build(u.clone());
            assert_eq!(curve.kind(), kind);
            assert_eq!(curve.universe(), &u);
            assert_eq!(curve.name(), kind.name());
        }
    }

    #[test]
    fn children_in_key_order_partition_the_parent_range_on_every_curve() {
        let u = Universe::new(3, 3).unwrap();
        for kind in CurveKind::all() {
            let curve = kind.build(u.clone());
            for (corner, exp) in [
                (vec![0, 0, 0], 3u32),
                (vec![4, 0, 4], 2),
                (vec![2, 6, 0], 1),
            ] {
                let cube = StandardCube::new(&u, corner, exp).unwrap();
                let parent = curve.cube_key_range(&cube).unwrap();
                let children = curve.children_in_key_order(&cube);
                assert_eq!(children.len(), 8, "{kind:?}");
                // Ranges are sorted, contiguous and exactly tile the parent.
                assert_eq!(children[0].1.lo(), parent.lo());
                assert_eq!(children.last().unwrap().1.hi(), parent.hi());
                for w in children.windows(2) {
                    assert!(
                        w[0].1.is_adjacent_to(&w[1].1),
                        "{kind:?}: {} then {}",
                        w[0].1,
                        w[1].1
                    );
                }
                // Each pair (cube, range) is consistent.
                for (child, range) in &children {
                    assert_eq!(&curve.cube_key_range(child).unwrap(), range);
                    assert!(cube.contains_cube(child));
                }
            }
        }
    }
}
