//! Greedy decomposition of a region into a minimum number of standard cubes.
//!
//! The paper's Lemma 3.3 proves that the greedy strategy — repeatedly carving
//! out the largest standard cube that fits inside the remaining region —
//! yields a partition of the region into a *minimum* number of standard
//! cubes. For axis-aligned rectangles the greedy partition can be computed
//! top-down over the implicit quadtree of the universe: starting from the
//! whole-universe cube, a standard cube that is fully inside the rectangle is
//! emitted, a cube that is disjoint from the rectangle is discarded, and a
//! cube that partially overlaps is split into its `2^d` children.
//!
//! This module provides the generic rectangle decomposition used for
//! verification, run counting (Figure 2) and small universes; the
//! specialized, lazily evaluated decomposition of *extremal* rectangles
//! (Lemma 3.4 / Algorithms 1–3), which the covering index uses on its hot
//! path, lives in [`crate::extremal`].

use crate::cube::StandardCube;
use crate::rect::Rect;
use crate::universe::Universe;
use crate::Result;

/// Decomposes an axis-aligned rectangle into the minimum number of standard
/// cubes (the greedy partition of Lemma 3.3), returned in no particular
/// order.
///
/// # Errors
///
/// Returns an error if the rectangle does not lie inside the universe.
///
/// # Complexity
///
/// The output size equals `cubes(rect)`, which for a `d`-dimensional
/// rectangle is proportional to its surface measured in cells (Section 4);
/// callers that only need the largest cubes should use
/// [`crate::extremal::ExtremalCubes`] instead, which enumerates lazily.
///
/// # Example
///
/// ```
/// use acd_sfc::{Universe, Rect, decompose::decompose_rect};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let u = Universe::new(2, 4)?;
/// // A 3x2 rectangle decomposes into one 2x2 cube plus two unit cells.
/// let rect = Rect::new(vec![0, 0], vec![2, 1])?;
/// let cubes = decompose_rect(&u, &rect)?;
/// assert_eq!(cubes.len(), 3);
/// let total: u128 = cubes.iter().map(|c| c.volume().unwrap()).sum();
/// assert_eq!(total, rect.volume().unwrap());
/// # Ok(())
/// # }
/// ```
pub fn decompose_rect(universe: &Universe, rect: &Rect) -> Result<Vec<StandardCube>> {
    rect.validate_in(universe)?;
    let mut out = Vec::new();
    let root = StandardCube::whole_universe(universe);
    decompose_into(rect, &root, &mut out);
    Ok(out)
}

fn decompose_into(rect: &Rect, cube: &StandardCube, out: &mut Vec<StandardCube>) {
    let cube_rect = cube.to_rect();
    if !rect.overlaps(&cube_rect) {
        return;
    }
    if rect.contains_rect(&cube_rect) {
        out.push(cube.clone());
        return;
    }
    // Partial overlap: the cube cannot be a cell (a cell either overlaps
    // fully or not at all), so children always exist.
    let children = cube
        .children()
        .expect("partially overlapping cube has side > 1");
    for child in children {
        decompose_into(rect, &child, out);
    }
}

/// The number of standard cubes in the greedy (minimum) partition of `rect`,
/// i.e. the paper's `cubes(rect)`.
///
/// # Errors
///
/// Returns an error if the rectangle does not lie inside the universe.
pub fn count_cubes(universe: &Universe, rect: &Rect) -> Result<u64> {
    rect.validate_in(universe)?;
    let root = StandardCube::whole_universe(universe);
    Ok(count_into(rect, &root))
}

fn count_into(rect: &Rect, cube: &StandardCube) -> u64 {
    let cube_rect = cube.to_rect();
    if !rect.overlaps(&cube_rect) {
        return 0;
    }
    if rect.contains_rect(&cube_rect) {
        return 1;
    }
    cube.children()
        .expect("partially overlapping cube has side > 1")
        .iter()
        .map(|child| count_into(rect, child))
        .sum()
}

/// Groups a set of standard cubes by `side_exp` (the paper's `D_i` sets) and
/// returns `(side_exp, count)` pairs sorted by decreasing side length.
pub fn histogram_by_level(cubes: &[StandardCube]) -> Vec<(u32, u64)> {
    use std::collections::BTreeMap;
    let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
    for c in cubes {
        *hist.entry(c.side_exp()).or_insert(0) += 1;
    }
    hist.into_iter().rev().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Point;

    fn universe(d: usize, k: u32) -> Universe {
        Universe::new(d, k).unwrap()
    }

    /// Checks that a decomposition exactly tiles the rectangle: disjoint
    /// cubes whose union is the rectangle.
    fn assert_exact_tiling(u: &Universe, rect: &Rect, cubes: &[StandardCube]) {
        let total: u128 = cubes.iter().map(|c| c.volume().unwrap()).sum();
        assert_eq!(total, rect.volume().unwrap(), "volumes must add up");
        for c in cubes {
            assert!(rect.contains_rect(&c.to_rect()), "{c} sticks out of {rect}");
        }
        for (i, a) in cubes.iter().enumerate() {
            for b in cubes.iter().skip(i + 1) {
                assert!(!a.to_rect().overlaps(&b.to_rect()), "{a} and {b} overlap");
            }
        }
        // Spot-check membership for small universes.
        if u.volume().unwrap_or(u128::MAX) <= 4096 {
            let side = u.side();
            let d = u.dims();
            let total_cells = side.pow(d as u32);
            for idx in 0..total_cells {
                let mut coords = vec![0u64; d];
                let mut rem = idx;
                for coord in coords.iter_mut() {
                    *coord = rem % side;
                    rem /= side;
                }
                let inside_rect = rect.contains_coords(&coords);
                let inside_cubes = cubes.iter().any(|c| c.contains_coords(&coords));
                assert_eq!(inside_rect, inside_cubes, "cell {coords:?}");
            }
        }
    }

    #[test]
    fn aligned_square_is_a_single_cube() {
        let u = universe(2, 8);
        // The paper's first example region of Figure 2: a 256x256 square
        // aligned at the origin is exactly one standard cube.
        let rect = Rect::new(vec![0, 0], vec![255, 255]).unwrap();
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].side_exp(), 8);
    }

    #[test]
    fn figure_2_example_257_square_cubes() {
        // The paper's second example region of Figure 2: a 257x257 extremal
        // square consists of one 256x256 standard cube plus an L-shaped strip
        // of width 1 (513 unit cells), i.e. 514 standard cubes. After merging
        // adjacent key ranges these collapse to the 385 runs quoted in the
        // paper (verified in the `runs` module).
        let u = universe(2, 10);
        let rect = Rect::new(vec![1023 - 256, 1023 - 256], vec![1023, 1023]).unwrap();
        assert_eq!(rect.side_lengths(), vec![257, 257]);
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_eq!(cubes.len(), 514);
        let hist = histogram_by_level(&cubes);
        assert_eq!(hist, vec![(8, 1), (0, 513)]);
        assert_exact_tiling(&u, &rect, &cubes);
    }

    #[test]
    fn three_by_two_decomposition() {
        let u = universe(2, 4);
        let rect = Rect::new(vec![0, 0], vec![2, 1]).unwrap();
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_eq!(cubes.len(), 3);
        assert_exact_tiling(&u, &rect, &cubes);
        assert_eq!(count_cubes(&u, &rect).unwrap(), 3);
    }

    #[test]
    fn single_cell_rectangles() {
        let u = universe(3, 4);
        let p = Point::new(vec![7, 11, 2]).unwrap();
        let rect = Rect::from_point(&p);
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].volume(), Some(1));
    }

    #[test]
    fn full_universe_is_one_cube() {
        let u = universe(3, 3);
        let rect = Rect::full(&u);
        assert_eq!(count_cubes(&u, &rect).unwrap(), 1);
    }

    #[test]
    fn random_rectangles_tile_exactly() {
        // Deterministic pseudo-random rectangles in a small universe.
        let u = universe(2, 5);
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let (a, b) = (next() % 32, next() % 32);
            let (c, d) = (next() % 32, next() % 32);
            let rect = Rect::new(vec![a.min(b), c.min(d)], vec![a.max(b), c.max(d)]).unwrap();
            let cubes = decompose_rect(&u, &rect).unwrap();
            assert_exact_tiling(&u, &rect, &cubes);
            assert_eq!(count_cubes(&u, &rect).unwrap(), cubes.len() as u64);
        }
    }

    #[test]
    fn decomposition_is_greedy_optimal_for_known_cases() {
        let u = universe(2, 4);
        // An 8x8 aligned block: exactly 1 cube even though it could also be
        // tiled by 64 cells.
        let rect = Rect::new(vec![8, 0], vec![15, 7]).unwrap();
        assert_eq!(count_cubes(&u, &rect).unwrap(), 1);
        // An 8x7 block (one row short of an aligned 8x8): the greedy
        // partition uses two 4x4 cubes, four 2x2 cubes and eight unit cells.
        let rect = Rect::new(vec![8, 0], vec![15, 6]).unwrap();
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_exact_tiling(&u, &rect, &cubes);
        assert_eq!(cubes.len(), 2 + 4 + 8);
        assert_eq!(histogram_by_level(&cubes), vec![(2, 2), (1, 4), (0, 8)]);
    }

    #[test]
    fn histogram_orders_levels_by_decreasing_size() {
        let u = universe(2, 4);
        let rect = Rect::new(vec![0, 0], vec![6, 6]).unwrap();
        let cubes = decompose_rect(&u, &rect).unwrap();
        let hist = histogram_by_level(&cubes);
        let exps: Vec<u32> = hist.iter().map(|&(e, _)| e).collect();
        let mut sorted = exps.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(exps, sorted);
        let total: u64 = hist.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, cubes.len() as u64);
    }

    #[test]
    fn out_of_universe_rectangle_rejected() {
        let u = universe(2, 3);
        let rect = Rect::new(vec![0, 0], vec![8, 3]).unwrap();
        assert!(decompose_rect(&u, &rect).is_err());
        assert!(count_cubes(&u, &rect).is_err());
    }
}
