//! Greedy decomposition of a region into a minimum number of standard cubes.
//!
//! The paper's Lemma 3.3 proves that the greedy strategy — repeatedly carving
//! out the largest standard cube that fits inside the remaining region —
//! yields a partition of the region into a *minimum* number of standard
//! cubes. For axis-aligned rectangles the greedy partition can be computed
//! top-down over the implicit quadtree of the universe: starting from the
//! whole-universe cube, a standard cube that is fully inside the rectangle is
//! emitted, a cube that is disjoint from the rectangle is discarded, and a
//! cube that partially overlaps is split into its `2^d` children.
//!
//! This module provides the generic rectangle decomposition used for
//! verification, run counting (Figure 2) and small universes; the
//! specialized, lazily evaluated decomposition of *extremal* rectangles
//! (Lemma 3.4 / Algorithms 1–3), which the covering index uses on its hot
//! path, lives in [`crate::extremal`].

use crate::cube::StandardCube;
use crate::curve::SpaceFillingCurve;
use crate::key::{Key, KeyRange};
use crate::rect::Rect;
use crate::universe::Universe;
use crate::Result;

/// Decomposes an axis-aligned rectangle into the minimum number of standard
/// cubes (the greedy partition of Lemma 3.3), returned in no particular
/// order.
///
/// # Errors
///
/// Returns an error if the rectangle does not lie inside the universe.
///
/// # Complexity
///
/// The output size equals `cubes(rect)`, which for a `d`-dimensional
/// rectangle is proportional to its surface measured in cells (Section 4);
/// callers that only need the largest cubes should use
/// [`crate::extremal::ExtremalCubes`] instead, which enumerates lazily.
///
/// # Example
///
/// ```
/// use acd_sfc::{Universe, Rect, decompose::decompose_rect};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let u = Universe::new(2, 4)?;
/// // A 3x2 rectangle decomposes into one 2x2 cube plus two unit cells.
/// let rect = Rect::new(vec![0, 0], vec![2, 1])?;
/// let cubes = decompose_rect(&u, &rect)?;
/// assert_eq!(cubes.len(), 3);
/// let total: u128 = cubes.iter().map(|c| c.volume().unwrap()).sum();
/// assert_eq!(total, rect.volume().unwrap());
/// # Ok(())
/// # }
/// ```
pub fn decompose_rect(universe: &Universe, rect: &Rect) -> Result<Vec<StandardCube>> {
    rect.validate_in(universe)?;
    let mut out = Vec::new();
    let root = StandardCube::whole_universe(universe);
    decompose_into(rect, &root, &mut out);
    Ok(out)
}

fn decompose_into(rect: &Rect, cube: &StandardCube, out: &mut Vec<StandardCube>) {
    let cube_rect = cube.to_rect();
    if !rect.overlaps(&cube_rect) {
        return;
    }
    if rect.contains_rect(&cube_rect) {
        out.push(cube.clone());
        return;
    }
    // Partial overlap: the cube cannot be a cell (a cell either overlaps
    // fully or not at all), so children always exist.
    let children = cube
        .children()
        .expect("partially overlapping cube has side > 1");
    for child in children {
        decompose_into(rect, &child, out);
    }
}

/// The number of standard cubes in the greedy (minimum) partition of `rect`,
/// i.e. the paper's `cubes(rect)`.
///
/// # Errors
///
/// Returns an error if the rectangle does not lie inside the universe.
pub fn count_cubes(universe: &Universe, rect: &Rect) -> Result<u64> {
    rect.validate_in(universe)?;
    let root = StandardCube::whole_universe(universe);
    Ok(count_into(rect, &root))
}

fn count_into(rect: &Rect, cube: &StandardCube) -> u64 {
    let cube_rect = cube.to_rect();
    if !rect.overlaps(&cube_rect) {
        return 0;
    }
    if rect.contains_rect(&cube_rect) {
        return 1;
    }
    cube.children()
        .expect("partially overlapping cube has side > 1")
        .iter()
        .map(|child| count_into(rect, child))
        .sum()
}

/// Groups a set of standard cubes by `side_exp` (the paper's `D_i` sets) and
/// returns `(side_exp, count)` pairs sorted by decreasing side length.
pub fn histogram_by_level(cubes: &[StandardCube]) -> Vec<(u32, u64)> {
    use std::collections::BTreeMap;
    let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
    for c in cubes {
        *hist.entry(c.side_exp()).or_insert(0) += 1;
    }
    hist.into_iter().rev().collect()
}

/// A resumable stream over the greedy cube decomposition of a rectangle, in
/// *increasing key order* on a given curve, with the ability to
/// [`seek`](CubeStream::seek) forward past arbitrarily large stretches of the
/// decomposition in one step.
///
/// The stream walks the implicit `2^d`-ary tree of standard cubes
/// depth-first, visiting children in the curve's along-curve order
/// ([`SpaceFillingCurve::children_in_key_order`]); cubes fully inside the
/// rectangle are emitted, cubes disjoint from it are dropped, and partial
/// cubes are split. Because children are visited in key order, the emitted
/// cubes are exactly the greedy (minimum) partition of Lemma 3.3 sorted by
/// key range, and `seek(k)` can discard whole subtrees whose key ranges end
/// before `k` without ever materializing their cubes — the primitive the
/// populated-key query sweep is built on.
///
/// # Example
///
/// ```
/// use acd_sfc::{CubeStream, Key, Rect, Universe, ZCurve};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let u = Universe::new(2, 4)?;
/// let curve = ZCurve::new(u.clone());
/// let rect = Rect::new(vec![0, 0], vec![2, 1])?;
/// let mut stream = CubeStream::new(&curve, &rect)?;
/// // Skip everything ending before key 6: the two unit cells at keys 8 and
/// // 9 remain, the 2x2 cube at keys [0, 3] is never enumerated.
/// stream.seek(&Key::from_u128(6, 8));
/// let (_, range) = stream.next_cube().unwrap();
/// assert_eq!(range.lo().to_u128(), Some(8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CubeStream<'a, C: SpaceFillingCurve + ?Sized> {
    curve: &'a C,
    rect: &'a Rect,
    /// Pending subtrees in *reverse* key order (top of the stack holds the
    /// lowest keys). Invariant: the key ranges on the stack are disjoint and
    /// descending from bottom to top.
    stack: Vec<(StandardCube, KeyRange)>,
}

impl<'a, C: SpaceFillingCurve + ?Sized> CubeStream<'a, C> {
    /// Creates a stream over the decomposition of `rect` in the key order of
    /// `curve`.
    ///
    /// # Errors
    ///
    /// Returns an error if the rectangle does not lie inside the curve's
    /// universe.
    pub fn new(curve: &'a C, rect: &'a Rect) -> Result<Self> {
        rect.validate_in(curve.universe())?;
        let root = StandardCube::whole_universe(curve.universe());
        let range = curve.cube_key_range(&root)?;
        Ok(CubeStream {
            curve,
            rect,
            stack: vec![(root, range)],
        })
    }

    /// The rectangle being decomposed.
    pub fn rect(&self) -> &Rect {
        self.rect
    }

    /// The next cube of the decomposition (and its key range) in increasing
    /// key order, or `None` when the decomposition is exhausted.
    pub fn next_cube(&mut self) -> Option<(StandardCube, KeyRange)> {
        while let Some((cube, range)) = self.stack.pop() {
            let cube_rect = cube.to_rect();
            if !self.rect.overlaps(&cube_rect) {
                continue;
            }
            if self.rect.contains_rect(&cube_rect) {
                return Some((cube, range));
            }
            // Partial overlap: a cell either overlaps fully or not at all,
            // so this cube has side > 1 and children exist.
            let mut children = self.curve.children_in_key_order(&cube);
            children.reverse();
            self.stack.extend(children);
        }
        None
    }

    /// Advances the stream so that the next emitted cube is the first one
    /// whose key range ends at-or-after `key` (i.e. everything that lies
    /// entirely before `key` is skipped). Seeking backwards is a no-op: the
    /// stream only moves forward.
    ///
    /// Skipped subtrees are discarded wholesale — the cost is
    /// `O(2^d · depth)` regardless of how many cubes the skipped stretch
    /// contains, and consecutive seeks with increasing keys share the
    /// remaining stack, so a sweep over the whole key space does each piece
    /// of descent work at most once.
    pub fn seek(&mut self, key: &Key) {
        loop {
            let split = match self.stack.last() {
                None => break,
                Some((cube, range)) => {
                    if range.hi() < key {
                        false // entirely before the target: drop it
                    } else if range.lo() >= key {
                        break; // already at-or-after the target
                    } else {
                        // The top subtree straddles `key`: split it, unless
                        // it is known to be emitted whole or dropped whole.
                        let cube_rect = cube.to_rect();
                        if !self.rect.overlaps(&cube_rect) {
                            false // dropped whole
                        } else if self.rect.contains_rect(&cube_rect) {
                            // Emitted as one cube; its range legitimately
                            // starts before `key` while ending at-or-after.
                            break;
                        } else {
                            true
                        }
                    }
                }
            };
            let (cube, _) = self.stack.pop().expect("stack top exists");
            if split {
                let mut children = self.curve.children_in_key_order(&cube);
                children.reverse();
                self.stack.extend(children);
            }
        }
    }
}

impl<C: SpaceFillingCurve + ?Sized> Iterator for CubeStream<'_, C> {
    type Item = (StandardCube, KeyRange);

    fn next(&mut self) -> Option<(StandardCube, KeyRange)> {
        self.next_cube()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Point;

    fn universe(d: usize, k: u32) -> Universe {
        Universe::new(d, k).unwrap()
    }

    /// Checks that a decomposition exactly tiles the rectangle: disjoint
    /// cubes whose union is the rectangle.
    fn assert_exact_tiling(u: &Universe, rect: &Rect, cubes: &[StandardCube]) {
        let total: u128 = cubes.iter().map(|c| c.volume().unwrap()).sum();
        assert_eq!(total, rect.volume().unwrap(), "volumes must add up");
        for c in cubes {
            assert!(rect.contains_rect(&c.to_rect()), "{c} sticks out of {rect}");
        }
        for (i, a) in cubes.iter().enumerate() {
            for b in cubes.iter().skip(i + 1) {
                assert!(!a.to_rect().overlaps(&b.to_rect()), "{a} and {b} overlap");
            }
        }
        // Spot-check membership for small universes.
        if u.volume().unwrap_or(u128::MAX) <= 4096 {
            let side = u.side();
            let d = u.dims();
            let total_cells = side.pow(d as u32);
            for idx in 0..total_cells {
                let mut coords = vec![0u64; d];
                let mut rem = idx;
                for coord in coords.iter_mut() {
                    *coord = rem % side;
                    rem /= side;
                }
                let inside_rect = rect.contains_coords(&coords);
                let inside_cubes = cubes.iter().any(|c| c.contains_coords(&coords));
                assert_eq!(inside_rect, inside_cubes, "cell {coords:?}");
            }
        }
    }

    #[test]
    fn aligned_square_is_a_single_cube() {
        let u = universe(2, 8);
        // The paper's first example region of Figure 2: a 256x256 square
        // aligned at the origin is exactly one standard cube.
        let rect = Rect::new(vec![0, 0], vec![255, 255]).unwrap();
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].side_exp(), 8);
    }

    #[test]
    fn figure_2_example_257_square_cubes() {
        // The paper's second example region of Figure 2: a 257x257 extremal
        // square consists of one 256x256 standard cube plus an L-shaped strip
        // of width 1 (513 unit cells), i.e. 514 standard cubes. After merging
        // adjacent key ranges these collapse to the 385 runs quoted in the
        // paper (verified in the `runs` module).
        let u = universe(2, 10);
        let rect = Rect::new(vec![1023 - 256, 1023 - 256], vec![1023, 1023]).unwrap();
        assert_eq!(rect.side_lengths(), vec![257, 257]);
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_eq!(cubes.len(), 514);
        let hist = histogram_by_level(&cubes);
        assert_eq!(hist, vec![(8, 1), (0, 513)]);
        assert_exact_tiling(&u, &rect, &cubes);
    }

    #[test]
    fn three_by_two_decomposition() {
        let u = universe(2, 4);
        let rect = Rect::new(vec![0, 0], vec![2, 1]).unwrap();
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_eq!(cubes.len(), 3);
        assert_exact_tiling(&u, &rect, &cubes);
        assert_eq!(count_cubes(&u, &rect).unwrap(), 3);
    }

    #[test]
    fn single_cell_rectangles() {
        let u = universe(3, 4);
        let p = Point::new(vec![7, 11, 2]).unwrap();
        let rect = Rect::from_point(&p);
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].volume(), Some(1));
    }

    #[test]
    fn full_universe_is_one_cube() {
        let u = universe(3, 3);
        let rect = Rect::full(&u);
        assert_eq!(count_cubes(&u, &rect).unwrap(), 1);
    }

    #[test]
    fn random_rectangles_tile_exactly() {
        // Deterministic pseudo-random rectangles in a small universe.
        let u = universe(2, 5);
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let (a, b) = (next() % 32, next() % 32);
            let (c, d) = (next() % 32, next() % 32);
            let rect = Rect::new(vec![a.min(b), c.min(d)], vec![a.max(b), c.max(d)]).unwrap();
            let cubes = decompose_rect(&u, &rect).unwrap();
            assert_exact_tiling(&u, &rect, &cubes);
            assert_eq!(count_cubes(&u, &rect).unwrap(), cubes.len() as u64);
        }
    }

    #[test]
    fn decomposition_is_greedy_optimal_for_known_cases() {
        let u = universe(2, 4);
        // An 8x8 aligned block: exactly 1 cube even though it could also be
        // tiled by 64 cells.
        let rect = Rect::new(vec![8, 0], vec![15, 7]).unwrap();
        assert_eq!(count_cubes(&u, &rect).unwrap(), 1);
        // An 8x7 block (one row short of an aligned 8x8): the greedy
        // partition uses two 4x4 cubes, four 2x2 cubes and eight unit cells.
        let rect = Rect::new(vec![8, 0], vec![15, 6]).unwrap();
        let cubes = decompose_rect(&u, &rect).unwrap();
        assert_exact_tiling(&u, &rect, &cubes);
        assert_eq!(cubes.len(), 2 + 4 + 8);
        assert_eq!(histogram_by_level(&cubes), vec![(2, 2), (1, 4), (0, 8)]);
    }

    #[test]
    fn histogram_orders_levels_by_decreasing_size() {
        let u = universe(2, 4);
        let rect = Rect::new(vec![0, 0], vec![6, 6]).unwrap();
        let cubes = decompose_rect(&u, &rect).unwrap();
        let hist = histogram_by_level(&cubes);
        let exps: Vec<u32> = hist.iter().map(|&(e, _)| e).collect();
        let mut sorted = exps.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(exps, sorted);
        let total: u64 = hist.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, cubes.len() as u64);
    }

    #[test]
    fn out_of_universe_rectangle_rejected() {
        let u = universe(2, 3);
        let rect = Rect::new(vec![0, 0], vec![8, 3]).unwrap();
        assert!(decompose_rect(&u, &rect).is_err());
        assert!(count_cubes(&u, &rect).is_err());
        let curve = crate::zorder::ZCurve::new(u);
        assert!(CubeStream::new(&curve, &rect).is_err());
    }

    #[test]
    fn cube_stream_yields_the_greedy_partition_in_key_order() {
        use crate::curve::CurveKind;
        let u = universe(2, 5);
        let mut state = 0xabcdu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for kind in CurveKind::all() {
            let curve = kind.build(u.clone());
            for _ in 0..20 {
                let (a, b) = (next() % 32, next() % 32);
                let (c, d) = (next() % 32, next() % 32);
                let rect = Rect::new(vec![a.min(b), c.min(d)], vec![a.max(b), c.max(d)]).unwrap();
                let streamed: Vec<(StandardCube, crate::key::KeyRange)> =
                    CubeStream::new(curve.as_ref(), &rect).unwrap().collect();
                // Same cube set as the eager greedy partition...
                let mut eager = decompose_rect(&u, &rect).unwrap();
                let mut got: Vec<StandardCube> = streamed.iter().map(|(c, _)| c.clone()).collect();
                eager.sort_by_key(|c| c.corner().to_vec());
                got.sort_by_key(|c| c.corner().to_vec());
                assert_eq!(got, eager, "{kind:?} {rect}");
                // ...in strictly increasing, disjoint key order with correct
                // ranges.
                for (cube, range) in &streamed {
                    assert_eq!(&curve.cube_key_range(cube).unwrap(), range);
                }
                for w in streamed.windows(2) {
                    assert!(w[0].1.hi() < w[1].1.lo(), "{kind:?}: out of order");
                }
            }
        }
    }

    #[test]
    fn seek_skips_exactly_the_cubes_ending_before_the_key() {
        let u = universe(2, 6);
        let curve = crate::zorder::ZCurve::new(u.clone());
        let rect = Rect::new(vec![3, 5], vec![50, 41]).unwrap();
        let all: Vec<(StandardCube, KeyRange)> = CubeStream::new(&curve, &rect).unwrap().collect();
        assert!(all.len() > 10);
        // Seeking to any cube boundary (and past the end) must resume at the
        // first cube whose range ends at-or-after the key.
        let probes: Vec<Key> = all
            .iter()
            .flat_map(|(_, r)| [r.lo().clone(), r.hi().clone()])
            .chain([Key::zero(12), Key::max_value(12)])
            .collect();
        for key in probes {
            let mut stream = CubeStream::new(&curve, &rect).unwrap();
            stream.seek(&key);
            let expected = all.iter().find(|(_, r)| r.hi() >= &key);
            assert_eq!(
                stream.next_cube().as_ref(),
                expected,
                "seek to {key} mismatched"
            );
        }
    }

    #[test]
    fn seek_is_resumable_and_monotone() {
        // Interleaving seeks and reads must visit the same suffix as reading
        // everything and filtering.
        let u = universe(2, 6);
        let curve = crate::zorder::ZCurve::new(u.clone());
        let rect = Rect::new(vec![1, 1], vec![62, 59]).unwrap();
        let all: Vec<(StandardCube, KeyRange)> = CubeStream::new(&curve, &rect).unwrap().collect();
        let mut stream = CubeStream::new(&curve, &rect).unwrap();
        let mut visited = Vec::new();
        let mut i = 0usize;
        while let Some((cube, range)) = {
            // Every other step, seek ahead by a few cubes before reading.
            if i.is_multiple_of(2) && 3 * i < all.len() {
                stream.seek(all[3 * i].1.lo());
            }
            i += 1;
            stream.next_cube()
        } {
            // Seeking backwards must be a no-op.
            stream.seek(&Key::zero(12));
            visited.push((cube, range));
        }
        // The visited cubes are a subsequence of the full enumeration ending
        // at its last cube.
        assert_eq!(visited.last(), all.last());
        let mut pos = 0usize;
        for v in &visited {
            while all[pos] != *v {
                pos += 1;
            }
        }
    }
}
