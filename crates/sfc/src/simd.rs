//! Hand-rolled lane comparators for the flat key mirrors.
//!
//! The packed `u128` mirror in [`crate::SfcArray`] and the `u64` shard
//! prefixes in the sharded index are plain sorted numeric arrays — exactly
//! the layout wide compares want. The stable toolchain has no `std::simd`,
//! so these kernels are written in the `u64x4` style the autovectorizer
//! reliably turns into SIMD: four independent accumulators over
//! `chunks_exact(4)`, branch-free `usize::from(x < v)` lane compares, one
//! horizontal add at the end. Counting the elements below `v` in a sorted
//! window *is* `partition_point`, so a binary search narrowed to a small
//! window plus one lane count gives a branch-light lower bound; the
//! galloping variants keep the `O(log gap)` cost of a monotone sweep and
//! only swap the final narrow phase for lanes.
//!
//! Everything here is allocation-free and `// acd-lint: hot`-gated.

/// Lane width of the hand-rolled comparators (a `u64x4` / `u128x4` shape).
pub const LANES: usize = 4;

/// Window size below which the lower bounds stop bisecting and count lanes
/// instead: 8 lane groups — small enough that the count is a handful of
/// vector compares, large enough to skip the worst (least predictable)
/// binary-search steps.
const LANE_WINDOW: usize = 8 * LANES;

/// Number of elements of `xs` strictly below `v`, counted branch-free in
/// four independent lanes. On a sorted slice this equals
/// `xs.partition_point(|&x| x < v)`.
// acd-lint: hot
#[inline]
pub fn count_below_u64x4(xs: &[u64], v: u64) -> usize {
    let mut lanes = [0usize; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for ch in &mut chunks {
        lanes[0] += usize::from(ch[0] < v);
        lanes[1] += usize::from(ch[1] < v);
        lanes[2] += usize::from(ch[2] < v);
        lanes[3] += usize::from(ch[3] < v);
    }
    let mut count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for &x in chunks.remainder() {
        count += usize::from(x < v);
    }
    count
}

/// Number of elements of `xs` strictly below `v` (see
/// [`count_below_u64x4`]); the `u128` shape used by the packed key mirror.
// acd-lint: hot
#[inline]
pub fn count_below_u128x4(xs: &[u128], v: u128) -> usize {
    let mut lanes = [0usize; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for ch in &mut chunks {
        lanes[0] += usize::from(ch[0] < v);
        lanes[1] += usize::from(ch[1] < v);
        lanes[2] += usize::from(ch[2] < v);
        lanes[3] += usize::from(ch[3] < v);
    }
    let mut count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for &x in chunks.remainder() {
        count += usize::from(x < v);
    }
    count
}

/// First index into sorted `xs` whose element is ≥ `v`: binary search
/// narrowed to a `LANE_WINDOW`, finished with one lane count. Equivalent
/// to `xs.partition_point(|&x| x < v)`.
// acd-lint: hot
pub fn lower_bound_u64(xs: &[u64], v: u64) -> usize {
    let (mut lo, mut hi) = (0usize, xs.len());
    while hi - lo > LANE_WINDOW {
        let mid = lo + (hi - lo) / 2;
        if xs[mid] < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo + count_below_u64x4(&xs[lo..hi], v)
}

/// First index into sorted `xs` whose element is ≥ `v` (see
/// [`lower_bound_u64`]); the `u128` shape.
// acd-lint: hot
pub fn lower_bound_u128(xs: &[u128], v: u128) -> usize {
    let (mut lo, mut hi) = (0usize, xs.len());
    while hi - lo > LANE_WINDOW {
        let mid = lo + (hi - lo) / 2;
        if xs[mid] < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo + count_below_u128x4(&xs[lo..hi], v)
}

/// First index ≥ `from` into sorted `xs` whose element is ≥ `v`, found by
/// exponential (galloping) search bracketed down to a lane count —
/// `O(log distance)` like the plain gallop, with the final narrow phase
/// replaced by branch-free lanes. The sweep cursors use this for monotone
/// probe sequences.
// acd-lint: hot
pub fn lower_bound_u64_from(xs: &[u64], from: usize, v: u64) -> usize {
    let n = xs.len();
    let mut lo = from;
    if lo >= n || xs[lo] >= v {
        return lo;
    }
    // Invariant: xs[lo] < v; double the step until past `v`.
    let mut step = 1usize;
    let mut hi = lo + 1;
    while hi < n && xs[hi] < v {
        lo = hi;
        hi += step;
        step *= 2;
    }
    let mut hi = hi.min(n);
    // The answer lies in (lo, hi]; bisect down to a lane-countable window.
    let mut lo = lo + 1;
    while hi - lo > LANE_WINDOW {
        let mid = lo + (hi - lo) / 2;
        if xs[mid] < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo + count_below_u64x4(&xs[lo..hi], v)
}

/// First index ≥ `from` into sorted `xs` whose element is ≥ `v` (see
/// [`lower_bound_u64_from`]); the `u128` shape used by the packed key
/// mirror's sweep cursors.
// acd-lint: hot
pub fn lower_bound_u128_from(xs: &[u128], from: usize, v: u128) -> usize {
    let n = xs.len();
    let mut lo = from;
    if lo >= n || xs[lo] >= v {
        return lo;
    }
    let mut step = 1usize;
    let mut hi = lo + 1;
    while hi < n && xs[hi] < v {
        lo = hi;
        hi += step;
        step *= 2;
    }
    let mut hi = hi.min(n);
    let mut lo = lo + 1;
    while hi - lo > LANE_WINDOW {
        let mid = lo + (hi - lo) / 2;
        if xs[mid] < v {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo + count_below_u128x4(&xs[lo..hi], v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for test data.
    fn rng(mut state: u64) -> impl FnMut() -> u64 {
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn counts_match_partition_point_on_sorted_data() {
        let mut next = rng(0xacdc);
        for n in [0usize, 1, 3, 4, 5, 7, 8, 31, 32, 33, 100, 257] {
            let mut xs: Vec<u64> = (0..n).map(|_| next() % 1000).collect();
            xs.sort_unstable();
            let xs128: Vec<u128> = xs.iter().map(|&x| u128::from(x) << 64 | 7).collect();
            for probe in 0..1001u64 {
                let want = xs.partition_point(|&x| x < probe);
                assert_eq!(count_below_u64x4(&xs, probe), want, "n={n} v={probe}");
                assert_eq!(lower_bound_u64(&xs, probe), want, "n={n} v={probe}");
                let probe128 = u128::from(probe) << 64 | 7;
                assert_eq!(count_below_u128x4(&xs128, probe128), want);
                assert_eq!(lower_bound_u128(&xs128, probe128), want);
            }
        }
    }

    #[test]
    fn galloping_lower_bounds_match_partition_point_from_any_start() {
        let mut next = rng(0xbeef);
        let mut xs: Vec<u64> = (0..300).map(|_| next() % 512).collect();
        xs.sort_unstable();
        let xs128: Vec<u128> = xs.iter().map(|&x| u128::from(x)).collect();
        for from in [0usize, 1, 7, 150, 299, 300, 301] {
            for probe in 0..513u64 {
                let want = xs.partition_point(|&x| x < probe).max(from);
                assert_eq!(
                    lower_bound_u64_from(&xs, from, probe),
                    want,
                    "from={from} v={probe}"
                );
                assert_eq!(
                    lower_bound_u128_from(&xs128, from, u128::from(probe)),
                    want,
                    "from={from} v={probe}"
                );
            }
        }
    }

    #[test]
    fn extreme_values_are_handled() {
        let xs = [0u64, 1, u64::MAX - 1, u64::MAX];
        assert_eq!(count_below_u64x4(&xs, 0), 0);
        assert_eq!(count_below_u64x4(&xs, u64::MAX), 3);
        assert_eq!(lower_bound_u64(&xs, u64::MAX), 3);
        let xs = [0u128, u128::MAX];
        assert_eq!(count_below_u128x4(&xs, u128::MAX), 1);
        assert_eq!(lower_bound_u128_from(&xs, 0, u128::MAX), 1);
    }
}
