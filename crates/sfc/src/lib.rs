//! # acd-sfc — space filling curve substrate
//!
//! This crate implements everything the covering-detection index in
//! [`acd-covering`](../acd_covering/index.html) needs from a space filling
//! curve (SFC) library, built from scratch:
//!
//! * [`Universe`] — a `d`-dimensional grid of `2^k × … × 2^k` cells, and
//!   [`Point`]s inside it.
//! * [`Key`] — arbitrary-precision (`d·k`-bit) SFC keys with total ordering.
//! * [`SpaceFillingCurve`] — a trait implemented by the [`ZCurve`] (Morton
//!   order), the [`HilbertCurve`] and the [`GrayCurve`]; all three are based
//!   on recursive bisection of the universe, so a *standard cube* is always a
//!   single contiguous run of keys (Fact 2.1 of the paper).
//! * [`Rect`] / [`ExtremalRect`] — axis-aligned query rectangles, including
//!   the *extremal* rectangles (anchored at the universe's top corner) that
//!   arise from point-dominance queries, together with the bit-truncation
//!   operators `t(ℓ, m)` and `S_i(ℓ)` from the paper.
//! * [`decompose`] / [`extremal`] — greedy decomposition of a region into a
//!   minimum number of standard cubes: a generic top-down algorithm for
//!   arbitrary rectangles, the paper's specialized, lazily-evaluated
//!   per-level enumeration for extremal rectangles (Lemma 3.4, Algorithms
//!   1–3), and the key-ordered, seekable [`CubeStream`] that lets a query
//!   skip straight to the decomposition cube at-or-after any key.
//! * [`runs`] — merging cube key-ranges into runs and counting them
//!   (`runs(T) ≤ cubes(T)`, Lemma 3.1), including the lazy [`RunStream`]
//!   the populated-key query sweep probes.
//! * [`SfcArray`] — the one-dimensional sorted array of keys that backs the
//!   index, with efficient range probes.
//! * [`analysis`] — analytic calculators for the paper's Theorem 3.1 upper
//!   bound, Theorem 4.1 lower bound and Lemma 3.2 volume guarantee.
//!
//! ## Example
//!
//! ```
//! use acd_sfc::{Universe, Point, ZCurve, SpaceFillingCurve};
//!
//! # fn main() -> Result<(), acd_sfc::SfcError> {
//! let universe = Universe::new(2, 8)?; // 2 dimensions, 256 x 256 cells
//! let curve = ZCurve::new(universe.clone());
//! let p = Point::new(vec![3, 5])?;
//! let key = curve.key_of_point(&p)?;
//! assert_eq!(curve.point_of_key(&key)?, p);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod appendix_a;
pub mod array;
pub mod bits;
pub mod cube;
pub mod curve;
pub mod decompose;
mod error;
pub mod extremal;
pub mod gray;
pub mod hilbert;
pub mod key;
pub mod rect;
pub mod runs;
pub mod simd;
pub mod universe;
pub mod zorder;

pub use array::{SfcArray, SfcEntry, SweepCursor};
pub use cube::StandardCube;
pub use curve::{CurveKind, RegionSeeker, SpaceFillingCurve};
pub use decompose::CubeStream;
pub use error::SfcError;
pub use extremal::{ExtremalCubes, LevelCubes};
pub use gray::GrayCurve;
pub use hilbert::HilbertCurve;
pub use key::{Key, KeyRange};
pub use rect::{ExtremalRect, Rect};
pub use runs::{Run, RunStream};
pub use universe::{Point, Universe};
pub use zorder::ZCurve;

/// Convenience result alias used throughout the crate.
pub type Result<T, E = SfcError> = std::result::Result<T, E>;
