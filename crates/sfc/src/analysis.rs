//! Analytic calculators for the paper's complexity bounds.
//!
//! These functions evaluate the closed-form expressions proved in the paper
//! so that the experiment harness can plot measured costs against the
//! theoretical predictions:
//!
//! * [`approx_query_upper_bound`] — Theorem 3.1's upper bound on the number
//!   of runs accessed by an ε-approximate point-dominance query,
//!   `log2(2d/ε) · (2^α · (2d/ε − 1))^{d−1}`.
//! * [`exhaustive_query_lower_bound`] — Theorem 4.1's lower bound on the
//!   number of runs accessed by an exhaustive query on the Z curve,
//!   `(2^{α−1} · ℓ_d)^{d−1}` for the adversarial rectangle family.
//! * [`lemma_3_2_volume_fraction`] — the guaranteed volume fraction
//!   `1 − 2d/2^m` covered by the truncated rectangle `R^m(ℓ)`.
//! * [`worst_case_lengths`] — the adversarial length vector of Section 4,
//!   used by the lower-bound experiment (E4).

use crate::bits;
use crate::rect::ExtremalRect;
use crate::universe::Universe;
use crate::Result;

/// Theorem 3.1: upper bound on the number of runs accessed by an
/// ε-approximate point-dominance query in `dims` dimensions on a query
/// rectangle of aspect ratio `alpha` (in bits).
///
/// The bound is `m · (2^α (2^m − 1))^{d−1}` with `m = ceil(log2(2d/ε))`.
///
/// # Panics
///
/// Panics if `epsilon` is not in `(0, 1)` or `dims == 0`.
pub fn approx_query_upper_bound(dims: usize, alpha: u32, epsilon: f64) -> f64 {
    let m = bits::truncation_bits_for_epsilon(dims, epsilon) as f64;
    let d = dims as f64;
    let per_level = 2f64.powi(alpha as i32) * (2f64.powf(m) - 1.0);
    m * per_level.powf(d - 1.0)
}

/// Theorem 4.1: lower bound on the number of runs accessed by an exhaustive
/// point-dominance query on the Z curve, for the adversarial extremal
/// rectangle whose shortest side is `shortest_side` (the paper's `ℓ_d`) and
/// whose aspect ratio is `alpha`.
///
/// The bound is `(2^{α−1} · ℓ_d)^{d−1}` — it grows with the region size,
/// unlike the approximate bound.
pub fn exhaustive_query_lower_bound(dims: usize, alpha: u32, shortest_side: u64) -> f64 {
    let d = dims as f64;
    (2f64.powi(alpha as i32 - 1) * shortest_side as f64).powf(d - 1.0)
}

/// Lemma 3.2: the guaranteed fraction of the query volume covered by the
/// truncated rectangle `R^m(ℓ)`, namely `1 − 2d/2^m` (never negative).
pub fn lemma_3_2_volume_fraction(dims: usize, m: u32) -> f64 {
    (1.0 - 2.0 * dims as f64 / 2f64.powi(m as i32)).max(0.0)
}

/// The adversarial extremal rectangle family of Section 4 (used to prove
/// Theorem 4.1): the shortest side (along the last dimension) has length
/// `2^γ − 1` and every other side has bit length `γ + α`, with all bits set.
///
/// # Errors
///
/// Returns an error if the requested rectangle does not fit in `universe`
/// (requires `γ + α ≤ k` and `γ ≥ 1`).
pub fn worst_case_lengths(universe: &Universe, gamma: u32, alpha: u32) -> Result<Vec<u64>> {
    let k = universe.bits_per_dim();
    if gamma == 0 || gamma + alpha > k {
        return Err(crate::SfcError::InvalidSideLength {
            dim: universe.dims() - 1,
            length: 1u64.checked_shl(gamma).unwrap_or(u64::MAX),
            bound: universe.side(),
        });
    }
    let d = universe.dims();
    let long = (1u64 << (gamma + alpha)) - 1; // bit length γ + α, all ones
    let short = (1u64 << gamma) - 1; // bit length γ, all ones
    let mut lengths = vec![long; d];
    lengths[d - 1] = short;
    Ok(lengths)
}

/// The adversarial extremal rectangle of Section 4 as an [`ExtremalRect`].
///
/// # Errors
///
/// See [`worst_case_lengths`].
pub fn worst_case_rect(universe: &Universe, gamma: u32, alpha: u32) -> Result<ExtremalRect> {
    let lengths = worst_case_lengths(universe, gamma, alpha)?;
    ExtremalRect::new(universe.clone(), lengths)
}

/// The exact number of cells in the sub-rectangle `R0` used in the proof of
/// Theorem 4.1: `(2^{b(ℓ_1)−1})^{d−1}` where `b(ℓ_1) = γ + α` — every one of
/// these cells is a separate run on the Z curve (Lemma 4.1), so this is a
/// concrete, achievable lower bound on `runs(R(ℓ))`.
pub fn worst_case_r0_runs(dims: usize, gamma: u32, alpha: u32) -> f64 {
    2f64.powi((gamma + alpha) as i32 - 1).powi(dims as i32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extremal::ExtremalCubes;

    #[test]
    fn upper_bound_is_independent_of_region_size() {
        // The bound depends only on d, alpha and epsilon.
        let b1 = approx_query_upper_bound(4, 0, 0.05);
        let b2 = approx_query_upper_bound(4, 0, 0.05);
        assert_eq!(b1, b2);
        assert!(b1 > 0.0);
    }

    #[test]
    fn upper_bound_grows_as_epsilon_shrinks() {
        let d = 4;
        let loose = approx_query_upper_bound(d, 0, 0.3);
        let tight = approx_query_upper_bound(d, 0, 0.01);
        assert!(tight > loose);
    }

    #[test]
    fn upper_bound_grows_with_aspect_ratio_and_dimension() {
        assert!(approx_query_upper_bound(4, 3, 0.1) > approx_query_upper_bound(4, 0, 0.1));
        assert!(approx_query_upper_bound(6, 0, 0.1) > approx_query_upper_bound(4, 0, 0.1));
    }

    #[test]
    fn lower_bound_grows_with_region_size() {
        let small = exhaustive_query_lower_bound(4, 0, 16);
        let large = exhaustive_query_lower_bound(4, 0, 256);
        assert!(large > small);
        assert!((large / small - (256f64 / 16f64).powi(3)).abs() < 1e-6);
    }

    #[test]
    fn lemma_3_2_fraction_matches_direct_computation() {
        assert!((lemma_3_2_volume_fraction(4, 4) - (1.0 - 8.0 / 16.0)).abs() < 1e-12);
        assert_eq!(lemma_3_2_volume_fraction(8, 1), 0.0, "clamped at zero");
        // With m chosen per Lemma 3.2 the fraction is at least 1 - eps.
        for &(d, eps) in &[(2usize, 0.1f64), (4, 0.05), (6, 0.01)] {
            let m = bits::truncation_bits_for_epsilon(d, eps);
            assert!(lemma_3_2_volume_fraction(d, m) >= 1.0 - eps - 1e-12);
        }
    }

    #[test]
    fn worst_case_rect_has_requested_aspect_ratio() {
        let u = Universe::new(4, 12).unwrap();
        for alpha in 0..4u32 {
            for gamma in 1..6u32 {
                let rect = worst_case_rect(&u, gamma, alpha).unwrap();
                assert_eq!(rect.aspect_ratio(), alpha, "gamma={gamma} alpha={alpha}");
                assert_eq!(
                    rect.lengths()[u.dims() - 1],
                    (1 << gamma) - 1,
                    "shortest side"
                );
            }
        }
        assert!(worst_case_rect(&u, 0, 1).is_err());
        assert!(worst_case_rect(&u, 10, 4).is_err());
    }

    #[test]
    fn theorem_3_1_bound_dominates_measured_cubes() {
        // The measured number of cubes needed to reach a (1-eps) volume
        // fraction never exceeds the Theorem 3.1 bound (the bound is on
        // runs <= cubes of the truncated rectangle).
        let u = Universe::new(3, 12).unwrap();
        for &eps in &[0.3, 0.1, 0.05] {
            let m = bits::truncation_bits_for_epsilon(3, eps);
            for lengths in [
                vec![4095u64, 4095, 4095],
                vec![3000, 2500, 2047],
                vec![513, 700, 999],
            ] {
                let rect = ExtremalRect::new(u.clone(), lengths).unwrap();
                let truncated = rect.truncate(m);
                let measured = ExtremalCubes::new(&truncated)
                    .count_cubes()
                    .map(|c| c as f64)
                    .unwrap_or(f64::INFINITY);
                let bound = approx_query_upper_bound(3, rect.aspect_ratio(), eps);
                assert!(
                    measured <= bound,
                    "measured {measured} exceeds bound {bound} for eps {eps}"
                );
            }
        }
    }

    #[test]
    fn theorem_4_1_r0_runs_are_achievable() {
        // For the adversarial rectangle, the number of unit cells in R0 is a
        // valid lower bound on the total number of cubes of the full greedy
        // decomposition (each cell of R0 is its own run).
        let u = Universe::new(3, 10).unwrap();
        let gamma = 3;
        let alpha = 1;
        let rect = worst_case_rect(&u, gamma, alpha).unwrap();
        let total_cubes = ExtremalCubes::new(&rect).count_cubes().unwrap() as f64;
        let r0 = worst_case_r0_runs(3, gamma, alpha);
        assert!(total_cubes >= r0, "cubes {total_cubes} >= r0 {r0}");
    }
}
