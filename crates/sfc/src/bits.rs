//! Bit-level helpers used throughout the paper's analysis and algorithms.
//!
//! The paper works with three operators on positive integers:
//!
//! * `b(x)` — the number of bits in the binary representation of `x`
//!   (e.g. `b(9) = 4`);
//! * `t(x, m)` — keep only the `m` most significant bits of `x`, zeroing the
//!   rest (used to truncate the query rectangle, Lemma 3.2);
//! * `S_i(x)` — keep only the bits of `x` whose index (from the least
//!   significant, 0-based) is at least `i` (used to characterize the greedy
//!   decomposition, Lemma 3.4).
//!
//! The same operators applied element-wise to length vectors are provided as
//! `*_vec` variants.

/// Number of bits in the binary representation of `x`; `b(0) = 0`.
///
/// # Example
///
/// ```
/// use acd_sfc::bits::bit_length;
/// assert_eq!(bit_length(9), 4);
/// assert_eq!(bit_length(1), 1);
/// assert_eq!(bit_length(0), 0);
/// ```
pub fn bit_length(x: u64) -> u32 {
    64 - x.leading_zeros()
}

/// The paper's `t(x, m)`: retain the `m` most significant bits of `x` and set
/// the rest to zero. If `m >= b(x)` the value is returned unchanged; `m = 0`
/// yields zero.
///
/// # Example
///
/// ```
/// use acd_sfc::bits::truncate_to_msb;
/// // 0b110101 truncated to its 3 most significant bits is 0b110000.
/// assert_eq!(truncate_to_msb(0b110101, 3), 0b110000);
/// assert_eq!(truncate_to_msb(0b110101, 10), 0b110101);
/// assert_eq!(truncate_to_msb(0b110101, 0), 0);
/// ```
pub fn truncate_to_msb(x: u64, m: u32) -> u64 {
    let b = bit_length(x);
    if m >= b {
        return x;
    }
    let drop = b - m;
    (x >> drop) << drop
}

/// The paper's `S_i(x)`: keep the bits of `x` at positions `>= i` (0-based
/// from the least significant bit), zeroing positions below `i`.
///
/// # Example
///
/// ```
/// use acd_sfc::bits::keep_bits_from;
/// assert_eq!(keep_bits_from(0b101101, 0), 0b101101);
/// assert_eq!(keep_bits_from(0b101101, 2), 0b101100);
/// assert_eq!(keep_bits_from(0b101101, 4), 0b100000);
/// assert_eq!(keep_bits_from(0b101101, 6), 0);
/// ```
pub fn keep_bits_from(x: u64, i: u32) -> u64 {
    if i >= 64 {
        return 0;
    }
    (x >> i) << i
}

/// Bit `j` (0-based from the least significant) of `x`, as 0 or 1.
///
/// # Example
///
/// ```
/// use acd_sfc::bits::bit_of;
/// assert_eq!(bit_of(0b1010, 1), 1);
/// assert_eq!(bit_of(0b1010, 0), 0);
/// ```
pub fn bit_of(x: u64, j: u32) -> u64 {
    if j >= 64 {
        0
    } else {
        (x >> j) & 1
    }
}

/// Applies [`truncate_to_msb`] to every element of a vector; the paper's
/// `t(ℓ, m)` for a length vector `ℓ`.
pub fn truncate_to_msb_vec(lengths: &[u64], m: u32) -> Vec<u64> {
    lengths.iter().map(|&l| truncate_to_msb(l, m)).collect()
}

/// Applies [`keep_bits_from`] to every element of a vector; the paper's
/// `S_i(ℓ)` for a length vector `ℓ`.
pub fn keep_bits_from_vec(lengths: &[u64], i: u32) -> Vec<u64> {
    lengths.iter().map(|&l| keep_bits_from(l, i)).collect()
}

/// The paper's indicator `O_i`: 1 if any element of `lengths` has bit `i`
/// set, 0 otherwise (Lemma 3.4).
pub fn any_bit_set(lengths: &[u64], i: u32) -> bool {
    lengths.iter().any(|&l| bit_of(l, i) == 1)
}

/// The aspect ratio `α = b(ℓ_max) − b(ℓ_min)` of a vector of side lengths, in
/// bits, per the paper's definition (Section 1.1).
///
/// # Panics
///
/// Panics if `lengths` is empty or contains a zero.
pub fn aspect_ratio(lengths: &[u64]) -> u32 {
    assert!(!lengths.is_empty(), "aspect ratio of an empty vector");
    let mut min_b = u32::MAX;
    let mut max_b = 0u32;
    for &l in lengths {
        assert!(l > 0, "aspect ratio requires positive side lengths");
        let b = bit_length(l);
        min_b = min_b.min(b);
        max_b = max_b.max(b);
    }
    max_b - min_b
}

/// Chooses the truncation parameter `m` for a desired coverage `1 − ε`
/// following Lemma 3.2: `m = ceil(log2(2d / ε))` guarantees that the
/// truncated rectangle covers at least a `1 − ε` fraction of the volume.
///
/// # Panics
///
/// Panics if `epsilon` is not in the open interval `(0, 1)` or `dims == 0`.
pub fn truncation_bits_for_epsilon(dims: usize, epsilon: f64) -> u32 {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0, 1), got {epsilon}"
    );
    assert!(dims > 0, "dims must be positive");
    let m = (2.0 * dims as f64 / epsilon).log2().ceil();
    m.max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_length_matches_paper_examples() {
        assert_eq!(bit_length(9), 4);
        assert_eq!(bit_length(8), 4);
        assert_eq!(bit_length(7), 3);
        assert_eq!(bit_length(1), 1);
        assert_eq!(bit_length(0), 0);
        assert_eq!(bit_length(u64::MAX), 64);
    }

    #[test]
    fn truncate_keeps_msb_prefix() {
        assert_eq!(truncate_to_msb(0b1111, 2), 0b1100);
        assert_eq!(truncate_to_msb(257, 1), 256);
        assert_eq!(truncate_to_msb(257, 9), 257);
        assert_eq!(truncate_to_msb(0, 5), 0);
    }

    #[test]
    fn truncate_never_increases_and_preserves_bit_length() {
        for x in 1u64..2000 {
            for m in 1..12 {
                let t = truncate_to_msb(x, m);
                assert!(t <= x);
                assert_eq!(bit_length(t), bit_length(x));
                // At most a factor-of-two loss once m >= 1:
                assert!(t >= x / 2);
            }
        }
    }

    #[test]
    fn keep_bits_from_is_monotone_in_i() {
        for x in 0u64..500 {
            let mut prev = x;
            for i in 0..12 {
                let s = keep_bits_from(x, i);
                assert!(s <= prev);
                assert_eq!(s % (1 << i), 0, "S_i must be divisible by 2^i");
                prev = s;
            }
        }
    }

    #[test]
    fn s_i_relation_to_bits() {
        // S_i(x) - S_{i+1}(x) == bit_i(x) * 2^i
        for x in 0u64..300 {
            for i in 0..10 {
                assert_eq!(
                    keep_bits_from(x, i) - keep_bits_from(x, i + 1),
                    bit_of(x, i) << i
                );
            }
        }
    }

    #[test]
    fn vector_variants() {
        let l = vec![0b1011u64, 0b110, 0b1];
        assert_eq!(truncate_to_msb_vec(&l, 2), vec![0b1000, 0b110, 0b1]);
        assert_eq!(keep_bits_from_vec(&l, 1), vec![0b1010, 0b110, 0]);
        assert!(any_bit_set(&l, 0));
        assert!(any_bit_set(&l, 3));
        assert!(!any_bit_set(&l, 4));
    }

    #[test]
    fn aspect_ratio_definition() {
        assert_eq!(aspect_ratio(&[8, 8, 8]), 0);
        assert_eq!(aspect_ratio(&[15, 8]), 0, "same bit length => alpha 0");
        assert_eq!(aspect_ratio(&[16, 8]), 1);
        assert_eq!(aspect_ratio(&[1, 1024]), 10);
    }

    #[test]
    #[should_panic]
    fn aspect_ratio_rejects_zero_lengths() {
        aspect_ratio(&[0, 4]);
    }

    #[test]
    fn truncation_bits_match_lemma() {
        // m >= log2(2d/eps)
        for &(d, eps) in &[(2usize, 0.1f64), (4, 0.05), (8, 0.01), (6, 0.3)] {
            let m = truncation_bits_for_epsilon(d, eps);
            assert!((m as f64) >= (2.0 * d as f64 / eps).log2() - 1e-9);
            // And not wastefully large:
            assert!((m as f64) < (2.0 * d as f64 / eps).log2() + 1.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn truncation_bits_reject_bad_epsilon() {
        truncation_bits_for_epsilon(4, 1.5);
    }
}
