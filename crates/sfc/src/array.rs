//! The SFC array: a one-dimensional ordered index of points keyed by their
//! position on a space filling curve.
//!
//! The paper's only data structure is "the SFC array, which sorts the points
//! according to their orders on the Z curve", maintained by "a dynamic
//! ordered data structure such as a balanced binary tree". [`SfcArray`] is
//! exactly that: a `BTreeMap` from [`Key`] to the values stored at that cell,
//! supporting insertions, deletions and — crucially — *range probes*: "is
//! there any point whose key falls inside this run?", answered with two tree
//! descents.

use std::collections::BTreeMap;
use std::fmt;

use crate::curve::SpaceFillingCurve;
use crate::key::{Key, KeyRange};
use crate::universe::Point;
use crate::Result;

/// One stored entry: the original point plus the caller's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SfcEntry<V> {
    /// The point that was indexed.
    pub point: Point,
    /// The caller-supplied value (e.g. a subscription identifier).
    pub value: V,
}

/// An ordered index of points sorted by their space-filling-curve keys.
///
/// Multiple values may be stored at the same cell (several subscriptions can
/// map to the same 2β-dimensional point); they are kept in insertion order.
///
/// # Example
///
/// ```
/// use acd_sfc::{SfcArray, Universe, Point, ZCurve};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let universe = Universe::new(2, 4)?;
/// let mut array = SfcArray::new(ZCurve::new(universe));
/// array.insert(Point::new(vec![3, 7])?, "sub-1")?;
/// array.insert(Point::new(vec![3, 7])?, "sub-2")?;
/// assert_eq!(array.len(), 2);
/// assert_eq!(array.values_at(&Point::new(vec![3, 7])?)?.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct SfcArray<V, C = crate::zorder::ZCurve> {
    curve: C,
    entries: BTreeMap<Key, Vec<SfcEntry<V>>>,
    len: usize,
}

impl<V, C: SpaceFillingCurve> fmt::Debug for SfcArray<V, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SfcArray")
            .field("curve", &self.curve.kind())
            .field("cells", &self.entries.len())
            .field("len", &self.len)
            .finish()
    }
}

impl<V, C: SpaceFillingCurve> SfcArray<V, C> {
    /// Creates an empty array ordered by `curve`.
    pub fn new(curve: C) -> Self {
        SfcArray {
            curve,
            entries: BTreeMap::new(),
            len: 0,
        }
    }

    /// The curve that orders this array.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// Number of stored entries (counting duplicates at the same cell).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct cells that hold at least one entry.
    pub fn occupied_cells(&self) -> usize {
        self.entries.len()
    }

    /// Inserts `value` at `point`.
    ///
    /// # Errors
    ///
    /// Returns an error if the point is outside the curve's universe.
    pub fn insert(&mut self, point: Point, value: V) -> Result<()> {
        let key = self.curve.key_of_point(&point)?;
        self.entries
            .entry(key)
            .or_default()
            .push(SfcEntry { point, value });
        self.len += 1;
        Ok(())
    }

    /// Removes the first entry at `point` for which `pred` returns true and
    /// returns its value, or `None` if no entry matched.
    ///
    /// # Errors
    ///
    /// Returns an error if the point is outside the curve's universe.
    pub fn remove_if<F>(&mut self, point: &Point, mut pred: F) -> Result<Option<V>>
    where
        F: FnMut(&V) -> bool,
    {
        let key = self.curve.key_of_point(point)?;
        let mut removed = None;
        let mut now_empty = false;
        if let Some(bucket) = self.entries.get_mut(&key) {
            if let Some(pos) = bucket.iter().position(|e| pred(&e.value)) {
                removed = Some(bucket.remove(pos).value);
                self.len -= 1;
                now_empty = bucket.is_empty();
            }
        }
        if now_empty {
            self.entries.remove(&key);
        }
        Ok(removed)
    }

    /// All values stored at exactly `point`.
    ///
    /// # Errors
    ///
    /// Returns an error if the point is outside the curve's universe.
    pub fn values_at(&self, point: &Point) -> Result<Vec<&V>> {
        let key = self.curve.key_of_point(point)?;
        Ok(self
            .entries
            .get(&key)
            .map(|bucket| bucket.iter().map(|e| &e.value).collect())
            .unwrap_or_default())
    }

    /// Returns the smallest populated key at-or-after `key` together with
    /// the entries stored at that cell, if any — one ordered-map descent.
    /// This is the "galloping" primitive of the populated-key query sweep:
    /// the query advances from stored key to stored key instead of
    /// enumerating every run of the decomposition, and gets the cell's
    /// candidate entries for free.
    pub fn first_key_at_or_after(&self, key: &Key) -> Option<(&Key, &[SfcEntry<V>])> {
        self.entries
            .range::<Key, _>((std::ops::Bound::Included(key), std::ops::Bound::Unbounded))
            .next()
            .map(|(k, bucket)| (k, bucket.as_slice()))
    }

    /// Returns the first entry whose key falls in `range`, if any. This is
    /// the "probe a run" primitive of the paper's query algorithm: it costs
    /// one ordered-map range lookup regardless of how large the run is.
    pub fn first_in_range(&self, range: &KeyRange) -> Option<&SfcEntry<V>> {
        self.entries
            .range(range.lo().clone()..=range.hi().clone())
            .next()
            .and_then(|(_, bucket)| bucket.first())
    }

    /// Returns the first entry in `range` whose value satisfies `pred`.
    /// Entries are visited in key order.
    pub fn first_in_range_where<F>(&self, range: &KeyRange, mut pred: F) -> Option<&SfcEntry<V>>
    where
        F: FnMut(&SfcEntry<V>) -> bool,
    {
        self.entries
            .range(range.lo().clone()..=range.hi().clone())
            .flat_map(|(_, bucket)| bucket.iter())
            .find(|e| pred(e))
    }

    /// Whether any entry's key falls inside `range`.
    pub fn any_in_range(&self, range: &KeyRange) -> bool {
        self.first_in_range(range).is_some()
    }

    /// Number of entries whose keys fall inside `range`.
    pub fn count_in_range(&self, range: &KeyRange) -> usize {
        self.entries
            .range(range.lo().clone()..=range.hi().clone())
            .map(|(_, bucket)| bucket.len())
            .sum()
    }

    /// Iterates over all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &SfcEntry<V>> {
        self.entries.values().flat_map(|bucket| bucket.iter())
    }

    /// Iterates over the entries whose keys fall inside `range`, in key
    /// order.
    pub fn iter_range<'a>(
        &'a self,
        range: &KeyRange,
    ) -> impl Iterator<Item = &'a SfcEntry<V>> + 'a {
        self.entries
            .range(range.lo().clone()..=range.hi().clone())
            .flat_map(|(_, bucket)| bucket.iter())
    }

    /// Removes every entry, keeping the curve.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use crate::zorder::ZCurve;

    fn array() -> SfcArray<u32> {
        SfcArray::new(ZCurve::new(Universe::new(2, 4).unwrap()))
    }

    fn p(x: u64, y: u64) -> Point {
        Point::new(vec![x, y]).unwrap()
    }

    #[test]
    fn insert_len_and_values_at() {
        let mut a = array();
        assert!(a.is_empty());
        a.insert(p(1, 2), 10).unwrap();
        a.insert(p(1, 2), 11).unwrap();
        a.insert(p(9, 9), 12).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.occupied_cells(), 2);
        assert_eq!(a.values_at(&p(1, 2)).unwrap(), vec![&10, &11]);
        assert!(a.values_at(&p(0, 0)).unwrap().is_empty());
    }

    #[test]
    fn insert_rejects_points_outside_universe() {
        let mut a = array();
        assert!(a.insert(p(16, 0), 1).is_err());
        assert!(a.is_empty());
    }

    #[test]
    fn remove_if_removes_only_matching_values() {
        let mut a = array();
        a.insert(p(4, 4), 1).unwrap();
        a.insert(p(4, 4), 2).unwrap();
        assert_eq!(a.remove_if(&p(4, 4), |v| *v == 2).unwrap(), Some(2));
        assert_eq!(a.remove_if(&p(4, 4), |v| *v == 2).unwrap(), None);
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove_if(&p(4, 4), |_| true).unwrap(), Some(1));
        assert_eq!(a.occupied_cells(), 0);
        assert_eq!(a.remove_if(&p(4, 4), |_| true).unwrap(), None);
    }

    #[test]
    fn range_probes_find_points_in_key_order() {
        let u = Universe::new(2, 4).unwrap();
        let z = ZCurve::new(u.clone());
        let mut a = array();
        a.insert(p(0, 0), 1).unwrap();
        a.insert(p(15, 15), 2).unwrap();
        a.insert(p(8, 8), 3).unwrap();

        let full = KeyRange::new(Key::zero(8), Key::max_value(8)).unwrap();
        assert_eq!(a.count_in_range(&full), 3);
        assert_eq!(a.first_in_range(&full).unwrap().value, 1);

        // A range that contains only the upper-right quadrant.
        let cube = crate::cube::StandardCube::new(&u, vec![8, 8], 3).unwrap();
        let quad = z.cube_key_range(&cube).unwrap();
        assert_eq!(a.count_in_range(&quad), 2);
        assert_eq!(a.first_in_range(&quad).unwrap().value, 3);
        let ordered: Vec<u32> = a.iter_range(&quad).map(|e| e.value).collect();
        assert_eq!(ordered, vec![3, 2]);
        assert!(a.any_in_range(&quad));
    }

    #[test]
    fn first_key_at_or_after_gallops_over_gaps() {
        let u = Universe::new(2, 4).unwrap();
        let z = ZCurve::new(u);
        let mut a = array();
        a.insert(p(1, 2), 1).unwrap();
        a.insert(p(9, 9), 2).unwrap();
        let k1 = z.key_of_point(&p(1, 2)).unwrap();
        let k2 = z.key_of_point(&p(9, 9)).unwrap();
        let at = |key: &Key| a.first_key_at_or_after(key).map(|(k, b)| (k, b.len()));
        assert_eq!(at(&Key::zero(8)), Some((&k1, 1)));
        assert_eq!(at(&k1), Some((&k1, 1)));
        assert_eq!(at(&k1.successor().unwrap()), Some((&k2, 1)));
        assert_eq!(at(&k2.successor().unwrap()), None);
    }

    #[test]
    fn first_in_range_where_filters_values() {
        let mut a = array();
        a.insert(p(1, 1), 7).unwrap();
        a.insert(p(2, 2), 8).unwrap();
        let full = KeyRange::new(Key::zero(8), Key::max_value(8)).unwrap();
        let found = a.first_in_range_where(&full, |e| e.value % 2 == 0).unwrap();
        assert_eq!(found.value, 8);
        assert!(a.first_in_range_where(&full, |e| e.value > 100).is_none());
    }

    #[test]
    fn iter_visits_entries_in_key_order() {
        let mut a = array();
        a.insert(p(15, 0), 1).unwrap();
        a.insert(p(0, 0), 2).unwrap();
        a.insert(p(0, 15), 3).unwrap();
        let curve = ZCurve::new(Universe::new(2, 4).unwrap());
        let keys: Vec<u128> = a
            .iter()
            .map(|e| curve.key_of_point(&e.point).unwrap().to_u128().unwrap())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = array();
        a.insert(p(3, 3), 9).unwrap();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.occupied_cells(), 0);
    }
}
