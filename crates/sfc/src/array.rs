//! The SFC array: a one-dimensional ordered index of points keyed by their
//! position on a space filling curve.
//!
//! The paper's only data structure is "the SFC array, which sorts the points
//! according to their orders on the Z curve", maintained by "a dynamic
//! ordered data structure such as a balanced binary tree". [`SfcArray`] keeps
//! the *sorted* contract but replaces the pointer-chasing tree with a flat,
//! cache-friendly layout:
//!
//! * the **main level** holds occupied cells as parallel sorted arrays —
//!   keys, their packed `u128` mirror (maintained whenever the universe's
//!   key width fits 128 bits, which covers the common `2β·b` subscription
//!   shapes), and per-cell buckets. Probes,
//!   [`first_key_at_or_after`](SfcArray::first_key_at_or_after) and the
//!   [`SweepCursor`] binary-search or gallop the dense numeric array
//!   (16-byte stride, with the [`crate::simd`] lane comparators finishing
//!   every packed search branch-free) instead of hopping tree nodes;
//! * each cell's entries live in a bucket: the single-entry case (by far
//!   the most common) is stored inline, only true duplicate cells spill to
//!   a `Vec`;
//! * to keep insertion amortized (a sorted vector would pay an `O(n)`
//!   memmove of fat elements per insert), new cells go to a small **staging
//!   level**: its sorted view is two thin parallel arrays (packed key +
//!   slab slot, ~20 bytes per cell) while the fat `(Key, Bucket)` payloads
//!   sit in an append-only slab that never moves. Once staging grows past a
//!   fraction of the main size it is merged into main in one linear pass —
//!   the classic two-level merge scheme of log-structured indexes. Reads
//!   consult both levels; a cell is never split across levels (an insert
//!   into an already-occupied main cell appends to that cell's bucket in
//!   place).
//!
//! Bulk construction ([`SfcArray::from_sorted`]) bypasses staging entirely:
//! the batch is keyed, the *(packed key, index)* pairs are sorted once, and
//! the flat layout is gathered directly — several times faster than `n`
//! incremental inserts.

use std::fmt;

use crate::curve::SpaceFillingCurve;
use crate::key::{Key, KeyRange};
use crate::universe::Point;
use crate::Result;

/// First index ≥ `from` into the sorted slice whose element is ≥ `v`,
/// found by exponential (galloping) search — `O(log distance)` instead of
/// `O(log n)`, with near-perfect locality when the caller advances
/// monotonically. Shared by both levels' sweep cursors, for both the packed
/// `u128` mirror and the wide-universe `Key` array.
fn gallop_sorted<T: Ord>(xs: &[T], from: usize, v: &T) -> usize {
    let n = xs.len();
    let mut lo = from;
    if lo >= n || &xs[lo] >= v {
        return lo;
    }
    // Invariant: xs[lo] < v; double the step until past `v`.
    let mut step = 1usize;
    let mut hi = lo + 1;
    while hi < n && &xs[hi] < v {
        lo = hi;
        hi += step;
        step *= 2;
    }
    let hi = hi.min(n);
    lo + 1 + xs[lo + 1..hi].partition_point(|p| p < v)
}

/// One stored entry: the original point plus the caller's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SfcEntry<V> {
    /// The point that was indexed.
    pub point: Point,
    /// The caller-supplied value (e.g. a subscription identifier).
    pub value: V,
}

/// The entries stored at one cell: inline for the (overwhelmingly common)
/// single-entry cell, a vector for duplicate cells.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Bucket<V> {
    One(SfcEntry<V>),
    Many(Vec<SfcEntry<V>>),
}

impl<V> Bucket<V> {
    fn as_slice(&self) -> &[SfcEntry<V>] {
        match self {
            Bucket::One(e) => std::slice::from_ref(e),
            Bucket::Many(v) => v,
        }
    }

    fn push(&mut self, entry: SfcEntry<V>) {
        // Take the bucket by value (the placeholder `Many(Vec::new())` does
        // not allocate) so both arms stay total — no unreachable branches.
        match std::mem::replace(self, Bucket::Many(Vec::new())) {
            Bucket::Many(mut v) => {
                v.push(entry);
                *self = Bucket::Many(v);
            }
            Bucket::One(first) => *self = Bucket::Many(vec![first, entry]),
        }
    }
}

/// The main level: cell keys, their packed mirror and the matching buckets
/// in parallel sorted arrays. Only rebuilt by linear passes (bulk build,
/// staging merge); in-place mutation is limited to bucket pushes and cell
/// removals.
#[derive(Debug)]
struct Level<V> {
    keys: Vec<Key>,
    buckets: Vec<Bucket<V>>,
    /// Packed numeric mirror of `keys`; empty when keys exceed 128 bits.
    packed: Vec<u128>,
    /// Whether `packed` is maintained (key width ≤ 128 bits).
    pack: bool,
}

impl<V> Level<V> {
    fn new(pack: bool) -> Self {
        Level {
            keys: Vec::new(),
            buckets: Vec::new(),
            packed: Vec::new(),
            pack,
        }
    }

    fn cells(&self) -> usize {
        self.keys.len()
    }

    /// Index of the first cell with key ≥ `key`.
    fn position_at_or_after(&self, key: &Key) -> usize {
        if self.pack {
            let v = key.to_u128().expect("≤128-bit keys always fit a u128");
            crate::simd::lower_bound_u128(&self.packed, v)
        } else {
            self.keys.partition_point(|k| k < key)
        }
    }

    /// Index of the cell holding exactly `key`, if occupied.
    fn find(&self, key: &Key) -> Option<usize> {
        if self.pack {
            let v = key.to_u128().expect("≤128-bit keys always fit a u128");
            self.packed.binary_search(&v).ok()
        } else {
            self.keys.binary_search(key).ok()
        }
    }

    /// Appends a cell (key must sort after every existing key).
    fn push_cell(&mut self, key: Key, bucket: Bucket<V>) {
        debug_assert!(self.keys.last().is_none_or(|last| last < &key));
        if self.pack {
            self.packed.push(key.to_u128().expect("≤128-bit keys fit"));
        }
        self.keys.push(key);
        self.buckets.push(bucket);
    }

    /// Appends `entry` at `packed`, starting a new cell or (when `packed`
    /// equals the last cell's key) extending its bucket. Shared by the
    /// packed bulk-build paths, which feed cells in key order.
    fn push_packed_grouped(&mut self, packed: u128, bits: u32, entry: SfcEntry<V>) {
        if self.packed.last() == Some(&packed) {
            self.buckets
                .last_mut()
                .expect("buckets parallel keys")
                .push(entry);
        } else {
            self.packed.push(packed);
            self.keys.push(Key::from_u128(packed, bits));
            self.buckets.push(Bucket::One(entry));
        }
    }

    /// Removes the cell at `idx` and returns its bucket.
    fn remove_cell(&mut self, idx: usize) -> Bucket<V> {
        if self.pack {
            self.packed.remove(idx);
        }
        self.keys.remove(idx);
        self.buckets.remove(idx)
    }

    /// First index ≥ `from` whose key is ≥ `key` (see [`gallop_sorted`]);
    /// the packed mirror takes the lane-comparator gallop.
    fn gallop_at_or_after(&self, from: usize, key: &Key) -> usize {
        if self.pack {
            let v = key.to_u128().expect("≤128-bit keys always fit a u128");
            crate::simd::lower_bound_u128_from(&self.packed, from, v)
        } else {
            gallop_sorted(&self.keys, from, key)
        }
    }

    fn clear(&mut self) {
        self.keys.clear();
        self.buckets.clear();
        self.packed.clear();
    }
}

/// The staging level: a small write buffer in front of the main level. The
/// *sorted view* is two thin parallel arrays (packed key + slab slot) so a
/// sorted insert memmoves ~20 bytes per displaced cell, while the fat
/// `(Key, Bucket)` payloads live in `slab` in arrival order and never move
/// until the merge. Removals leave a hole in the slab (dropped at merge or
/// clear); the sorted view only ever references live slots.
#[derive(Debug)]
struct Staging<V> {
    /// Packed key mirror, sorted ascending; maintained only when `pack`.
    packed: Vec<u128>,
    /// Slab slots sorted by key (parallel with `packed` when `pack`).
    order: Vec<u32>,
    /// Cell payloads in arrival order.
    slab: Vec<(Key, Bucket<V>)>,
    pack: bool,
}

impl<V> Staging<V> {
    fn new(pack: bool) -> Self {
        Staging {
            packed: Vec::new(),
            order: Vec::new(),
            slab: Vec::new(),
            pack,
        }
    }

    fn cells(&self) -> usize {
        self.order.len()
    }

    fn key_at(&self, i: usize) -> &Key {
        &self.slab[self.order[i] as usize].0
    }

    fn cell(&self, i: usize) -> (&Key, &Bucket<V>) {
        let (key, bucket) = &self.slab[self.order[i] as usize];
        (key, bucket)
    }

    fn bucket_mut(&mut self, i: usize) -> &mut Bucket<V> {
        &mut self.slab[self.order[i] as usize].1
    }

    /// Index of the first cell with key ≥ `key`.
    fn position_at_or_after(&self, key: &Key) -> usize {
        if self.pack {
            let v = key.to_u128().expect("≤128-bit keys always fit a u128");
            crate::simd::lower_bound_u128(&self.packed, v)
        } else {
            self.order
                .partition_point(|&s| &self.slab[s as usize].0 < key)
        }
    }

    /// Index of the first cell with key > `key`.
    fn position_after(&self, key: &Key) -> usize {
        if self.pack {
            let v = key.to_u128().expect("≤128-bit keys always fit a u128");
            self.packed.partition_point(|&p| p <= v)
        } else {
            self.order
                .partition_point(|&s| &self.slab[s as usize].0 <= key)
        }
    }

    /// Index of the cell holding exactly `key`, if occupied.
    fn find(&self, key: &Key) -> Option<usize> {
        let pos = self.position_at_or_after(key);
        (pos < self.cells() && self.key_at(pos) == key).then_some(pos)
    }

    /// Like [`Level::gallop_at_or_after`], over the staging sorted view.
    fn gallop_at_or_after(&self, from: usize, key: &Key) -> usize {
        if self.pack {
            let v = key.to_u128().expect("≤128-bit keys always fit a u128");
            crate::simd::lower_bound_u128_from(&self.packed, from, v)
        } else {
            self.position_at_or_after(key).max(from)
        }
    }

    /// Inserts a new cell at sorted position `pos`.
    fn insert_cell(&mut self, pos: usize, key: Key, bucket: Bucket<V>) {
        let slot = self.slab.len() as u32;
        if self.pack {
            self.packed
                .insert(pos, key.to_u128().expect("≤128-bit keys fit"));
        }
        self.slab.push((key, bucket));
        self.order.insert(pos, slot);
    }

    /// Removes the cell at sorted position `i` from the view (its slab slot
    /// becomes a hole) and returns its slot index.
    fn remove_cell(&mut self, i: usize) -> usize {
        if self.pack {
            self.packed.remove(i);
        }
        self.order.remove(i) as usize
    }

    /// Consumes the staging level, yielding the live cells in key order.
    fn into_sorted(self) -> Vec<(Key, Bucket<V>)> {
        let mut slots: Vec<Option<(Key, Bucket<V>)>> = self.slab.into_iter().map(Some).collect();
        self.order
            .into_iter()
            .map(|s| {
                slots[s as usize]
                    .take()
                    .expect("order references live slots")
            })
            .collect()
    }

    fn clear(&mut self) {
        self.packed.clear();
        self.order.clear();
        self.slab.clear();
    }
}

/// Minimum staging size before a merge is considered.
const MERGE_MIN_CELLS: usize = 64;

/// Staging capacity for a main level of `main_cells` cells. The two
/// per-insert costs pull in opposite directions — the sorted-view memmove
/// grows with the capacity while the amortized main rebuild shrinks with it
/// — so the optimum scales with `√main_cells`; the constant was measured
/// (the thin 20-byte view keeps large staging levels cheap, so rebuilds
/// dominate and a generous capacity wins).
fn staging_capacity(main_cells: usize) -> usize {
    MERGE_MIN_CELLS.max(32 * main_cells.isqrt())
}

/// An ordered index of points sorted by their space-filling-curve keys,
/// stored as flat sorted arrays (see the [module docs](self) for the
/// layout).
///
/// Multiple values may be stored at the same cell (several subscriptions can
/// map to the same 2β-dimensional point); they are kept in insertion order.
///
/// # Example
///
/// ```
/// use acd_sfc::{SfcArray, Universe, Point, ZCurve};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let universe = Universe::new(2, 4)?;
/// let mut array = SfcArray::new(ZCurve::new(universe));
/// array.insert(Point::new(vec![3, 7])?, "sub-1")?;
/// array.insert(Point::new(vec![3, 7])?, "sub-2")?;
/// assert_eq!(array.len(), 2);
/// assert_eq!(array.values_at(&Point::new(vec![3, 7])?)?.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct SfcArray<V, C = crate::zorder::ZCurve> {
    curve: C,
    main: Level<V>,
    staging: Staging<V>,
    len: usize,
}

impl<V, C: SpaceFillingCurve> fmt::Debug for SfcArray<V, C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SfcArray")
            .field("curve", &self.curve.kind())
            .field("cells", &self.occupied_cells())
            .field("staged_cells", &self.staging.cells())
            .field("len", &self.len)
            .finish()
    }
}

impl<V, C: SpaceFillingCurve> SfcArray<V, C> {
    /// Creates an empty array ordered by `curve`.
    pub fn new(curve: C) -> Self {
        let pack = curve.universe().key_bits() <= 128;
        SfcArray {
            curve,
            main: Level::new(pack),
            staging: Staging::new(pack),
            len: 0,
        }
    }

    /// Bulk-builds the array from a batch of entries: every point is keyed,
    /// the batch is sorted *once* by key (stably, so duplicate cells keep
    /// their batch order), and the flat sorted layout is written directly —
    /// no staging, no per-insert searches. When keys fit 128 bits the sort
    /// runs over thin *(packed key, index)* pairs and the fat entries are
    /// gathered afterwards in one pass. This is the fast path for
    /// populating an index from a known subscription set and is several
    /// times faster than `n` calls to [`insert`](SfcArray::insert).
    ///
    /// # Errors
    ///
    /// Returns an error if any point is outside the curve's universe (the
    /// array is not constructed in that case).
    pub fn from_sorted(curve: C, entries: Vec<(Point, V)>) -> Result<Self> {
        let pack = curve.universe().key_bits() <= 128;
        let len = entries.len();
        let mut main = Level::new(pack);
        main.keys.reserve(len);
        main.buckets.reserve(len);

        if pack {
            // Thin sort: order (packed key, original index) pairs, then
            // gather the fat entries once in sorted order; the `Key`s are
            // rebuilt inline from the packed values, so only the entries
            // themselves are moved. The index tiebreak makes the unstable
            // sort behave stably.
            let bits = curve.universe().key_bits();
            let mut order: Vec<(u128, u32)> = Vec::with_capacity(len);
            let mut payload: Vec<Option<SfcEntry<V>>> = Vec::with_capacity(len);
            for (i, (point, value)) in entries.into_iter().enumerate() {
                let key = curve.key_of_point(&point)?;
                order.push((key.to_u128().expect("≤128-bit keys fit"), i as u32));
                payload.push(Some(SfcEntry { point, value }));
            }
            order.sort_unstable();
            main.packed.reserve(len);
            for (packed, i) in order {
                let entry = payload[i as usize].take().expect("each index taken once");
                main.push_packed_grouped(packed, bits, entry);
            }
        } else {
            let mut keyed: Vec<(Key, SfcEntry<V>)> = entries
                .into_iter()
                .map(|(point, value)| {
                    let key = curve.key_of_point(&point)?;
                    Ok((key, SfcEntry { point, value }))
                })
                .collect::<Result<_>>()?;
            // Stable sort: entries at the same cell stay in batch order.
            keyed.sort_by(|a, b| a.0.cmp(&b.0));
            for (key, entry) in keyed {
                if main.keys.last() == Some(&key) {
                    main.buckets
                        .last_mut()
                        .expect("buckets parallel keys")
                        .push(entry);
                } else {
                    main.push_cell(key, Bucket::One(entry));
                }
            }
        }
        Ok(SfcArray {
            curve,
            main,
            staging: Staging::new(pack),
            len,
        })
    }

    /// Bulk-builds the array from entries **already in curve-key order**,
    /// each carrying its packed ≤128-bit key: no keying, no sort — one
    /// gather pass straight into the flat layout. This is the segment-load
    /// fast path of the storage layer: a segment file stores exactly the
    /// stream [`sorted_cells`](SfcArray::sorted_cells) exported, so opening
    /// it skips the two costs that dominate
    /// [`from_sorted`](SfcArray::from_sorted) (the per-point keying pass and
    /// the sort).
    ///
    /// Every entry is still validated — the point must lie inside the
    /// curve's universe and the packed key must fit its width — so a
    /// corrupt-but-checksum-valid batch cannot construct a malformed array.
    /// The keys are **trusted** to be the curve keys of their points (the
    /// storage layer guards this with its checksums); duplicate keys group
    /// into one cell in batch order, exactly as `from_sorted` would.
    ///
    /// Accepts any iterator so the segment loader can stream decoded rows
    /// straight off its column slices — cold open never materializes an
    /// intermediate entry vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the universe's keys exceed 128 bits, a key
    /// decreases ([`crate::SfcError::UnsortedBatch`]), a key does not fit
    /// the universe's width, or a point lies outside the universe.
    pub fn from_sorted_packed<I>(curve: C, entries: I) -> Result<Self>
    where
        I: IntoIterator<Item = (u128, Point, V)>,
    {
        let universe = curve.universe().clone();
        let bits = universe.key_bits();
        if bits > 128 {
            return Err(crate::SfcError::KeyLengthMismatch {
                expected: bits,
                actual: 128,
            });
        }
        let entries = entries.into_iter();
        let mut main = Level::new(true);
        let (reserve, _) = entries.size_hint();
        main.keys.reserve(reserve);
        main.buckets.reserve(reserve);
        main.packed.reserve(reserve);
        let mut prev = 0u128;
        let mut len = 0usize;
        for (index, (packed, point, value)) in entries.enumerate() {
            if bits < 128 && packed >> bits != 0 {
                return Err(crate::SfcError::KeyLengthMismatch {
                    expected: bits,
                    actual: 128 - packed.leading_zeros(),
                });
            }
            if packed < prev {
                return Err(crate::SfcError::UnsortedBatch { index });
            }
            prev = packed;
            universe.validate_point(&point)?;
            main.push_packed_grouped(packed, bits, SfcEntry { point, value });
            len += 1;
        }
        Ok(SfcArray {
            curve,
            main,
            staging: Staging::new(true),
            len,
        })
    }

    /// All occupied cells in key order, merged across the two levels: each
    /// item is the cell's key plus the entries stored there. This is the
    /// column-wise export stream consumed by segment persistence — the same
    /// order [`from_sorted_packed`](SfcArray::from_sorted_packed) accepts
    /// back, so a save/load round trip never re-sorts. Because the view
    /// merges staging into the stream, saving through it *flushes* the
    /// staging level: the reloaded array is fully compacted.
    pub fn sorted_cells(&self) -> impl Iterator<Item = (&Key, &[SfcEntry<V>])> {
        self.cells().map(|(key, entries)| (key, entries.as_slice()))
    }

    /// The curve that orders this array.
    pub fn curve(&self) -> &C {
        &self.curve
    }

    /// Number of stored entries (counting duplicates at the same cell).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct cells that hold at least one entry.
    pub fn occupied_cells(&self) -> usize {
        self.main.cells() + self.staging.cells()
    }

    /// Merges the staging level into the main level (one linear pass over
    /// both sorted views). The levels hold disjoint cell sets by
    /// construction, so buckets never need to be concatenated.
    fn merge_staging(&mut self) {
        if self.staging.cells() == 0 {
            // Nothing live to merge — but drop any slab holes left by
            // removals so churn cannot accumulate dead payloads.
            self.staging.clear();
            return;
        }
        let pack = self.main.pack;
        let main = std::mem::replace(&mut self.main, Level::new(pack));
        let staging = std::mem::replace(&mut self.staging, Staging::new(pack));
        let total = main.cells() + staging.cells();
        let mut merged = Level::new(pack);
        merged.keys.reserve(total);
        merged.buckets.reserve(total);
        if pack {
            merged.packed.reserve(total);
        }

        let mut a = main.keys.into_iter().zip(main.buckets).peekable();
        let mut b = staging.into_sorted().into_iter().peekable();
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some((ka, _)), Some((kb, _))) => ka < kb,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (k, bucket) = if take_a {
                a.next().expect("peeked")
            } else {
                b.next().expect("peeked")
            };
            merged.push_cell(k, bucket);
        }
        self.main = merged;
    }

    /// Inserts `value` at `point`.
    ///
    /// An insert into an already-occupied cell appends to that cell's bucket
    /// in place; a new cell goes to the staging level, which is merged into
    /// the main level once it grows past a fraction of the main size (so the
    /// amortized cost stays flat on dynamic workloads).
    ///
    /// # Errors
    ///
    /// Returns an error if the point is outside the curve's universe.
    pub fn insert(&mut self, point: Point, value: V) -> Result<()> {
        let key = self.curve.key_of_point(&point)?;
        let entry = SfcEntry { point, value };
        if let Some(idx) = self.main.find(&key) {
            self.main.buckets[idx].push(entry);
        } else {
            match self.staging.find(&key) {
                Some(idx) => self.staging.bucket_mut(idx).push(entry),
                None => {
                    let pos = self.staging.position_at_or_after(&key);
                    self.staging.insert_cell(pos, key, Bucket::One(entry));
                    if self.staging.cells() >= staging_capacity(self.main.cells()) {
                        self.merge_staging();
                    }
                }
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Removes the first entry at `point` for which `pred` returns true and
    /// returns its value, or `None` if no entry matched.
    ///
    /// # Errors
    ///
    /// Returns an error if the point is outside the curve's universe.
    pub fn remove_if<F>(&mut self, point: &Point, mut pred: F) -> Result<Option<V>>
    where
        F: FnMut(&V) -> bool,
    {
        let key = self.curve.key_of_point(point)?;
        if let Some(idx) = self.main.find(&key) {
            let bucket = &mut self.main.buckets[idx];
            let Some(pos) = bucket.as_slice().iter().position(|e| pred(&e.value)) else {
                return Ok(None);
            };
            self.len -= 1;
            let removed = match bucket {
                Bucket::Many(v) if v.len() > 1 => v.remove(pos).value,
                _ => match self.main.remove_cell(idx) {
                    Bucket::One(e) => e.value,
                    Bucket::Many(mut v) => v.remove(pos).value,
                },
            };
            return Ok(Some(removed));
        }
        if let Some(idx) = self.staging.find(&key) {
            let bucket = self.staging.bucket_mut(idx);
            let Some(pos) = bucket.as_slice().iter().position(|e| pred(&e.value)) else {
                return Ok(None);
            };
            self.len -= 1;
            let removed = match bucket {
                Bucket::Many(v) if v.len() > 1 => v.remove(pos).value,
                _ => {
                    // Last entry at the cell: drop the cell from the view and
                    // swap the whole payload — key included — out of the slab
                    // hole. Leaving the key behind would keep a dead (and for
                    // wide universes, heap-allocated) payload alive until the
                    // next merge, and a hole must never look like a live cell
                    // to any future reader of the slab: only `order` defines
                    // liveness, and the merge consumes exactly `order`.
                    let slot = self.staging.remove_cell(idx);
                    let (_, bucket) = std::mem::replace(
                        &mut self.staging.slab[slot],
                        (Key::zero(0), Bucket::Many(Vec::new())),
                    );
                    match bucket {
                        Bucket::One(e) => e.value,
                        Bucket::Many(mut v) => v.remove(pos).value,
                    }
                }
            };
            // Insert/remove churn leaves holes in the slab; once they
            // outnumber the live cells, fold staging into main (the merge
            // keeps only live cells), so slab memory stays bounded by the
            // live staging size instead of growing with total churn.
            if self.staging.slab.len() > 2 * self.staging.cells() + MERGE_MIN_CELLS {
                self.merge_staging();
            }
            return Ok(Some(removed));
        }
        Ok(None)
    }

    /// All values stored at exactly `point`.
    ///
    /// # Errors
    ///
    /// Returns an error if the point is outside the curve's universe.
    pub fn values_at(&self, point: &Point) -> Result<Vec<&V>> {
        let key = self.curve.key_of_point(point)?;
        if let Some(idx) = self.main.find(&key) {
            return Ok(self.main.buckets[idx]
                .as_slice()
                .iter()
                .map(|e| &e.value)
                .collect());
        }
        if let Some(idx) = self.staging.find(&key) {
            return Ok(self
                .staging
                .cell(idx)
                .1
                .as_slice()
                .iter()
                .map(|e| &e.value)
                .collect());
        }
        Ok(Vec::new())
    }

    /// Returns the smallest populated key at-or-after `key` together with
    /// the entries stored at that cell, if any — two binary searches over
    /// the flat key views. This is the "galloping" primitive of the
    /// populated-key query sweep (which uses the stateful
    /// [`sweep_cursor`](SfcArray::sweep_cursor) form); the key and bucket
    /// are borrowed straight from the array.
    pub fn first_key_at_or_after(&self, key: &Key) -> Option<(&Key, &[SfcEntry<V>])> {
        let m = self.main.position_at_or_after(key);
        let s = self.staging.position_at_or_after(key);
        let a = self
            .main
            .keys
            .get(m)
            .map(|k| (k, self.main.buckets[m].as_slice()));
        let b = (s < self.staging.cells()).then(|| {
            let (k, bucket) = self.staging.cell(s);
            (k, bucket.as_slice())
        });
        match (a, b) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
            (a, b) => a.or(b),
        }
    }

    /// Returns the first entry whose key falls in `range`, if any. This is
    /// the "probe a run" primitive of the paper's query algorithm: it costs
    /// two binary searches regardless of how large the run is.
    pub fn first_in_range(&self, range: &KeyRange) -> Option<&SfcEntry<V>> {
        self.first_key_at_or_after(range.lo())
            .filter(|(k, _)| *k <= range.hi())
            .and_then(|(_, bucket)| bucket.first())
    }

    /// Returns the first entry in `range` whose value satisfies `pred`.
    /// Entries are visited in key order.
    pub fn first_in_range_where<F>(&self, range: &KeyRange, mut pred: F) -> Option<&SfcEntry<V>>
    where
        F: FnMut(&SfcEntry<V>) -> bool,
    {
        self.iter_range(range).find(|e| pred(e))
    }

    /// Whether any entry's key falls inside `range`.
    pub fn any_in_range(&self, range: &KeyRange) -> bool {
        self.first_in_range(range).is_some()
    }

    /// Number of entries whose keys fall inside `range`.
    pub fn count_in_range(&self, range: &KeyRange) -> usize {
        self.cells_in_range(range)
            .map(|(_, bucket)| bucket.len())
            .sum()
    }

    /// Iterates over all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &SfcEntry<V>> {
        self.cells().flat_map(|(_, bucket)| bucket)
    }

    /// Iterates over the entries whose keys fall inside `range`, in key
    /// order.
    pub fn iter_range<'a>(
        &'a self,
        range: &KeyRange,
    ) -> impl Iterator<Item = &'a SfcEntry<V>> + 'a {
        self.cells_in_range(range).flat_map(|(_, b)| b)
    }

    /// All occupied cells in key order, merged across the two levels.
    fn cells(&self) -> CellIter<'_, V> {
        CellIter {
            main_keys: &self.main.keys,
            main_buckets: &self.main.buckets,
            staging: &self.staging,
            s_lo: 0,
            s_hi: self.staging.cells(),
        }
    }

    /// The occupied cells whose keys fall inside `range`, in key order.
    fn cells_in_range(&self, range: &KeyRange) -> CellIter<'_, V> {
        let mlo = self.main.position_at_or_after(range.lo());
        let mhi = mlo + self.main.keys[mlo..].partition_point(|k| k <= range.hi());
        let slo = self.staging.position_at_or_after(range.lo());
        let shi = self.staging.position_after(range.hi());
        CellIter {
            main_keys: &self.main.keys[mlo..mhi],
            main_buckets: &self.main.buckets[mlo..mhi],
            staging: &self.staging,
            s_lo: slo,
            s_hi: shi,
        }
    }

    /// Removes every entry, keeping the curve.
    pub fn clear(&mut self) {
        self.main.clear();
        self.staging.clear();
        self.len = 0;
    }

    /// A forward-only cursor over the populated cells, for monotone sweeps:
    /// each [`next_at_or_after`](SweepCursor::next_at_or_after) call gallops
    /// from the cursor's previous position instead of binary-searching the
    /// whole array, so a sweep whose probe keys increase (the dominance
    /// query's populated-key sweep) pays `O(log gap)` per step with
    /// near-perfect cache locality — and borrows keys and buckets straight
    /// from the array, allocating nothing.
    pub fn sweep_cursor(&self) -> SweepCursor<'_, V> {
        SweepCursor {
            main: &self.main,
            staging: &self.staging,
            main_pos: 0,
            staging_pos: 0,
        }
    }
}

impl<V: Clone> SfcArray<V, crate::zorder::ZCurve> {
    /// Builds, with one keying pass and one sort, both the array over
    /// `entries` and the array over their component-wise *mirrored* points
    /// (each coordinate `c` becomes `2^k − 1 − c`).
    ///
    /// On the Z curve mirroring complements every coordinate bit, and
    /// interleaving preserves complement, so the mirrored key is the
    /// bitwise NOT of the forward key within the key width — the mirrored
    /// array is exactly the forward array traversed in reverse with
    /// complemented keys. This is the bulk-build fast path for dominance
    /// indexes that maintain a forward and a mirrored direction (covering
    /// and covered-by queries): the second direction costs one gather pass,
    /// not a second keying-and-sort.
    ///
    /// # Errors
    ///
    /// Returns an error if any point is outside the curve's universe.
    pub fn from_sorted_mirrored(
        curve: crate::zorder::ZCurve,
        entries: Vec<(Point, V)>,
    ) -> Result<(Self, Self)> {
        use crate::curve::SpaceFillingCurve as _;
        let universe = curve.universe().clone();
        let total = universe.key_bits();
        if total > 128 {
            // Wide universes take the generic two-pass path.
            let mirrored: Vec<(Point, V)> = entries
                .iter()
                .map(|(p, v)| Ok((p.mirrored(&universe)?, v.clone())))
                .collect::<Result<_>>()?;
            let fwd = Self::from_sorted(curve.clone(), entries)?;
            let mir = Self::from_sorted(curve, mirrored)?;
            return Ok((fwd, mir));
        }
        let mask = if total == 128 {
            u128::MAX
        } else {
            (1u128 << total) - 1
        };
        let len = entries.len();
        let mut order: Vec<(u128, u32)> = Vec::with_capacity(len);
        let mut payload: Vec<Option<SfcEntry<V>>> = Vec::with_capacity(len);
        for (i, (point, value)) in entries.into_iter().enumerate() {
            let key = curve.key_of_point(&point)?;
            order.push((key.to_u128().expect("≤128-bit keys fit"), i as u32));
            payload.push(Some(SfcEntry { point, value }));
        }
        order.sort_unstable();

        let mut fwd = Level::new(true);
        fwd.keys.reserve(len);
        fwd.packed.reserve(len);
        fwd.buckets.reserve(len);
        // Mirrored entries in forward key order; consumed in reverse below.
        let mut mir_entries: Vec<SfcEntry<V>> = Vec::with_capacity(len);
        for &(packed, i) in &order {
            let entry = payload[i as usize].take().expect("each index taken once");
            mir_entries.push(SfcEntry {
                point: entry
                    .point
                    .mirrored(&universe)
                    .expect("stored points are in the universe"),
                value: entry.value.clone(),
            });
            fwd.push_packed_grouped(packed, total, entry);
        }

        let mut mir = Level::new(true);
        mir.keys.reserve(len);
        mir.packed.reserve(len);
        mir.buckets.reserve(len);
        for (&(packed, _), entry) in order.iter().rev().zip(mir_entries.into_iter().rev()) {
            mir.push_packed_grouped(!packed & mask, total, entry);
        }
        // The reverse traversal reverses within-cell entry order; restore
        // the batch order inside duplicate cells.
        for bucket in mir.buckets.iter_mut() {
            if let Bucket::Many(v) = bucket {
                v.reverse();
            }
        }

        Ok((
            SfcArray {
                curve: curve.clone(),
                main: fwd,
                staging: Staging::new(true),
                len,
            },
            SfcArray {
                curve,
                main: mir,
                staging: Staging::new(true),
                len,
            },
        ))
    }
}

/// Forward-only galloping cursor created by [`SfcArray::sweep_cursor`].
///
/// The probe keys passed to
/// [`next_at_or_after`](SweepCursor::next_at_or_after) must be
/// non-decreasing; the cursor never rewinds. Cloning is cheap (two shared
/// references and two positions) — the batched query kernel keeps one
/// *seed* cursor advanced along the sorted batch and clones it as the
/// starting position of each per-query sweep.
#[derive(Debug)]
pub struct SweepCursor<'a, V> {
    main: &'a Level<V>,
    staging: &'a Staging<V>,
    main_pos: usize,
    staging_pos: usize,
}

// Manual impl: a derive would demand `V: Clone`, but only references are
// copied here.
impl<V> Clone for SweepCursor<'_, V> {
    fn clone(&self) -> Self {
        SweepCursor {
            main: self.main,
            staging: self.staging,
            main_pos: self.main_pos,
            staging_pos: self.staging_pos,
        }
    }
}

impl<'a, V> SweepCursor<'a, V> {
    /// The smallest populated key at-or-after `key` together with the
    /// entries stored at that cell, or `None` if no such cell remains.
    /// Equivalent to [`SfcArray::first_key_at_or_after`] for non-decreasing
    /// probe keys, at a fraction of the per-step cost.
    // acd-lint: hot
    pub fn next_at_or_after(&mut self, key: &Key) -> Option<(&'a Key, &'a [SfcEntry<V>])> {
        self.main_pos = self.main.gallop_at_or_after(self.main_pos, key);
        self.staging_pos = self.staging.gallop_at_or_after(self.staging_pos, key);
        let a = self
            .main
            .keys
            .get(self.main_pos)
            .map(|k| (k, self.main.buckets[self.main_pos].as_slice()));
        let b = (self.staging_pos < self.staging.cells()).then(|| {
            let (k, bucket) = self.staging.cell(self.staging_pos);
            (k, bucket.as_slice())
        });
        match (a, b) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
            (a, b) => a.or(b),
        }
    }
}

/// Merging iterator over the cells of the two sorted levels (whose key sets
/// are disjoint), in increasing key order.
struct CellIter<'a, V> {
    main_keys: &'a [Key],
    main_buckets: &'a [Bucket<V>],
    staging: &'a Staging<V>,
    s_lo: usize,
    s_hi: usize,
}

impl<'a, V> Iterator for CellIter<'a, V> {
    type Item = (&'a Key, std::slice::Iter<'a, SfcEntry<V>>);

    fn next(&mut self) -> Option<Self::Item> {
        let staged = (self.s_lo < self.s_hi).then(|| self.staging.cell(self.s_lo));
        let take_main = match (self.main_keys.first(), &staged) {
            (Some(a), Some((b, _))) => a < b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_main {
            let (key, rest_keys) = self.main_keys.split_first().expect("non-empty");
            let (bucket, rest_buckets) = self.main_buckets.split_first().expect("parallel");
            self.main_keys = rest_keys;
            self.main_buckets = rest_buckets;
            Some((key, bucket.as_slice().iter()))
        } else {
            let (key, bucket) = staged.expect("checked non-empty");
            self.s_lo += 1;
            Some((key, bucket.as_slice().iter()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use crate::zorder::ZCurve;

    fn array() -> SfcArray<u32> {
        SfcArray::new(ZCurve::new(Universe::new(2, 4).unwrap()))
    }

    fn p(x: u64, y: u64) -> Point {
        Point::new(vec![x, y]).unwrap()
    }

    #[test]
    fn insert_len_and_values_at() {
        let mut a = array();
        assert!(a.is_empty());
        a.insert(p(1, 2), 10).unwrap();
        a.insert(p(1, 2), 11).unwrap();
        a.insert(p(9, 9), 12).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.occupied_cells(), 2);
        assert_eq!(a.values_at(&p(1, 2)).unwrap(), vec![&10, &11]);
        assert!(a.values_at(&p(0, 0)).unwrap().is_empty());
    }

    #[test]
    fn insert_rejects_points_outside_universe() {
        let mut a = array();
        assert!(a.insert(p(16, 0), 1).is_err());
        assert!(a.is_empty());
    }

    #[test]
    fn remove_if_removes_only_matching_values() {
        let mut a = array();
        a.insert(p(4, 4), 1).unwrap();
        a.insert(p(4, 4), 2).unwrap();
        assert_eq!(a.remove_if(&p(4, 4), |v| *v == 2).unwrap(), Some(2));
        assert_eq!(a.remove_if(&p(4, 4), |v| *v == 2).unwrap(), None);
        assert_eq!(a.len(), 1);
        assert_eq!(a.remove_if(&p(4, 4), |_| true).unwrap(), Some(1));
        assert_eq!(a.occupied_cells(), 0);
        assert_eq!(a.remove_if(&p(4, 4), |_| true).unwrap(), None);
    }

    #[test]
    fn range_probes_find_points_in_key_order() {
        let u = Universe::new(2, 4).unwrap();
        let z = ZCurve::new(u.clone());
        let mut a = array();
        a.insert(p(0, 0), 1).unwrap();
        a.insert(p(15, 15), 2).unwrap();
        a.insert(p(8, 8), 3).unwrap();

        let full = KeyRange::new(Key::zero(8), Key::max_value(8)).unwrap();
        assert_eq!(a.count_in_range(&full), 3);
        assert_eq!(a.first_in_range(&full).unwrap().value, 1);

        // A range that contains only the upper-right quadrant.
        let cube = crate::cube::StandardCube::new(&u, vec![8, 8], 3).unwrap();
        let quad = z.cube_key_range(&cube).unwrap();
        assert_eq!(a.count_in_range(&quad), 2);
        assert_eq!(a.first_in_range(&quad).unwrap().value, 3);
        let ordered: Vec<u32> = a.iter_range(&quad).map(|e| e.value).collect();
        assert_eq!(ordered, vec![3, 2]);
        assert!(a.any_in_range(&quad));
    }

    #[test]
    fn first_key_at_or_after_gallops_over_gaps() {
        let u = Universe::new(2, 4).unwrap();
        let z = ZCurve::new(u);
        let mut a = array();
        a.insert(p(1, 2), 1).unwrap();
        a.insert(p(9, 9), 2).unwrap();
        let k1 = z.key_of_point(&p(1, 2)).unwrap();
        let k2 = z.key_of_point(&p(9, 9)).unwrap();
        let at = |key: &Key| a.first_key_at_or_after(key).map(|(k, b)| (k, b.len()));
        assert_eq!(at(&Key::zero(8)), Some((&k1, 1)));
        assert_eq!(at(&k1), Some((&k1, 1)));
        assert_eq!(at(&k1.successor().unwrap()), Some((&k2, 1)));
        assert_eq!(at(&k2.successor().unwrap()), None);
    }

    #[test]
    fn sweep_cursor_agrees_with_stateless_gallop() {
        let u = Universe::new(2, 5).unwrap();
        let curve = ZCurve::new(u);
        let mut a: SfcArray<u32, ZCurve> = SfcArray::new(curve.clone());
        let mut state = 0xbeefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 32
        };
        for i in 0..200u32 {
            a.insert(p(next(), next()), i).unwrap();
        }
        // A monotone sweep over every populated key must match the
        // stateless search.
        let mut cursor = a.sweep_cursor();
        let mut probe = Some(Key::zero(10));
        while let Some(key) = probe {
            let fast = cursor.next_at_or_after(&key).map(|(k, b)| (k, b.len()));
            let slow = a.first_key_at_or_after(&key).map(|(k, b)| (k, b.len()));
            assert_eq!(fast, slow, "at {key}");
            probe = match slow {
                Some((k, _)) => k.successor(),
                None => None,
            };
        }
    }

    #[test]
    fn first_in_range_where_filters_values() {
        let mut a = array();
        a.insert(p(1, 1), 7).unwrap();
        a.insert(p(2, 2), 8).unwrap();
        let full = KeyRange::new(Key::zero(8), Key::max_value(8)).unwrap();
        let found = a.first_in_range_where(&full, |e| e.value % 2 == 0).unwrap();
        assert_eq!(found.value, 8);
        assert!(a.first_in_range_where(&full, |e| e.value > 100).is_none());
    }

    #[test]
    fn iter_visits_entries_in_key_order() {
        let mut a = array();
        a.insert(p(15, 0), 1).unwrap();
        a.insert(p(0, 0), 2).unwrap();
        a.insert(p(0, 15), 3).unwrap();
        let curve = ZCurve::new(Universe::new(2, 4).unwrap());
        let keys: Vec<u128> = a
            .iter()
            .map(|e| curve.key_of_point(&e.point).unwrap().to_u128().unwrap())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn from_sorted_matches_incremental_inserts() {
        let u = Universe::new(2, 4).unwrap();
        let mut state = 0xdadau64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 16
        };
        let batch: Vec<(Point, u32)> = (0..300u32).map(|i| (p(next(), next()), i)).collect();
        let bulk = SfcArray::from_sorted(ZCurve::new(u.clone()), batch.clone()).unwrap();
        let mut incremental = SfcArray::new(ZCurve::new(u));
        for (point, v) in batch {
            incremental.insert(point, v).unwrap();
        }
        assert_eq!(bulk.len(), incremental.len());
        assert_eq!(bulk.occupied_cells(), incremental.occupied_cells());
        let collect = |a: &SfcArray<u32>| -> Vec<(Point, u32)> {
            a.iter().map(|e| (e.point.clone(), e.value)).collect()
        };
        assert_eq!(collect(&bulk), collect(&incremental));
        // The bulk path leaves nothing staged.
        assert_eq!(bulk.staging.cells(), 0);
    }

    #[test]
    fn from_sorted_rejects_out_of_universe_points() {
        let u = Universe::new(2, 4).unwrap();
        let batch = vec![(p(1, 1), 1u32), (p(16, 0), 2)];
        assert!(SfcArray::from_sorted(ZCurve::new(u), batch).is_err());
    }

    #[test]
    fn staging_merges_keep_reads_consistent() {
        // Enough distinct cells to force several staging merges; reads must
        // see every entry in key order throughout.
        let u = Universe::new(2, 5).unwrap();
        let curve = ZCurve::new(u);
        let mut a: SfcArray<u32, ZCurve> = SfcArray::new(curve.clone());
        let mut state = 0x5eedu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 32
        };
        let mut inserted = Vec::new();
        for i in 0..500u32 {
            let point = p(next(), next());
            inserted.push((curve.key_of_point(&point).unwrap(), i));
            a.insert(point, i).unwrap();
        }
        assert_eq!(a.len(), 500);
        // Full iteration in key order sees everything.
        let keys: Vec<Key> = a
            .iter()
            .map(|e| curve.key_of_point(&e.point).unwrap())
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(keys.len(), 500);
        // Galloping from every stored key lands on that key.
        for (key, _) in &inserted {
            let (found, bucket) = a.first_key_at_or_after(key).unwrap();
            assert_eq!(found, key);
            assert!(!bucket.is_empty());
        }
    }

    #[test]
    fn removals_from_staging_leave_consistent_views() {
        // Insert a handful (staying under the merge threshold so everything
        // is staged), remove some, and check iteration and counts.
        let mut a = array();
        for (i, (x, y)) in [(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)].iter().enumerate() {
            a.insert(p(*x, *y), i as u32).unwrap();
        }
        assert_eq!(a.remove_if(&p(5, 6), |_| true).unwrap(), Some(2));
        assert_eq!(a.remove_if(&p(1, 2), |_| true).unwrap(), Some(0));
        assert_eq!(a.len(), 3);
        assert_eq!(a.occupied_cells(), 3);
        let values: Vec<u32> = a.iter().map(|e| e.value).collect();
        assert_eq!(values.len(), 3);
        assert!(values.contains(&1) && values.contains(&3) && values.contains(&4));
        let full = KeyRange::new(Key::zero(8), Key::max_value(8)).unwrap();
        assert_eq!(a.count_in_range(&full), 3);
    }

    #[test]
    fn churn_does_not_grow_the_staging_slab_unboundedly() {
        // Alternating insert/remove of fresh cells (staying below the merge
        // threshold) must not accumulate slab holes forever.
        let mut a = array();
        for round in 0..10_000u64 {
            let point = p(round % 16, (round / 16) % 16);
            a.insert(point.clone(), round as u32).unwrap();
            assert_eq!(a.remove_if(&point, |_| true).unwrap(), Some(round as u32));
            assert!(a.is_empty());
            assert!(
                a.staging.slab.len() <= 2 * a.staging.cells() + MERGE_MIN_CELLS + 1,
                "slab grew to {} at round {round}",
                a.staging.slab.len()
            );
        }
    }

    #[test]
    fn removing_staged_cells_never_resurrects_them_on_merge() {
        // Regression pin for the staging-removal edge case: a key removed
        // while still resident in the thin-view staging level (not yet
        // merged into main) must stay gone when the staging level is next
        // merged — the slab hole left by the removal must not leak its
        // payload back into the main level.
        let u = Universe::new(2, 6).unwrap();
        let curve = ZCurve::new(u);
        let mut a: SfcArray<u32, ZCurve> = SfcArray::new(curve.clone());

        // Populate main with enough distinct cells to cross the merge
        // threshold, so subsequent inserts land in a fresh staging level.
        let mut id = 0u32;
        for x in 0..16u64 {
            for y in 0..16u64 {
                a.insert(p(x, y), id).unwrap();
                id += 1;
            }
        }
        assert!(a.main.cells() > 0, "main level must be populated");

        // Stage a handful of fresh cells (staying below the merge
        // threshold), including one duplicate cell.
        let victim = p(40, 40);
        let twin = p(41, 41);
        a.insert(victim.clone(), 1000).unwrap();
        a.insert(twin.clone(), 1001).unwrap();
        a.insert(twin.clone(), 1002).unwrap();
        assert!(a.staging.cells() >= 2, "cells must be staged, not merged");

        // Remove the staged victim entirely, and one of the twin's entries.
        assert_eq!(a.remove_if(&victim, |_| true).unwrap(), Some(1000));
        assert_eq!(a.remove_if(&twin, |&v| v == 1001).unwrap(), Some(1001));

        // Force the staging level to merge into main.
        a.merge_staging();
        assert_eq!(a.staging.cells(), 0);

        // The removed victim must not have resurrected...
        assert!(a.values_at(&victim).unwrap().is_empty());
        let victim_key = curve.key_of_point(&victim).unwrap();
        if let Some((k, _)) = a.first_key_at_or_after(&victim_key) {
            assert_ne!(k, &victim_key, "removed staged key resurrected");
        }
        // ...the twin's surviving entry must appear exactly once...
        assert_eq!(a.values_at(&twin).unwrap(), vec![&1002]);
        // ...and global accounting must agree with a full iteration.
        assert_eq!(a.len(), 256 + 1);
        assert_eq!(a.iter().count(), 256 + 1);

        // Re-inserting the victim's cell after its removal-then-merge
        // round trip yields exactly one entry there.
        a.insert(victim.clone(), 2000).unwrap();
        a.merge_staging();
        assert_eq!(a.values_at(&victim).unwrap(), vec![&2000]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = array();
        a.insert(p(3, 3), 9).unwrap();
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.occupied_cells(), 0);
    }
}
