//! Arbitrary-precision SFC keys and key ranges.
//!
//! A key for a `d`-dimensional universe with `k` bits per dimension has
//! exactly `d·k` bits. For realistic subscription workloads (`d = 2β` with
//! β up to 8–16 attributes, `k` up to 32 bits) this exceeds 128 bits, so keys
//! are stored as big-endian sequences of `u64` words with an explicit bit
//! length. Keys compare lexicographically, which for equal bit lengths is the
//! numeric order the space filling curve induces on cells.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::SfcError;
use crate::Result;

/// An SFC key: an unsigned integer of a fixed bit width (`d·k` bits),
/// ordered numerically.
///
/// # Example
///
/// ```
/// use acd_sfc::Key;
///
/// let a = Key::from_u128(5, 8);
/// let b = Key::from_u128(9, 8);
/// assert!(a < b);
/// assert_eq!(a.bits(), 8);
/// assert_eq!(a.to_u128(), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Key {
    /// Total number of significant bits. The value occupies the low
    /// `bits` bits of `words` interpreted as a big-endian number.
    bits: u32,
    /// Big-endian words: `words[0]` holds the most significant bits.
    /// Invariant: `words.len() == ceil(bits / 64)` and any unused high bits
    /// of `words[0]` are zero.
    words: Vec<u64>,
}

impl Key {
    /// Number of 64-bit words needed for `bits` bits.
    fn words_for(bits: u32) -> usize {
        (bits as usize).div_ceil(64)
    }

    /// Number of unused (always-zero) high bits in the first word.
    fn slack(bits: u32) -> u32 {
        (Self::words_for(bits) as u32) * 64 - bits
    }

    /// The all-zero key of the given width.
    pub fn zero(bits: u32) -> Self {
        Key {
            bits,
            words: vec![0; Self::words_for(bits).max(1)],
        }
    }

    /// The all-ones key (maximum value) of the given width.
    pub fn max_value(bits: u32) -> Self {
        let mut key = Key::zero(bits);
        for w in key.words.iter_mut() {
            *w = u64::MAX;
        }
        key.mask_slack();
        key
    }

    /// Builds a key of width `bits` from a `u128` value.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `bits` bits.
    pub fn from_u128(value: u128, bits: u32) -> Self {
        assert!(
            bits >= 128 || value < (1u128 << bits.min(127)) << (bits.min(128).saturating_sub(127)),
            "value {value} does not fit in {bits} bits"
        );
        let mut key = Key::zero(bits);
        let n = key.words.len();
        if n >= 1 {
            key.words[n - 1] = value as u64;
        }
        if n >= 2 {
            key.words[n - 2] = (value >> 64) as u64;
        }
        key.mask_slack();
        key
    }

    /// Returns the value as a `u128` if it fits, `None` otherwise.
    pub fn to_u128(&self) -> Option<u128> {
        let n = self.words.len();
        if n > 2 && self.words[..n - 2].iter().any(|&w| w != 0) {
            return None;
        }
        let lo = self.words[n - 1] as u128;
        let hi = if n >= 2 { self.words[n - 2] as u128 } else { 0 };
        Some((hi << 64) | lo)
    }

    /// Width of the key in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Zeroes out the unused high bits of the first word.
    fn mask_slack(&mut self) {
        let slack = Self::slack(self.bits);
        if slack > 0 && slack < 64 {
            self.words[0] &= u64::MAX >> slack;
        } else if slack >= 64 {
            // Can only happen for bits == 0 with one allocated word.
            self.words[0] = 0;
        }
    }

    /// Gets bit `index`, where index 0 is the least significant bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.bits()`.
    pub fn bit(&self, index: u32) -> bool {
        assert!(index < self.bits, "bit index {index} out of range");
        let pos = self.bits - 1 - index + Self::slack(self.bits);
        let word = (pos / 64) as usize;
        let offset = 63 - (pos % 64);
        (self.words[word] >> offset) & 1 == 1
    }

    /// Sets bit `index` (LSB = 0) to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.bits()`.
    pub fn set_bit(&mut self, index: u32, value: bool) {
        assert!(index < self.bits, "bit index {index} out of range");
        let pos = self.bits - 1 - index + Self::slack(self.bits);
        let word = (pos / 64) as usize;
        let offset = 63 - (pos % 64);
        if value {
            self.words[word] |= 1u64 << offset;
        } else {
            self.words[word] &= !(1u64 << offset);
        }
    }

    /// Returns a copy with the low `low_bits` bits cleared.
    ///
    /// Used to form the first key of a standard cube from the key of any cell
    /// inside it: the cube at level `ℓ` shares the top `d·ℓ` bits.
    pub fn with_low_bits_cleared(&self, low_bits: u32) -> Key {
        let mut out = self.clone();
        for i in 0..low_bits.min(self.bits) {
            out.set_bit(i, false);
        }
        out
    }

    /// Returns a copy with the low `low_bits` bits set to one.
    pub fn with_low_bits_set(&self, low_bits: u32) -> Key {
        let mut out = self.clone();
        for i in 0..low_bits.min(self.bits) {
            out.set_bit(i, true);
        }
        out
    }

    /// The key immediately after this one, or `None` if this is the maximum.
    pub fn successor(&self) -> Option<Key> {
        let mut out = self.clone();
        for w in out.words.iter_mut().rev() {
            let (new, overflow) = w.overflowing_add(1);
            *w = new;
            if !overflow {
                // Check the carry did not escape past the significant bits.
                let mut check = out.clone();
                check.mask_slack();
                if check == out {
                    return Some(out);
                }
                return None;
            }
        }
        None
    }

    /// The key immediately before this one, or `None` if this is zero.
    pub fn predecessor(&self) -> Option<Key> {
        if self.is_zero() {
            return None;
        }
        let mut out = self.clone();
        for w in out.words.iter_mut().rev() {
            let (new, borrow) = w.overflowing_sub(1);
            *w = new;
            if !borrow {
                break;
            }
        }
        out.mask_slack();
        Some(out)
    }

    /// Whether the key is all zeros.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Validates that the key has the expected number of bits.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::KeyLengthMismatch`] on a mismatch.
    pub fn expect_bits(&self, expected: u32) -> Result<()> {
        if self.bits != expected {
            return Err(SfcError::KeyLengthMismatch {
                expected,
                actual: self.bits,
            });
        }
        Ok(())
    }

    /// Lexicographic (numeric) comparison of the underlying words, ignoring
    /// bit-width differences. Keys of different widths should not normally be
    /// compared; in debug builds this asserts equal widths.
    fn cmp_words(&self, other: &Self) -> Ordering {
        debug_assert_eq!(
            self.bits, other.bits,
            "comparing keys of different bit widths"
        );
        self.words.cmp(&other.words)
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_words(other)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hexadecimal, most significant word first, without leading zeros
        // beyond the first digit.
        let mut started = false;
        for (i, w) in self.words.iter().enumerate() {
            if !started {
                if *w == 0 && i + 1 != self.words.len() {
                    continue;
                }
                write!(f, "{w:x}")?;
                started = true;
            } else {
                write!(f, "{w:016x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::LowerHex for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Binary for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.bits).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// An inclusive range of keys `[lo, hi]`, used to describe the segment of the
/// SFC array occupied by a standard cube or a run.
///
/// # Example
///
/// ```
/// use acd_sfc::{Key, KeyRange};
///
/// let r = KeyRange::new(Key::from_u128(4, 8), Key::from_u128(7, 8)).unwrap();
/// assert!(r.contains(&Key::from_u128(5, 8)));
/// assert!(!r.contains(&Key::from_u128(8, 8)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyRange {
    lo: Key,
    hi: Key,
}

impl KeyRange {
    /// Creates the inclusive range `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::Empty`] if `lo > hi` and
    /// [`SfcError::KeyLengthMismatch`] if the bit widths differ.
    pub fn new(lo: Key, hi: Key) -> Result<Self> {
        hi.expect_bits(lo.bits())?;
        if lo > hi {
            return Err(SfcError::Empty);
        }
        Ok(KeyRange { lo, hi })
    }

    /// Lower (inclusive) endpoint.
    pub fn lo(&self) -> &Key {
        &self.lo
    }

    /// Upper (inclusive) endpoint.
    pub fn hi(&self) -> &Key {
        &self.hi
    }

    /// Whether `key` lies in the range.
    pub fn contains(&self, key: &Key) -> bool {
        *key >= self.lo && *key <= self.hi
    }

    /// Whether this range ends immediately before `next` begins, so that the
    /// two can be merged into a single run.
    pub fn is_adjacent_to(&self, next: &KeyRange) -> bool {
        match self.hi.successor() {
            Some(succ) => succ == next.lo,
            None => false,
        }
    }

    /// Whether this range overlaps `other`.
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Merges this range with an adjacent or overlapping range.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the ranges are neither adjacent nor
    /// overlapping.
    pub fn merge(&self, other: &KeyRange) -> KeyRange {
        debug_assert!(
            self.overlaps(other) || self.is_adjacent_to(other) || other.is_adjacent_to(self)
        );
        KeyRange {
            lo: self.lo.clone().min(other.lo.clone()),
            hi: self.hi.clone().max(other.hi.clone()),
        }
    }

    /// Number of keys in the range if it fits in a `u128`.
    pub fn len(&self) -> Option<u128> {
        let lo = self.lo.to_u128()?;
        let hi = self.hi.to_u128()?;
        hi.checked_sub(lo)?.checked_add(1)
    }

    /// A key range is never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_and_to_u128_round_trip() {
        for bits in [1u32, 7, 8, 63, 64, 65, 127, 128, 130, 192] {
            let vals: Vec<u128> = vec![0, 1, 2, 5, 100, (1u128 << (bits.min(127))) - 1];
            for v in vals {
                if bits < 128 && v >= (1u128 << bits) {
                    continue;
                }
                let k = Key::from_u128(v, bits);
                assert_eq!(k.to_u128(), Some(v), "bits={bits} v={v}");
                assert_eq!(k.bits(), bits);
            }
        }
    }

    #[test]
    fn ordering_matches_numeric_order() {
        let mut keys: Vec<Key> = [0u128, 1, 5, 17, 255, 256, 1_000_000]
            .iter()
            .map(|&v| Key::from_u128(v, 96))
            .collect();
        let sorted = keys.clone();
        keys.reverse();
        keys.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn bit_get_and_set_round_trip() {
        let mut k = Key::zero(130);
        k.set_bit(0, true);
        k.set_bit(64, true);
        k.set_bit(129, true);
        assert!(k.bit(0));
        assert!(k.bit(64));
        assert!(k.bit(129));
        assert!(!k.bit(1));
        assert!(!k.bit(128));
        k.set_bit(64, false);
        assert!(!k.bit(64));
    }

    #[test]
    fn bit_positions_match_numeric_value() {
        let k = Key::from_u128(0b1011, 8);
        assert!(k.bit(0));
        assert!(k.bit(1));
        assert!(!k.bit(2));
        assert!(k.bit(3));
        assert!(!k.bit(7));
    }

    #[test]
    fn low_bits_cleared_and_set() {
        let k = Key::from_u128(0b1101_1011, 8);
        assert_eq!(k.with_low_bits_cleared(4).to_u128(), Some(0b1101_0000));
        assert_eq!(k.with_low_bits_set(4).to_u128(), Some(0b1101_1111));
    }

    #[test]
    fn successor_and_predecessor() {
        let k = Key::from_u128(41, 16);
        assert_eq!(k.successor().unwrap().to_u128(), Some(42));
        assert_eq!(k.predecessor().unwrap().to_u128(), Some(40));

        let max = Key::max_value(16);
        assert_eq!(max.to_u128(), Some(65535));
        assert!(max.successor().is_none());
        assert!(Key::zero(16).predecessor().is_none());
    }

    #[test]
    fn successor_carries_across_words() {
        let k = Key::from_u128(u64::MAX as u128, 80);
        let s = k.successor().unwrap();
        assert_eq!(s.to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn max_value_masks_slack_bits() {
        let max = Key::max_value(70);
        // The top word must only have 6 significant bits set.
        assert_eq!(max.to_u128(), Some((1u128 << 70) - 1));
        assert!(max.successor().is_none());
    }

    #[test]
    fn expect_bits_detects_mismatch() {
        let k = Key::zero(12);
        assert!(k.expect_bits(12).is_ok());
        assert!(matches!(
            k.expect_bits(16),
            Err(SfcError::KeyLengthMismatch {
                expected: 16,
                actual: 12
            })
        ));
    }

    #[test]
    fn display_formats() {
        let k = Key::from_u128(0xdead_beef, 64);
        assert_eq!(format!("{k}"), "deadbeef");
        assert_eq!(format!("{k:x}"), "deadbeef");
        let b = Key::from_u128(0b101, 4);
        assert_eq!(format!("{b:b}"), "0101");
    }

    #[test]
    fn key_range_construction_and_queries() {
        let lo = Key::from_u128(10, 32);
        let hi = Key::from_u128(20, 32);
        let r = KeyRange::new(lo.clone(), hi.clone()).unwrap();
        assert_eq!(r.len(), Some(11));
        assert!(r.contains(&Key::from_u128(10, 32)));
        assert!(r.contains(&Key::from_u128(20, 32)));
        assert!(!r.contains(&Key::from_u128(21, 32)));
        assert!(KeyRange::new(hi, lo).is_err());
    }

    #[test]
    fn key_range_adjacency_and_merge() {
        let a = KeyRange::new(Key::from_u128(0, 16), Key::from_u128(3, 16)).unwrap();
        let b = KeyRange::new(Key::from_u128(4, 16), Key::from_u128(7, 16)).unwrap();
        let c = KeyRange::new(Key::from_u128(9, 16), Key::from_u128(12, 16)).unwrap();
        assert!(a.is_adjacent_to(&b));
        assert!(!b.is_adjacent_to(&a));
        assert!(!b.is_adjacent_to(&c));
        let merged = a.merge(&b);
        assert_eq!(merged.len(), Some(8));
        assert!(a.overlaps(&merged));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn adjacency_at_word_boundary() {
        let a = KeyRange::new(Key::from_u128(0, 80), Key::from_u128(u64::MAX as u128, 80)).unwrap();
        let b = KeyRange::new(
            Key::from_u128(1u128 << 64, 80),
            Key::from_u128((1u128 << 64) + 10, 80),
        )
        .unwrap();
        assert!(a.is_adjacent_to(&b));
    }
}
