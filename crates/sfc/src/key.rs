//! SFC keys and key ranges with an allocation-free inline representation.
//!
//! A key for a `d`-dimensional universe with `k` bits per dimension has
//! exactly `d·k` bits. The common subscription shapes (`d = 2β` with β up to
//! 4–8 attributes, `k` up to 16 bits) fit in 128 bits, so a [`Key`] stores
//! such values *inline* in a `u128` — construction, comparison, increment and
//! the BIGMIN bit-walk never touch the heap. Wider universes spill to a
//! big-endian `Vec<u64>` word vector ([`Key`] is an enum over the two
//! layouts); every operation is defined on both and the two representations
//! are observationally identical (property-tested via
//! [`Key::with_spilled_repr`]).
//!
//! Keys compare numerically, which for equal bit widths is the order the
//! space filling curve induces on cells.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::error::SfcError;
use crate::Result;

/// The storage of a key's value: inline for widths that fit a `u128`,
/// spilled to big-endian words otherwise.
#[derive(Debug, Clone)]
enum Repr {
    /// The value of a key of width ≤ 128 bits. Invariant: bits above the
    /// key's width are zero.
    Inline(u128),
    /// Big-endian words: `words[0]` holds the most significant bits.
    /// Invariant: `words.len() == ceil(bits / 64)` and any unused high bits
    /// of `words[0]` are zero.
    Spill(Vec<u64>),
}

/// An SFC key: an unsigned integer of a fixed bit width (`d·k` bits),
/// ordered numerically.
///
/// Keys of width ≤ 128 bits are stored inline (no heap allocation anywhere
/// in their lifecycle); wider keys use a word vector. All operations treat
/// the two layouts identically.
///
/// # Example
///
/// ```
/// use acd_sfc::Key;
///
/// let a = Key::from_u128(5, 8);
/// let b = Key::from_u128(9, 8);
/// assert!(a < b);
/// assert_eq!(a.bits(), 8);
/// assert_eq!(a.to_u128(), Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct Key {
    /// Total number of significant bits.
    bits: u32,
    repr: Repr,
}

/// Keys serialize as `{bits, words}` with big-endian words — identical for
/// both in-memory layouts (so inline and spilled keys serialize the same,
/// and the wire format matches the historical word-vector layout).
impl Serialize for Key {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("bits".to_string(), serde::Value::U64(self.bits as u64)),
            (
                "words".to_string(),
                serde::Value::Seq(
                    (0..self.word_count())
                        .map(|i| serde::Value::U64(self.word(i)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for Key {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a key map"))?;
        let bits = u32::from_value(serde::get_field(entries, "bits"))?;
        let words = Vec::<u64>::from_value(serde::get_field(entries, "words"))?;
        let mut key = Key {
            bits,
            repr: if bits <= 128 {
                let n = words.len();
                let lo = words.last().copied().unwrap_or(0) as u128;
                let hi = if n >= 2 { words[n - 2] as u128 } else { 0 };
                Repr::Inline((hi << 64) | lo)
            } else {
                let mut words = words;
                words.resize(Key::words_for(bits), 0);
                Repr::Spill(words)
            },
        };
        key.mask_slack();
        Ok(key)
    }
}

impl Key {
    /// Number of 64-bit words needed for `bits` bits.
    fn words_for(bits: u32) -> usize {
        (bits as usize).div_ceil(64)
    }

    /// Number of unused (always-zero) high bits in the first word of the
    /// spilled layout.
    fn slack(bits: u32) -> u32 {
        (Self::words_for(bits) as u32) * 64 - bits
    }

    /// A mask of the low `bits` bits of a `u128` (`bits ≤ 128`).
    fn inline_mask(bits: u32) -> u128 {
        debug_assert!(bits <= 128);
        if bits >= 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        }
    }

    /// The all-zero key of the given width.
    pub fn zero(bits: u32) -> Self {
        if bits <= 128 {
            Key {
                bits,
                repr: Repr::Inline(0),
            }
        } else {
            Key {
                bits,
                repr: Repr::Spill(vec![0; Self::words_for(bits)]),
            }
        }
    }

    /// The all-ones key (maximum value) of the given width.
    pub fn max_value(bits: u32) -> Self {
        let mut key = Key::zero(bits);
        match &mut key.repr {
            Repr::Inline(v) => *v = Self::inline_mask(bits),
            Repr::Spill(words) => {
                for w in words.iter_mut() {
                    *w = u64::MAX;
                }
            }
        }
        key.mask_slack();
        key
    }

    /// Builds a key of width `bits` from a `u128` value.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `bits` bits, i.e. if any bit of
    /// `value` at position `bits` or above is set.
    pub fn from_u128(value: u128, bits: u32) -> Self {
        assert!(
            bits >= 128 || value >> bits == 0,
            "value {value} does not fit in {bits} bits"
        );
        if bits <= 128 {
            return Key {
                bits,
                repr: Repr::Inline(value),
            };
        }
        let mut words = vec![0u64; Self::words_for(bits)];
        let n = words.len();
        words[n - 1] = value as u64;
        words[n - 2] = (value >> 64) as u64;
        Key {
            bits,
            repr: Repr::Spill(words),
        }
    }

    /// Returns the value as a `u128` if it fits, `None` otherwise.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Inline(v) => Some(*v),
            Repr::Spill(words) => {
                let n = words.len();
                if n > 2 && words[..n - 2].iter().any(|&w| w != 0) {
                    return None;
                }
                let lo = words[n - 1] as u128;
                let hi = if n >= 2 { words[n - 2] as u128 } else { 0 };
                Some((hi << 64) | lo)
            }
        }
    }

    /// Width of the key in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Whether this key uses the inline (`u128`) layout. Exposed for the
    /// representation-agreement property tests.
    #[doc(hidden)]
    pub fn repr_is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// Returns a copy of this key forced into the spilled (word-vector)
    /// layout, regardless of width. Observationally identical to `self`;
    /// exposed so property tests can check the two layouts agree on every
    /// operation.
    #[doc(hidden)]
    pub fn with_spilled_repr(&self) -> Key {
        Key {
            bits: self.bits,
            repr: Repr::Spill((0..self.word_count()).map(|i| self.word(i)).collect()),
        }
    }

    /// Number of words in the (logical) big-endian word view.
    fn word_count(&self) -> usize {
        Self::words_for(self.bits).max(1)
    }

    /// The `i`-th word of the big-endian word view (index 0 is the most
    /// significant word), independent of layout.
    fn word(&self, i: usize) -> u64 {
        match &self.repr {
            Repr::Spill(words) => words[i],
            Repr::Inline(v) => {
                let shift = (self.word_count() - 1 - i) * 64;
                if shift >= 128 {
                    0
                } else {
                    (v >> shift) as u64
                }
            }
        }
    }

    /// Zeroes out the unused high bits of the layout.
    fn mask_slack(&mut self) {
        match &mut self.repr {
            Repr::Inline(v) => *v &= Self::inline_mask(self.bits),
            Repr::Spill(words) => {
                let slack = Self::slack(self.bits);
                if slack > 0 && slack < 64 {
                    words[0] &= u64::MAX >> slack;
                } else if slack >= 64 {
                    // Can only happen for bits == 0 with one allocated word.
                    words[0] = 0;
                }
            }
        }
    }

    /// Gets bit `index`, where index 0 is the least significant bit.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.bits()`.
    pub fn bit(&self, index: u32) -> bool {
        assert!(index < self.bits, "bit index {index} out of range");
        match &self.repr {
            Repr::Inline(v) => (v >> index) & 1 == 1,
            Repr::Spill(words) => {
                let pos = self.bits - 1 - index + Self::slack(self.bits);
                let word = (pos / 64) as usize;
                let offset = 63 - (pos % 64);
                (words[word] >> offset) & 1 == 1
            }
        }
    }

    /// Sets bit `index` (LSB = 0) to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.bits()`.
    pub fn set_bit(&mut self, index: u32, value: bool) {
        assert!(index < self.bits, "bit index {index} out of range");
        match &mut self.repr {
            Repr::Inline(v) => {
                if value {
                    *v |= 1u128 << index;
                } else {
                    *v &= !(1u128 << index);
                }
            }
            Repr::Spill(words) => {
                let pos = self.bits - 1 - index + Self::slack(self.bits);
                let word = (pos / 64) as usize;
                let offset = 63 - (pos % 64);
                if value {
                    words[word] |= 1u64 << offset;
                } else {
                    words[word] &= !(1u64 << offset);
                }
            }
        }
    }

    /// Returns a copy with the low `low_bits` bits cleared.
    ///
    /// Used to form the first key of a standard cube from the key of any cell
    /// inside it: the cube at level `ℓ` shares the top `d·ℓ` bits.
    pub fn with_low_bits_cleared(&self, low_bits: u32) -> Key {
        let low = low_bits.min(self.bits);
        match &self.repr {
            Repr::Inline(v) => Key {
                bits: self.bits,
                repr: Repr::Inline(v & !Self::inline_mask(low)),
            },
            Repr::Spill(_) => {
                let mut out = self.clone();
                for i in 0..low {
                    out.set_bit(i, false);
                }
                out
            }
        }
    }

    /// Returns a copy with the low `low_bits` bits set to one.
    pub fn with_low_bits_set(&self, low_bits: u32) -> Key {
        let low = low_bits.min(self.bits);
        match &self.repr {
            Repr::Inline(v) => Key {
                bits: self.bits,
                repr: Repr::Inline(v | Self::inline_mask(low)),
            },
            Repr::Spill(_) => {
                let mut out = self.clone();
                for i in 0..low {
                    out.set_bit(i, true);
                }
                out
            }
        }
    }

    /// The key immediately after this one, or `None` if this is the maximum.
    pub fn successor(&self) -> Option<Key> {
        match &self.repr {
            Repr::Inline(v) => {
                if *v == Self::inline_mask(self.bits) {
                    None
                } else {
                    Some(Key {
                        bits: self.bits,
                        repr: Repr::Inline(v + 1),
                    })
                }
            }
            Repr::Spill(words) => {
                // Work on a copy of the words and rebuild the key at the
                // end; matching the payload directly keeps every arm total.
                let mut words = words.clone();
                for i in (0..words.len()).rev() {
                    let (new, overflow) = words[i].overflowing_add(1);
                    words[i] = new;
                    if !overflow {
                        let out = Key {
                            bits: self.bits,
                            repr: Repr::Spill(words),
                        };
                        // Check the carry did not escape past the
                        // significant bits.
                        let mut check = out.clone();
                        check.mask_slack();
                        if check == out {
                            return Some(out);
                        }
                        return None;
                    }
                }
                None
            }
        }
    }

    /// The key immediately before this one, or `None` if this is zero.
    pub fn predecessor(&self) -> Option<Key> {
        if self.is_zero() {
            return None;
        }
        match &self.repr {
            Repr::Inline(v) => Some(Key {
                bits: self.bits,
                repr: Repr::Inline(v - 1),
            }),
            Repr::Spill(words) => {
                let mut words = words.clone();
                for w in words.iter_mut().rev() {
                    let (new, borrow) = w.overflowing_sub(1);
                    *w = new;
                    if !borrow {
                        break;
                    }
                }
                let mut out = Key {
                    bits: self.bits,
                    repr: Repr::Spill(words),
                };
                out.mask_slack();
                Some(out)
            }
        }
    }

    /// Whether the key is all zeros.
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Inline(v) => *v == 0,
            Repr::Spill(words) => words.iter().all(|&w| w == 0),
        }
    }

    /// Validates that the key has the expected number of bits.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::KeyLengthMismatch`] on a mismatch.
    pub fn expect_bits(&self, expected: u32) -> Result<()> {
        if self.bits != expected {
            return Err(SfcError::KeyLengthMismatch {
                expected,
                actual: self.bits,
            });
        }
        Ok(())
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        // Width-sensitive (like the historical derived implementation, and
        // consistent with `Hash`, which also covers `bits`): keys of
        // different widths are simply unequal, with no debug assertion —
        // only *ordering* across widths is a caller error.
        if self.bits != other.bits {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => a == b,
            (Repr::Spill(a), Repr::Spill(b)) => a == b,
            // Mixed layouts only occur in representation-agreement tests.
            _ => (0..self.word_count()).all(|i| self.word(i) == other.word(i)),
        }
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the logical big-endian word view so the inline and spilled
        // layouts of the same value hash identically.
        self.bits.hash(state);
        for i in 0..self.word_count() {
            self.word(i).hash(state);
        }
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    /// Numeric comparison. Keys of different widths should not normally be
    /// compared; in debug builds this asserts equal widths.
    fn cmp(&self, other: &Self) -> Ordering {
        debug_assert_eq!(
            self.bits, other.bits,
            "comparing keys of different bit widths"
        );
        match (&self.repr, &other.repr) {
            (Repr::Inline(a), Repr::Inline(b)) => a.cmp(b),
            (Repr::Spill(a), Repr::Spill(b)) => a.cmp(b),
            // Mixed layouts only occur in representation-agreement tests.
            _ => (0..self.word_count().max(other.word_count()))
                .map(|i| (self.word(i), other.word(i)))
                .find_map(|(a, b)| match a.cmp(&b) {
                    Ordering::Equal => None,
                    unequal => Some(unequal),
                })
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hexadecimal, most significant word first, without leading zeros
        // beyond the first digit.
        let n = self.word_count();
        let mut started = false;
        for i in 0..n {
            let w = self.word(i);
            if !started {
                if w == 0 && i + 1 != n {
                    continue;
                }
                write!(f, "{w:x}")?;
                started = true;
            } else {
                write!(f, "{w:016x}")?;
            }
        }
        Ok(())
    }
}

impl fmt::LowerHex for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Binary for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.bits).rev() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// An inclusive range of keys `[lo, hi]`, used to describe the segment of the
/// SFC array occupied by a standard cube or a run.
///
/// # Example
///
/// ```
/// use acd_sfc::{Key, KeyRange};
///
/// let r = KeyRange::new(Key::from_u128(4, 8), Key::from_u128(7, 8)).unwrap();
/// assert!(r.contains(&Key::from_u128(5, 8)));
/// assert!(!r.contains(&Key::from_u128(8, 8)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyRange {
    lo: Key,
    hi: Key,
}

impl KeyRange {
    /// Creates the inclusive range `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::Empty`] if `lo > hi` and
    /// [`SfcError::KeyLengthMismatch`] if the bit widths differ.
    pub fn new(lo: Key, hi: Key) -> Result<Self> {
        hi.expect_bits(lo.bits())?;
        if lo > hi {
            return Err(SfcError::Empty);
        }
        Ok(KeyRange { lo, hi })
    }

    /// Lower (inclusive) endpoint.
    pub fn lo(&self) -> &Key {
        &self.lo
    }

    /// Upper (inclusive) endpoint.
    pub fn hi(&self) -> &Key {
        &self.hi
    }

    /// Whether `key` lies in the range.
    pub fn contains(&self, key: &Key) -> bool {
        *key >= self.lo && *key <= self.hi
    }

    /// Whether this range ends immediately before `next` begins, so that the
    /// two can be merged into a single run.
    pub fn is_adjacent_to(&self, next: &KeyRange) -> bool {
        match self.hi.successor() {
            Some(succ) => succ == next.lo,
            None => false,
        }
    }

    /// Whether this range overlaps `other`.
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Merges this range with an adjacent or overlapping range.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the ranges are neither adjacent nor
    /// overlapping.
    pub fn merge(&self, other: &KeyRange) -> KeyRange {
        debug_assert!(
            self.overlaps(other) || self.is_adjacent_to(other) || other.is_adjacent_to(self)
        );
        KeyRange {
            lo: self.lo.clone().min(other.lo.clone()),
            hi: self.hi.clone().max(other.hi.clone()),
        }
    }

    /// Number of keys in the range if it fits in a `u128`.
    pub fn len(&self) -> Option<u128> {
        let lo = self.lo.to_u128()?;
        let hi = self.hi.to_u128()?;
        hi.checked_sub(lo)?.checked_add(1)
    }

    /// A key range is never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_and_to_u128_round_trip() {
        for bits in [1u32, 7, 8, 63, 64, 65, 127, 128, 130, 192] {
            let vals: Vec<u128> = vec![0, 1, 2, 5, 100, (1u128 << (bits.min(127))) - 1];
            for v in vals {
                if bits < 128 && v >= (1u128 << bits) {
                    continue;
                }
                let k = Key::from_u128(v, bits);
                assert_eq!(k.to_u128(), Some(v), "bits={bits} v={v}");
                assert_eq!(k.bits(), bits);
                assert_eq!(k.repr_is_inline(), bits <= 128);
            }
        }
    }

    #[test]
    fn from_u128_width_check_accepts_exact_fits_and_rejects_overflow() {
        // The widest values that fit.
        assert_eq!(Key::from_u128(1, 1).to_u128(), Some(1));
        assert_eq!(Key::from_u128(127, 7).to_u128(), Some(127));
        assert_eq!(
            Key::from_u128((1u128 << 127) - 1, 127).to_u128(),
            Some((1u128 << 127) - 1)
        );
        assert_eq!(Key::from_u128(u128::MAX, 128).to_u128(), Some(u128::MAX));
        // Any width ≥ 128 accepts any u128.
        assert_eq!(Key::from_u128(u128::MAX, 129).to_u128(), Some(u128::MAX));
        // One past the width must panic.
        for (v, bits) in [(2u128, 1u32), (128, 7), (1u128 << 127, 127)] {
            let res = std::panic::catch_unwind(|| Key::from_u128(v, bits));
            assert!(res.is_err(), "value {v} must not fit in {bits} bits");
        }
    }

    #[test]
    fn ordering_matches_numeric_order() {
        let mut keys: Vec<Key> = [0u128, 1, 5, 17, 255, 256, 1_000_000]
            .iter()
            .map(|&v| Key::from_u128(v, 96))
            .collect();
        let sorted = keys.clone();
        keys.reverse();
        keys.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn bit_get_and_set_round_trip() {
        let mut k = Key::zero(130);
        k.set_bit(0, true);
        k.set_bit(64, true);
        k.set_bit(129, true);
        assert!(k.bit(0));
        assert!(k.bit(64));
        assert!(k.bit(129));
        assert!(!k.bit(1));
        assert!(!k.bit(128));
        k.set_bit(64, false);
        assert!(!k.bit(64));
    }

    #[test]
    fn bit_positions_match_numeric_value() {
        let k = Key::from_u128(0b1011, 8);
        assert!(k.bit(0));
        assert!(k.bit(1));
        assert!(!k.bit(2));
        assert!(k.bit(3));
        assert!(!k.bit(7));
    }

    #[test]
    fn low_bits_cleared_and_set() {
        let k = Key::from_u128(0b1101_1011, 8);
        assert_eq!(k.with_low_bits_cleared(4).to_u128(), Some(0b1101_0000));
        assert_eq!(k.with_low_bits_set(4).to_u128(), Some(0b1101_1111));
    }

    #[test]
    fn successor_and_predecessor() {
        let k = Key::from_u128(41, 16);
        assert_eq!(k.successor().unwrap().to_u128(), Some(42));
        assert_eq!(k.predecessor().unwrap().to_u128(), Some(40));

        let max = Key::max_value(16);
        assert_eq!(max.to_u128(), Some(65535));
        assert!(max.successor().is_none());
        assert!(Key::zero(16).predecessor().is_none());
    }

    #[test]
    fn successor_carries_across_words() {
        let k = Key::from_u128(u64::MAX as u128, 80);
        let s = k.successor().unwrap();
        assert_eq!(s.to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn max_value_masks_slack_bits() {
        let max = Key::max_value(70);
        // The top word must only have 6 significant bits set.
        assert_eq!(max.to_u128(), Some((1u128 << 70) - 1));
        assert!(max.successor().is_none());
    }

    #[test]
    fn spilled_repr_agrees_with_inline_on_every_operation() {
        for bits in [1u32, 8, 63, 64, 65, 127, 128] {
            for v in [
                0u128,
                1,
                41,
                (1u128 << bits.min(127)) - 1,
                (1u128 << (bits / 2).max(1)) - 1,
            ] {
                if bits < 128 && v >> bits != 0 {
                    continue;
                }
                let inline = Key::from_u128(v, bits);
                let spill = inline.with_spilled_repr();
                assert!(inline.repr_is_inline());
                assert!(!spill.repr_is_inline());
                assert_eq!(inline, spill);
                assert_eq!(inline.cmp(&spill), Ordering::Equal);
                assert_eq!(spill.to_u128(), Some(v));
                assert_eq!(inline.successor(), spill.successor());
                assert_eq!(inline.predecessor(), spill.predecessor());
                assert_eq!(
                    inline.with_low_bits_cleared(bits / 2),
                    spill.with_low_bits_cleared(bits / 2)
                );
                assert_eq!(
                    inline.with_low_bits_set(bits / 2),
                    spill.with_low_bits_set(bits / 2)
                );
                for i in 0..bits {
                    assert_eq!(inline.bit(i), spill.bit(i));
                }
                assert_eq!(format!("{inline}"), format!("{spill}"));
                assert_eq!(format!("{inline:b}"), format!("{spill:b}"));
            }
        }
    }

    #[test]
    fn equality_is_width_sensitive_without_panicking() {
        // Same numeric value, different widths: unequal (and no debug
        // assertion fires — only ordering across widths is a caller error).
        assert_ne!(Key::from_u128(5, 8), Key::from_u128(5, 16));
        assert_ne!(Key::from_u128(5, 64), Key::from_u128(5, 200));
        assert_eq!(Key::from_u128(5, 16), Key::from_u128(5, 16));
    }

    #[test]
    fn mixed_repr_keys_collide_in_hash_maps() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Key::from_u128(99, 64));
        assert!(!set.insert(Key::from_u128(99, 64).with_spilled_repr()));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn serde_round_trips_both_layouts_identically() {
        for key in [
            Key::from_u128(0xdead_beef, 64),
            Key::from_u128(0xdead_beef, 64).with_spilled_repr(),
            Key::max_value(200),
        ] {
            let value = key.to_value();
            let back = Key::from_value(&value).unwrap();
            assert_eq!(back, key);
            assert_eq!(back.bits(), key.bits());
            // The canonical decoded layout is inline whenever it fits.
            assert_eq!(back.repr_is_inline(), key.bits() <= 128);
        }
        // Inline and spilled layouts of the same value serialize identically.
        let k = Key::from_u128(7, 96);
        assert_eq!(k.to_value(), k.with_spilled_repr().to_value());
    }

    #[test]
    fn expect_bits_detects_mismatch() {
        let k = Key::zero(12);
        assert!(k.expect_bits(12).is_ok());
        assert!(matches!(
            k.expect_bits(16),
            Err(SfcError::KeyLengthMismatch {
                expected: 16,
                actual: 12
            })
        ));
    }

    #[test]
    fn display_formats() {
        let k = Key::from_u128(0xdead_beef, 64);
        assert_eq!(format!("{k}"), "deadbeef");
        assert_eq!(format!("{k:x}"), "deadbeef");
        let b = Key::from_u128(0b101, 4);
        assert_eq!(format!("{b:b}"), "0101");
    }

    #[test]
    fn key_range_construction_and_queries() {
        let lo = Key::from_u128(10, 32);
        let hi = Key::from_u128(20, 32);
        let r = KeyRange::new(lo.clone(), hi.clone()).unwrap();
        assert_eq!(r.len(), Some(11));
        assert!(r.contains(&Key::from_u128(10, 32)));
        assert!(r.contains(&Key::from_u128(20, 32)));
        assert!(!r.contains(&Key::from_u128(21, 32)));
        assert!(KeyRange::new(hi, lo).is_err());
    }

    #[test]
    fn key_range_adjacency_and_merge() {
        let a = KeyRange::new(Key::from_u128(0, 16), Key::from_u128(3, 16)).unwrap();
        let b = KeyRange::new(Key::from_u128(4, 16), Key::from_u128(7, 16)).unwrap();
        let c = KeyRange::new(Key::from_u128(9, 16), Key::from_u128(12, 16)).unwrap();
        assert!(a.is_adjacent_to(&b));
        assert!(!b.is_adjacent_to(&a));
        assert!(!b.is_adjacent_to(&c));
        let merged = a.merge(&b);
        assert_eq!(merged.len(), Some(8));
        assert!(a.overlaps(&merged));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn adjacency_at_word_boundary() {
        let a = KeyRange::new(Key::from_u128(0, 80), Key::from_u128(u64::MAX as u128, 80)).unwrap();
        let b = KeyRange::new(
            Key::from_u128(1u128 << 64, 80),
            Key::from_u128((1u128 << 64) + 10, 80),
        )
        .unwrap();
        assert!(a.is_adjacent_to(&b));
    }
}
