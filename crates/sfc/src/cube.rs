//! Standard cubes: the building blocks of recursive space partitioning.
//!
//! The universe is recursively bisected along every dimension; a cube
//! produced after `ℓ` rounds of bisection is a *standard cube at level `ℓ`*
//! with side length `2^{k − ℓ}`. Standard cubes are either nested or disjoint
//! (Lemma 2.1) and each standard cube occupies a single contiguous run of
//! keys on every recursive space filling curve (Fact 2.1).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::SfcError;
use crate::rect::Rect;
use crate::universe::{Point, Universe};
use crate::Result;

/// A standard cube: an axis-aligned cube whose side length is a power of two
/// and whose lower corner is aligned to that power of two.
///
/// `side_exp` is the base-2 logarithm of the side length (the paper's `i` for
/// a cube in `D_i`), so the cube's level in the recursive partition is
/// `k − side_exp`.
///
/// # Example
///
/// ```
/// use acd_sfc::{StandardCube, Universe};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let u = Universe::new(2, 4)?;
/// let c = StandardCube::new(&u, vec![4, 8], 2)?; // a 4x4 cube at (4, 8)
/// assert_eq!(c.side_length(), 4);
/// assert_eq!(c.level(), 2);
/// assert_eq!(c.volume(), Some(16));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StandardCube {
    /// Lower corner of the cube; every coordinate is a multiple of
    /// `2^side_exp`.
    corner: Vec<u64>,
    /// log2 of the side length.
    side_exp: u32,
    /// Bits per dimension of the owning universe (needed to compute levels).
    bits_per_dim: u32,
}

impl StandardCube {
    /// Creates a standard cube with the given lower corner and side length
    /// `2^side_exp`.
    ///
    /// # Errors
    ///
    /// Returns an error if the corner has the wrong dimension, is not aligned
    /// to `2^side_exp`, or the cube does not fit inside the universe.
    pub fn new(universe: &Universe, corner: Vec<u64>, side_exp: u32) -> Result<Self> {
        if corner.len() != universe.dims() {
            return Err(SfcError::DimensionMismatch {
                expected: universe.dims(),
                actual: corner.len(),
            });
        }
        if side_exp > universe.bits_per_dim() {
            return Err(SfcError::InvalidSideLength {
                dim: 0,
                length: 1u64.checked_shl(side_exp).unwrap_or(u64::MAX),
                bound: universe.side(),
            });
        }
        let side = 1u64 << side_exp;
        for (dim, &c) in corner.iter().enumerate() {
            if c % side != 0 {
                return Err(SfcError::CoordinateOutOfRange {
                    dim,
                    value: c,
                    bound: universe.side(),
                });
            }
            if c + side - 1 > universe.max_coord() {
                return Err(SfcError::CoordinateOutOfRange {
                    dim,
                    value: c + side - 1,
                    bound: universe.side(),
                });
            }
        }
        Ok(StandardCube {
            corner,
            side_exp,
            bits_per_dim: universe.bits_per_dim(),
        })
    }

    /// The unit cube (a single cell) at `point`.
    ///
    /// # Errors
    ///
    /// Returns an error if the point is outside the universe.
    pub fn cell(universe: &Universe, point: &Point) -> Result<Self> {
        universe.validate_point(point)?;
        StandardCube::new(universe, point.coords().to_vec(), 0)
    }

    /// The standard cube covering the entire universe (level 0).
    pub fn whole_universe(universe: &Universe) -> Self {
        StandardCube {
            corner: vec![0; universe.dims()],
            side_exp: universe.bits_per_dim(),
            bits_per_dim: universe.bits_per_dim(),
        }
    }

    /// The lower corner of the cube.
    pub fn corner(&self) -> &[u64] {
        &self.corner
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.corner.len()
    }

    /// Base-2 logarithm of the side length (the paper's `i` for `D_i`).
    pub fn side_exp(&self) -> u32 {
        self.side_exp
    }

    /// Side length of the cube (`2^side_exp`).
    pub fn side_length(&self) -> u64 {
        1u64 << self.side_exp
    }

    /// Level of the cube in the recursive partition: `k − side_exp`.
    /// Level 0 is the whole universe; level `k` is a single cell.
    pub fn level(&self) -> u32 {
        self.bits_per_dim - self.side_exp
    }

    /// Number of cells in the cube, if it fits in a `u128`.
    pub fn volume(&self) -> Option<u128> {
        let total_bits = self.side_exp as u64 * self.dims() as u64;
        if total_bits <= 127 {
            Some(1u128 << total_bits)
        } else {
            None
        }
    }

    /// Natural logarithm of the number of cells.
    pub fn ln_volume(&self) -> f64 {
        self.side_exp as f64 * self.dims() as f64 * std::f64::consts::LN_2
    }

    /// The cube as an ordinary rectangle.
    pub fn to_rect(&self) -> Rect {
        let side = self.side_length();
        let hi: Vec<u64> = self.corner.iter().map(|&c| c + side - 1).collect();
        Rect::new(self.corner.clone(), hi).expect("standard cube is a valid rectangle")
    }

    /// Whether the cube contains the given cell.
    pub fn contains_coords(&self, coords: &[u64]) -> bool {
        let side = self.side_length();
        coords.len() == self.dims()
            && coords
                .iter()
                .zip(self.corner.iter())
                .all(|(&c, &lo)| c >= lo && c < lo + side)
    }

    /// Whether this cube fully contains `other`. Per Lemma 2.1 two standard
    /// cubes are either nested or disjoint, so `a.contains_cube(b)`,
    /// `b.contains_cube(a)` and disjointness are the only possibilities.
    pub fn contains_cube(&self, other: &StandardCube) -> bool {
        self.side_exp >= other.side_exp && self.contains_coords(other.corner())
    }

    /// Whether the two cubes share at least one cell.
    pub fn overlaps(&self, other: &StandardCube) -> bool {
        self.contains_cube(other) || other.contains_cube(self)
    }

    /// The lowest-indexed cell of the cube (its lower corner) as a point.
    pub fn corner_point(&self) -> Point {
        Point::from_vec(self.corner.clone())
    }

    /// The `2^d` child cubes produced by one further bisection, or `None` if
    /// the cube is already a single cell.
    pub fn children(&self) -> Option<Vec<StandardCube>> {
        if self.side_exp == 0 {
            return None;
        }
        let child_exp = self.side_exp - 1;
        let half = 1u64 << child_exp;
        let d = self.dims();
        let mut out = Vec::with_capacity(1 << d);
        for mask in 0u64..(1u64 << d) {
            let corner: Vec<u64> = (0..d)
                .map(|dim| self.corner[dim] + if (mask >> dim) & 1 == 1 { half } else { 0 })
                .collect();
            out.push(StandardCube {
                corner,
                side_exp: child_exp,
                bits_per_dim: self.bits_per_dim,
            });
        }
        Some(out)
    }
}

impl fmt::Display for StandardCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cube@(")?;
        for (i, c) in self.corner.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ") side 2^{}", self.side_exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(d: usize, k: u32) -> Universe {
        Universe::new(d, k).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let u = universe(2, 4);
        let c = StandardCube::new(&u, vec![8, 12], 2).unwrap();
        assert_eq!(c.side_length(), 4);
        assert_eq!(c.level(), 2);
        assert_eq!(c.volume(), Some(16));
        assert_eq!(c.to_rect(), Rect::new(vec![8, 12], vec![11, 15]).unwrap());
        assert_eq!(c.to_string(), "cube@(8, 12) side 2^2");
    }

    #[test]
    fn rejects_misaligned_or_oversized_cubes() {
        let u = universe(2, 4);
        assert!(StandardCube::new(&u, vec![3, 0], 2).is_err(), "misaligned");
        assert!(StandardCube::new(&u, vec![0, 0], 5).is_err(), "too large");
        assert!(StandardCube::new(&u, vec![0], 1).is_err(), "wrong dims");
        assert!(StandardCube::new(&u, vec![16, 0], 0).is_err(), "outside");
    }

    #[test]
    fn whole_universe_and_cells() {
        let u = universe(3, 3);
        let whole = StandardCube::whole_universe(&u);
        assert_eq!(whole.level(), 0);
        assert_eq!(whole.volume(), u.volume());
        let cell = StandardCube::cell(&u, &Point::new(vec![1, 2, 3]).unwrap()).unwrap();
        assert_eq!(cell.level(), 3);
        assert_eq!(cell.volume(), Some(1));
        assert!(whole.contains_cube(&cell));
    }

    #[test]
    fn nesting_or_disjoint_lemma_2_1() {
        let u = universe(2, 4);
        let big = StandardCube::new(&u, vec![0, 0], 3).unwrap();
        let inner = StandardCube::new(&u, vec![4, 4], 2).unwrap();
        let outside = StandardCube::new(&u, vec![8, 0], 3).unwrap();
        assert!(big.contains_cube(&inner));
        assert!(!inner.contains_cube(&big));
        assert!(big.overlaps(&inner));
        assert!(!big.overlaps(&outside));
        // Exhaustive check of Lemma 2.1 over all standard cubes of a small
        // universe: any two cubes are nested or disjoint.
        let mut all = vec![];
        for exp in 0..=2u32 {
            let side = 1u64 << exp;
            let mut x = 0;
            while x < 4 {
                let mut y = 0;
                while y < 4 {
                    all.push(StandardCube::new(&universe(2, 2), vec![x, y], exp).unwrap());
                    y += side;
                }
                x += side;
            }
        }
        for a in &all {
            for b in &all {
                let nested = a.contains_cube(b) || b.contains_cube(a);
                let disjoint = !a.to_rect().overlaps(&b.to_rect());
                assert!(nested || disjoint, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn children_partition_the_parent() {
        let u = universe(3, 4);
        let c = StandardCube::new(&u, vec![8, 0, 8], 3).unwrap();
        let children = c.children().unwrap();
        assert_eq!(children.len(), 8);
        let child_vol: u128 = children.iter().map(|ch| ch.volume().unwrap()).sum();
        assert_eq!(child_vol, c.volume().unwrap());
        for ch in &children {
            assert!(c.contains_cube(ch));
            assert_eq!(ch.side_exp(), 2);
        }
        // Children are pairwise disjoint.
        for (i, a) in children.iter().enumerate() {
            for b in children.iter().skip(i + 1) {
                assert!(!a.to_rect().overlaps(&b.to_rect()));
            }
        }
        let cell = StandardCube::new(&u, vec![1, 1, 1], 0).unwrap();
        assert!(cell.children().is_none());
    }

    #[test]
    fn huge_cube_volume_is_none_but_ln_volume_works() {
        let u = universe(32, 8);
        let whole = StandardCube::whole_universe(&u);
        assert_eq!(whole.volume(), None);
        assert!((whole.ln_volume() - 256.0 * std::f64::consts::LN_2).abs() < 1e-9);
    }
}
