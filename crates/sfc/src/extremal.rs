//! Lazy greedy decomposition of *extremal* rectangles (Lemma 3.4 and the
//! paper's Algorithms 1–3).
//!
//! A point-dominance query searches an extremal rectangle `R(ℓ)`. Its greedy
//! (minimum) partition into standard cubes has a very regular structure
//! (Lemma 3.4): letting `b(ℓ_min)` be the bit length of the shortest side,
//! the partition contains cubes of side `2^i` only for
//! `i < b(ℓ_min)`, and the cubes of side `2^i` or larger exactly tile the
//! extremal rectangle `R(S_i(ℓ))`. The cubes of side `2^i` therefore tile the
//! difference `R(S_i(ℓ)) − R(S_{i+1}(ℓ))`, which is a union of at most `d`
//! axis-aligned boxes of `2^i`-cubes.
//!
//! [`ExtremalCubes`] materializes only this *description* (O(d·k) boxes) and
//! enumerates the actual cubes lazily, largest first, which is exactly the
//! order the approximate point-dominance query wants. The number of cubes per
//! level is available analytically through [`LevelCubes::count`]
//! (Lemma 3.5's `N_i`) without enumerating anything.

use crate::bits;
use crate::cube::StandardCube;
use crate::rect::ExtremalRect;
use crate::universe::Universe;

/// One sub-box of `2^i`-cubes: a product of per-dimension grid-offset ranges
/// `[lo_j, hi_j)` measured in units of `2^i` cells from the universe's top
/// corner.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GridBox {
    /// Per-dimension `[lo, hi)` ranges in grid units.
    ranges: Vec<(u64, u64)>,
}

impl GridBox {
    fn count(&self) -> Option<u128> {
        let mut n: u128 = 1;
        for &(lo, hi) in &self.ranges {
            n = n.checked_mul((hi - lo) as u128)?;
        }
        Some(n)
    }

    fn ln_count(&self) -> f64 {
        self.ranges
            .iter()
            .map(|&(lo, hi)| ((hi - lo) as f64).ln())
            .sum()
    }

    fn is_empty(&self) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo >= hi)
    }
}

/// The cubes of one level (`D_i` in the paper) of the greedy decomposition of
/// an extremal rectangle, enumerable lazily.
#[derive(Debug, Clone)]
pub struct LevelCubes {
    universe: Universe,
    side_exp: u32,
    boxes: Vec<GridBox>,
}

impl LevelCubes {
    /// `log2` of the side length of every cube at this level (the paper's
    /// `i`).
    pub fn side_exp(&self) -> u32 {
        self.side_exp
    }

    /// Number of cubes at this level (the paper's `N_i`), if it fits in a
    /// `u128`.
    pub fn count(&self) -> Option<u128> {
        let mut total: u128 = 0;
        for b in &self.boxes {
            total = total.checked_add(b.count()?)?;
        }
        Some(total)
    }

    /// Number of cubes at this level as a float (never overflows).
    pub fn count_f64(&self) -> f64 {
        self.boxes.iter().map(|b| b.ln_count().exp()).sum()
    }

    /// Natural logarithm of the volume (in cells) of a single cube at this
    /// level.
    pub fn ln_cube_volume(&self, dims: usize) -> f64 {
        self.side_exp as f64 * dims as f64 * std::f64::consts::LN_2
    }

    /// Lazily enumerates the cubes at this level.
    pub fn iter(&self) -> LevelCubesIter<'_> {
        LevelCubesIter {
            level: self,
            box_idx: 0,
            odometer: None,
        }
    }
}

/// Iterator over the cubes of a single level. Created by [`LevelCubes::iter`].
#[derive(Debug)]
pub struct LevelCubesIter<'a> {
    level: &'a LevelCubes,
    box_idx: usize,
    /// Current grid offsets within the current box, or `None` if the next box
    /// has not been entered yet.
    odometer: Option<Vec<u64>>,
}

fn cube_at(level: &LevelCubes, offsets: &[u64]) -> StandardCube {
    let side = 1u64 << level.side_exp;
    let top = level.universe.side();
    let corner: Vec<u64> = offsets.iter().map(|&n| top - (n + 1) * side).collect();
    StandardCube::new(&level.universe, corner, level.side_exp)
        .expect("extremal decomposition produces valid cubes")
}

impl Iterator for LevelCubesIter<'_> {
    type Item = StandardCube;

    fn next(&mut self) -> Option<StandardCube> {
        loop {
            let level = self.level;
            let boxes = &level.boxes;
            if self.box_idx >= boxes.len() {
                return None;
            }
            let gbox = &boxes[self.box_idx];
            match &mut self.odometer {
                None => {
                    if gbox.is_empty() {
                        self.box_idx += 1;
                        continue;
                    }
                    let start: Vec<u64> = gbox.ranges.iter().map(|&(lo, _)| lo).collect();
                    let cube = cube_at(level, &start);
                    self.odometer = Some(start);
                    return Some(cube);
                }
                Some(odometer) => {
                    // Advance the odometer (last dimension fastest).
                    let mut dim = odometer.len();
                    loop {
                        if dim == 0 {
                            // Exhausted this box.
                            self.odometer = None;
                            self.box_idx += 1;
                            break;
                        }
                        dim -= 1;
                        odometer[dim] += 1;
                        if odometer[dim] < gbox.ranges[dim].1 {
                            return Some(cube_at(level, odometer));
                        }
                        odometer[dim] = gbox.ranges[dim].0;
                    }
                }
            }
        }
    }
}

/// The greedy (minimum) decomposition of an extremal rectangle into standard
/// cubes, organized by level and enumerable lazily in descending cube size —
/// the access pattern of the approximate point-dominance query.
///
/// # Example
///
/// ```
/// use acd_sfc::{Universe, ExtremalRect, ExtremalCubes};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let u = Universe::new(2, 10)?;
/// // The paper's Figure 2 example: a 257x257 extremal square.
/// let rect = ExtremalRect::new(u, vec![257, 257])?;
/// let dec = ExtremalCubes::new(&rect);
/// let counts: Vec<(u32, u128)> = dec
///     .levels()
///     .iter()
///     .map(|l| (l.side_exp(), l.count().unwrap()))
///     .collect();
/// assert_eq!(counts, vec![(8, 1), (0, 513)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ExtremalCubes {
    rect: ExtremalRect,
    levels: Vec<LevelCubes>,
}

impl ExtremalCubes {
    /// Builds the decomposition description of `rect`. This is cheap
    /// (O(d · k) work); no cubes are enumerated until iteration.
    pub fn new(rect: &ExtremalRect) -> Self {
        let universe = rect.universe().clone();
        let lengths = rect.lengths();
        let d = lengths.len();
        let b_min = lengths
            .iter()
            .map(|&l| bits::bit_length(l))
            .min()
            .expect("extremal rectangle has at least one dimension");

        let mut levels = Vec::new();
        // Levels run from b(ℓ_min) − 1 down to 0.
        for i in (0..b_min).rev() {
            if !bits::any_bit_set(lengths, i) {
                continue;
            }
            let unit = 1u64 << i;
            // Grid sizes of the nested extremal boxes R(S_i(ℓ)) and
            // R(S_{i+1}(ℓ)) in units of 2^i.
            let a: Vec<u64> = lengths
                .iter()
                .map(|&l| bits::keep_bits_from(l, i) / unit)
                .collect();
            let b: Vec<u64> = lengths
                .iter()
                .map(|&l| bits::keep_bits_from(l, i + 1) / unit)
                .collect();
            // The difference of the two boxes, split into at most d disjoint
            // sub-boxes: the t-th sub-box pins dimension t to the single new
            // slab (only present when bit i of ℓ_t is set).
            let mut boxes = Vec::new();
            for t in 0..d {
                if a[t] == b[t] {
                    continue; // bit i of ℓ_t is zero: no new slab on dim t
                }
                debug_assert_eq!(a[t], b[t] + 1);
                let ranges: Vec<(u64, u64)> = (0..d)
                    .map(|j| {
                        if j < t {
                            (0, b[j])
                        } else if j == t {
                            (b[t], a[t])
                        } else {
                            (0, a[j])
                        }
                    })
                    .collect();
                let gbox = GridBox { ranges };
                if !gbox.is_empty() {
                    boxes.push(gbox);
                }
            }
            if !boxes.is_empty() {
                levels.push(LevelCubes {
                    universe: universe.clone(),
                    side_exp: i,
                    boxes,
                });
            }
        }
        ExtremalCubes {
            rect: rect.clone(),
            levels,
        }
    }

    /// The rectangle being decomposed.
    pub fn rect(&self) -> &ExtremalRect {
        &self.rect
    }

    /// The non-empty levels of the decomposition, in descending cube size.
    pub fn levels(&self) -> &[LevelCubes] {
        &self.levels
    }

    /// Total number of cubes in the decomposition (the paper's
    /// `cubes(R(ℓ))`), if it fits in a `u128`.
    pub fn count_cubes(&self) -> Option<u128> {
        let mut total: u128 = 0;
        for l in &self.levels {
            total = total.checked_add(l.count()?)?;
        }
        Some(total)
    }

    /// Lazily enumerates all cubes, largest first.
    pub fn iter(&self) -> impl Iterator<Item = StandardCube> + '_ {
        self.levels.iter().flat_map(|l| l.iter())
    }

    /// `(side_exp, N_i)` pairs for every non-empty level, largest first.
    pub fn level_counts(&self) -> Vec<(u32, u128)> {
        self.levels
            .iter()
            .map(|l| (l.side_exp(), l.count().unwrap_or(u128::MAX)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose_rect, histogram_by_level};
    use crate::rect::Rect;

    fn universe(d: usize, k: u32) -> Universe {
        Universe::new(d, k).unwrap()
    }

    /// Reference implementation: decompose the extremal rectangle with the
    /// generic quadtree algorithm and compare.
    fn reference_histogram(rect: &ExtremalRect) -> Vec<(u32, u64)> {
        let cubes = decompose_rect(rect.universe(), &rect.to_rect()).unwrap();
        histogram_by_level(&cubes)
    }

    #[test]
    fn matches_generic_decomposition_on_small_universes() {
        let u = universe(2, 5);
        for lx in [1u64, 2, 3, 5, 7, 8, 13, 21, 31, 32] {
            for ly in [1u64, 4, 6, 11, 17, 32] {
                let rect = ExtremalRect::new(u.clone(), vec![lx, ly]).unwrap();
                let dec = ExtremalCubes::new(&rect);
                let got: Vec<(u32, u64)> = dec
                    .level_counts()
                    .into_iter()
                    .map(|(e, n)| (e, n as u64))
                    .collect();
                assert_eq!(got, reference_histogram(&rect), "lengths {lx},{ly}");
            }
        }
    }

    #[test]
    fn matches_generic_decomposition_in_three_dims() {
        let u = universe(3, 4);
        for lengths in [
            vec![1u64, 1, 1],
            vec![16, 16, 16],
            vec![3, 5, 7],
            vec![9, 2, 12],
            vec![15, 15, 1],
            vec![8, 4, 2],
        ] {
            let rect = ExtremalRect::new(u.clone(), lengths.clone()).unwrap();
            let dec = ExtremalCubes::new(&rect);
            let got: Vec<(u32, u64)> = dec
                .level_counts()
                .into_iter()
                .map(|(e, n)| (e, n as u64))
                .collect();
            assert_eq!(got, reference_histogram(&rect), "lengths {lengths:?}");
        }
    }

    #[test]
    fn enumerated_cubes_tile_the_rectangle_exactly() {
        let u = universe(2, 5);
        for lengths in [vec![13u64, 21], vec![5, 5], vec![32, 1], vec![7, 19]] {
            let rect = ExtremalRect::new(u.clone(), lengths.clone()).unwrap();
            let dec = ExtremalCubes::new(&rect);
            let cubes: Vec<StandardCube> = dec.iter().collect();
            assert_eq!(cubes.len() as u128, dec.count_cubes().unwrap());
            // Disjoint...
            for (i, a) in cubes.iter().enumerate() {
                for b in cubes.iter().skip(i + 1) {
                    assert!(!a.to_rect().overlaps(&b.to_rect()), "{a} vs {b}");
                }
            }
            // ...and complete.
            let total: u128 = cubes.iter().map(|c| c.volume().unwrap()).sum();
            assert_eq!(total, rect.volume().unwrap(), "lengths {lengths:?}");
            let outer: Rect = rect.to_rect();
            for c in &cubes {
                assert!(outer.contains_rect(&c.to_rect()));
            }
        }
    }

    #[test]
    fn cubes_are_enumerated_largest_first() {
        let u = universe(2, 8);
        let rect = ExtremalRect::new(u, vec![201, 77]).unwrap();
        let dec = ExtremalCubes::new(&rect);
        let exps: Vec<u32> = dec.iter().map(|c| c.side_exp()).collect();
        let mut sorted = exps.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(exps, sorted);
    }

    #[test]
    fn figure_2_examples() {
        let u = universe(2, 10);
        // 256x256 extremal square: exactly one cube.
        let aligned = ExtremalRect::new(u.clone(), vec![256, 256]).unwrap();
        assert_eq!(ExtremalCubes::new(&aligned).count_cubes(), Some(1));
        // 257x257 extremal square: 1 + 513 cubes; the largest covers > 99%
        // of the volume.
        let off = ExtremalRect::new(u, vec![257, 257]).unwrap();
        let dec = ExtremalCubes::new(&off);
        assert_eq!(dec.count_cubes(), Some(514));
        let first = dec.iter().next().unwrap();
        let frac = first.volume().unwrap() as f64 / off.volume().unwrap() as f64;
        assert!(frac > 0.99, "largest cube covers {frac}");
    }

    #[test]
    fn lemma_3_5_count_formula() {
        // N_i = (prod S_i(ℓ_j) − prod S_{i+1}(ℓ_j)) / 2^{i·d}
        let u = universe(3, 8);
        let lengths = vec![201u64, 77, 255];
        let rect = ExtremalRect::new(u, lengths.clone()).unwrap();
        let dec = ExtremalCubes::new(&rect);
        for level in dec.levels() {
            let i = level.side_exp();
            let prod_i: u128 = lengths
                .iter()
                .map(|&l| bits::keep_bits_from(l, i) as u128)
                .product();
            let prod_i1: u128 = lengths
                .iter()
                .map(|&l| bits::keep_bits_from(l, i + 1) as u128)
                .product();
            let expected = (prod_i - prod_i1) >> (i * 3);
            assert_eq!(level.count(), Some(expected), "level {i}");
            let approx = level.count_f64();
            let rel = (approx - expected as f64).abs() / expected as f64;
            assert!(rel < 1e-9);
        }
    }

    #[test]
    fn single_cell_rectangle() {
        let u = universe(4, 6);
        let rect = ExtremalRect::new(u, vec![1, 1, 1, 1]).unwrap();
        let dec = ExtremalCubes::new(&rect);
        assert_eq!(dec.count_cubes(), Some(1));
        let cube = dec.iter().next().unwrap();
        assert_eq!(cube.volume(), Some(1));
        assert_eq!(cube.corner(), &[63, 63, 63, 63]);
    }

    #[test]
    fn whole_universe_rectangle_is_one_cube() {
        let u = universe(3, 5);
        let rect = ExtremalRect::new(u.clone(), vec![32, 32, 32]).unwrap();
        let dec = ExtremalCubes::new(&rect);
        assert_eq!(dec.count_cubes(), Some(1));
        assert_eq!(dec.iter().next().unwrap().side_exp(), 5);
    }

    #[test]
    fn lazy_enumeration_of_a_huge_region_is_cheap() {
        // A 2^20-sided region in 6 dimensions has an astronomically large
        // exhaustive decomposition; taking just the first few cubes must not
        // enumerate it.
        let u = universe(6, 20);
        let rect = ExtremalRect::new(
            u,
            vec![1_048_575, 1_000_003, 999_999, 1_048_400, 777_777, 654_321],
        )
        .unwrap();
        let dec = ExtremalCubes::new(&rect);
        let first_ten: Vec<StandardCube> = dec.iter().take(10).collect();
        assert_eq!(first_ten.len(), 10);
        assert!(first_ten[0].side_exp() >= first_ten[9].side_exp());
        // The analytic total is huge (far more than we would ever enumerate).
        assert!(dec.count_cubes().map(|c| c > 1_000_000).unwrap_or(true));
    }
}
