//! Axis-aligned rectangles and the extremal rectangles of point-dominance
//! queries.
//!
//! A [`Rect`] is an arbitrary axis-aligned box of cells (inclusive bounds on
//! every dimension). An [`ExtremalRect`] is the special rectangle that a
//! point-dominance query searches: one of its corners is pinned at the
//! universe's top corner `(2^k − 1, …, 2^k − 1)`, so it is fully described by
//! its vector of side lengths `ℓ = (ℓ_1, …, ℓ_d)` (Section 3.1 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bits;
use crate::error::SfcError;
use crate::universe::{Point, Universe};
use crate::Result;

/// An axis-aligned rectangle of cells with inclusive bounds.
///
/// # Example
///
/// ```
/// use acd_sfc::Rect;
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let r = Rect::new(vec![2, 4], vec![5, 7])?;
/// assert_eq!(r.side_length(0), 4);
/// assert_eq!(r.volume(), Some(16));
/// assert!(r.contains_coords(&[3, 6]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    lo: Vec<u64>,
    hi: Vec<u64>,
}

impl Rect {
    /// Creates the rectangle `[lo_1, hi_1] × … × [lo_d, hi_d]`.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::DimensionMismatch`] if the bound vectors have
    /// different lengths, [`SfcError::Empty`] if they are empty, and
    /// [`SfcError::EmptyRectangle`] if `lo > hi` along any dimension.
    pub fn new(lo: Vec<u64>, hi: Vec<u64>) -> Result<Self> {
        if lo.is_empty() {
            return Err(SfcError::Empty);
        }
        if lo.len() != hi.len() {
            return Err(SfcError::DimensionMismatch {
                expected: lo.len(),
                actual: hi.len(),
            });
        }
        for (dim, (&l, &h)) in lo.iter().zip(hi.iter()).enumerate() {
            if l > h {
                return Err(SfcError::EmptyRectangle { dim });
            }
        }
        Ok(Rect { lo, hi })
    }

    /// The rectangle consisting of the single cell `point`.
    pub fn from_point(point: &Point) -> Self {
        Rect {
            lo: point.coords().to_vec(),
            hi: point.coords().to_vec(),
        }
    }

    /// The rectangle covering the whole universe.
    pub fn full(universe: &Universe) -> Self {
        Rect {
            lo: vec![0; universe.dims()],
            hi: vec![universe.max_coord(); universe.dims()],
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Inclusive lower bounds.
    pub fn lo(&self) -> &[u64] {
        &self.lo
    }

    /// Inclusive upper bounds.
    pub fn hi(&self) -> &[u64] {
        &self.hi
    }

    /// Side length (number of cells) along dimension `dim`.
    pub fn side_length(&self, dim: usize) -> u64 {
        self.hi[dim] - self.lo[dim] + 1
    }

    /// All side lengths as a vector.
    pub fn side_lengths(&self) -> Vec<u64> {
        (0..self.dims()).map(|d| self.side_length(d)).collect()
    }

    /// Number of cells in the rectangle, if it fits in a `u128`.
    pub fn volume(&self) -> Option<u128> {
        let mut v: u128 = 1;
        for d in 0..self.dims() {
            v = v.checked_mul(self.side_length(d) as u128)?;
        }
        Some(v)
    }

    /// Natural logarithm of the number of cells. Never overflows.
    pub fn ln_volume(&self) -> f64 {
        (0..self.dims())
            .map(|d| (self.side_length(d) as f64).ln())
            .sum()
    }

    /// Whether the rectangle contains the cell with the given coordinates.
    pub fn contains_coords(&self, coords: &[u64]) -> bool {
        coords.len() == self.dims()
            && coords
                .iter()
                .enumerate()
                .all(|(d, &c)| c >= self.lo[d] && c <= self.hi[d])
    }

    /// Whether the rectangle contains `point`.
    pub fn contains_point(&self, point: &Point) -> bool {
        self.contains_coords(point.coords())
    }

    /// Whether the rectangle fully contains `other`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.dims() == self.dims()
            && (0..self.dims()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Intersection with another rectangle, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        if other.dims() != self.dims() {
            return None;
        }
        let mut lo = Vec::with_capacity(self.dims());
        let mut hi = Vec::with_capacity(self.dims());
        for d in 0..self.dims() {
            let l = self.lo[d].max(other.lo[d]);
            let h = self.hi[d].min(other.hi[d]);
            if l > h {
                return None;
            }
            lo.push(l);
            hi.push(h);
        }
        Some(Rect { lo, hi })
    }

    /// Whether the two rectangles share at least one cell.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// The aspect ratio `α = b(ℓ_max) − b(ℓ_min)` of the rectangle, in bits.
    pub fn aspect_ratio(&self) -> u32 {
        bits::aspect_ratio(&self.side_lengths())
    }

    /// Validates that the rectangle lies inside `universe`.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::DimensionMismatch`] or
    /// [`SfcError::CoordinateOutOfRange`].
    pub fn validate_in(&self, universe: &Universe) -> Result<()> {
        if self.dims() != universe.dims() {
            return Err(SfcError::DimensionMismatch {
                expected: universe.dims(),
                actual: self.dims(),
            });
        }
        for (dim, &h) in self.hi.iter().enumerate() {
            if !universe.contains_coord(h) {
                return Err(SfcError::CoordinateOutOfRange {
                    dim,
                    value: h,
                    bound: universe.side(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in 0..self.dims() {
            if d > 0 {
                write!(f, " x ")?;
            }
            write!(f, "[{}, {}]", self.lo[d], self.hi[d])?;
        }
        Ok(())
    }
}

/// An *extremal* rectangle: an axis-aligned rectangle with one vertex pinned
/// at the universe's top corner `(2^k − 1, …, 2^k − 1)`.
///
/// A point-dominance query for the point `x` searches the extremal rectangle
/// with side lengths `ℓ_i = 2^k − x_i`; the rectangle is fully described by
/// its length vector `ℓ` (Section 3.1). The truncation operator
/// [`truncate`](ExtremalRect::truncate) produces the paper's `R^m(ℓ)` and
/// [`keep_bits_from`](ExtremalRect::keep_bits_from) produces `R(S_i(ℓ))`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExtremalRect {
    universe: Universe,
    lengths: Vec<u64>,
}

impl ExtremalRect {
    /// Creates the extremal rectangle with the given side lengths.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::DimensionMismatch`] if the length vector does not
    /// match the universe, and [`SfcError::InvalidSideLength`] if any length
    /// is zero or exceeds `2^k`.
    pub fn new(universe: Universe, lengths: Vec<u64>) -> Result<Self> {
        if lengths.len() != universe.dims() {
            return Err(SfcError::DimensionMismatch {
                expected: universe.dims(),
                actual: lengths.len(),
            });
        }
        for (dim, &l) in lengths.iter().enumerate() {
            if l == 0 || l > universe.side() {
                return Err(SfcError::InvalidSideLength {
                    dim,
                    length: l,
                    bound: universe.side(),
                });
            }
        }
        Ok(ExtremalRect { universe, lengths })
    }

    /// The extremal rectangle of the dominance query anchored at `query`:
    /// the region `[x_1, 2^k − 1] × … × [x_d, 2^k − 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `query` does not belong to `universe`.
    pub fn dominance_region(universe: &Universe, query: &Point) -> Result<Self> {
        universe.validate_point(query)?;
        let lengths = query
            .coords()
            .iter()
            .map(|&x| universe.side() - x)
            .collect();
        ExtremalRect::new(universe.clone(), lengths)
    }

    /// The universe this rectangle lives in.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The side-length vector `ℓ`.
    pub fn lengths(&self) -> &[u64] {
        &self.lengths
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lengths.len()
    }

    /// Converts to an ordinary [`Rect`] with explicit bounds.
    pub fn to_rect(&self) -> Rect {
        let side = self.universe.side();
        let lo: Vec<u64> = self.lengths.iter().map(|&l| side - l).collect();
        let hi = vec![self.universe.max_coord(); self.dims()];
        Rect { lo, hi }
    }

    /// Number of cells, if it fits in a `u128`.
    pub fn volume(&self) -> Option<u128> {
        let mut v: u128 = 1;
        for &l in &self.lengths {
            v = v.checked_mul(l as u128)?;
        }
        Some(v)
    }

    /// Natural logarithm of the number of cells.
    pub fn ln_volume(&self) -> f64 {
        self.lengths.iter().map(|&l| (l as f64).ln()).sum()
    }

    /// The aspect ratio `α = b(ℓ_max) − b(ℓ_min)` in bits.
    pub fn aspect_ratio(&self) -> u32 {
        bits::aspect_ratio(&self.lengths)
    }

    /// The paper's `R^m(ℓ) = R(t(ℓ, m))`: the extremal rectangle whose side
    /// lengths keep only their `m` most significant bits.
    ///
    /// By Lemma 3.2, choosing `m ≥ log2(2d/ε)` guarantees
    /// `vol(R^m(ℓ)) ≥ (1 − ε)·vol(R(ℓ))`.
    pub fn truncate(&self, m: u32) -> ExtremalRect {
        ExtremalRect {
            universe: self.universe.clone(),
            lengths: bits::truncate_to_msb_vec(&self.lengths, m.max(1)),
        }
    }

    /// The paper's `R(S_i(ℓ))`: the extremal rectangle whose side lengths
    /// keep only bits at positions `≥ i`. Returns `None` if any side length
    /// becomes zero (i.e. the rectangle would be empty).
    pub fn keep_bits_from(&self, i: u32) -> Option<ExtremalRect> {
        let lengths = bits::keep_bits_from_vec(&self.lengths, i);
        if lengths.contains(&0) {
            return None;
        }
        Some(ExtremalRect {
            universe: self.universe.clone(),
            lengths,
        })
    }

    /// The fraction `vol(other) / vol(self)` computed in log-space, so it is
    /// robust for very high-volume rectangles.
    pub fn volume_fraction_of(&self, other: &ExtremalRect) -> f64 {
        (other.ln_volume() - self.ln_volume()).exp()
    }

    /// The truncation parameter `m` needed for a `1 − ε` volume guarantee
    /// (Lemma 3.2), i.e. `ceil(log2(2d/ε))`.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::InvalidEpsilon`] if `epsilon` is not in `(0, 1)`.
    pub fn truncation_bits(&self, epsilon: f64) -> Result<u32> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SfcError::InvalidEpsilon { epsilon });
        }
        Ok(bits::truncation_bits_for_epsilon(self.dims(), epsilon))
    }
}

impl fmt::Display for ExtremalRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R(")?;
        for (i, l) in self.lengths.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(d: usize, k: u32) -> Universe {
        Universe::new(d, k).unwrap()
    }

    #[test]
    fn rect_construction_and_accessors() {
        let r = Rect::new(vec![1, 2, 3], vec![4, 2, 9]).unwrap();
        assert_eq!(r.dims(), 3);
        assert_eq!(r.side_lengths(), vec![4, 1, 7]);
        assert_eq!(r.volume(), Some(28));
        assert!((r.ln_volume() - (28f64).ln()).abs() < 1e-9);
        assert_eq!(r.to_string(), "[1, 4] x [2, 2] x [3, 9]");
    }

    #[test]
    fn rect_rejects_invalid_bounds() {
        assert!(Rect::new(vec![], vec![]).is_err());
        assert!(Rect::new(vec![1], vec![1, 2]).is_err());
        assert!(matches!(
            Rect::new(vec![5, 1], vec![4, 2]),
            Err(SfcError::EmptyRectangle { dim: 0 })
        ));
    }

    #[test]
    fn rect_containment_and_intersection() {
        let a = Rect::new(vec![0, 0], vec![7, 7]).unwrap();
        let b = Rect::new(vec![2, 3], vec![5, 6]).unwrap();
        let c = Rect::new(vec![6, 6], vec![9, 9]).unwrap();
        assert!(a.contains_rect(&b));
        assert!(!b.contains_rect(&a));
        assert!(a.contains_coords(&[7, 0]));
        assert!(!a.contains_coords(&[8, 0]));
        let i = a.intersect(&c).unwrap();
        assert_eq!(i, Rect::new(vec![6, 6], vec![7, 7]).unwrap());
        assert!(b.intersect(&c).is_none());
        assert!(!b.overlaps(&c));
    }

    #[test]
    fn rect_validate_in_universe() {
        let u = universe(2, 3);
        let ok = Rect::new(vec![0, 0], vec![7, 7]).unwrap();
        let bad = Rect::new(vec![0, 0], vec![8, 7]).unwrap();
        assert!(ok.validate_in(&u).is_ok());
        assert!(bad.validate_in(&u).is_err());
        let wrong_d = Rect::new(vec![0], vec![1]).unwrap();
        assert!(wrong_d.validate_in(&u).is_err());
    }

    #[test]
    fn full_rect_covers_universe() {
        let u = universe(3, 4);
        let r = Rect::full(&u);
        assert_eq!(r.volume(), u.volume());
        assert!(r.contains_point(&u.top_corner()));
        assert!(r.contains_point(&u.origin()));
    }

    #[test]
    fn extremal_rect_basics() {
        let u = universe(2, 8);
        let e = ExtremalRect::new(u.clone(), vec![256, 3]).unwrap();
        assert_eq!(e.volume(), Some(768));
        assert_eq!(
            e.to_rect(),
            Rect::new(vec![0, 253], vec![255, 255]).unwrap()
        );
        assert_eq!(e.aspect_ratio(), 9 - 2);
        assert_eq!(e.to_string(), "R(256, 3)");
    }

    #[test]
    fn extremal_rect_rejects_bad_lengths() {
        let u = universe(2, 4);
        assert!(ExtremalRect::new(u.clone(), vec![0, 1]).is_err());
        assert!(ExtremalRect::new(u.clone(), vec![17, 1]).is_err());
        assert!(ExtremalRect::new(u.clone(), vec![16]).is_err());
        assert!(ExtremalRect::new(u, vec![16, 16]).is_ok());
    }

    #[test]
    fn dominance_region_from_query_point() {
        let u = universe(3, 4);
        let q = Point::new(vec![0, 10, 15]).unwrap();
        let e = ExtremalRect::dominance_region(&u, &q).unwrap();
        assert_eq!(e.lengths(), &[16, 6, 1]);
        let r = e.to_rect();
        assert!(r.contains_point(&q));
        assert!(r.contains_point(&u.top_corner()));
        assert!(!r.contains_coords(&[0, 9, 15]));
    }

    #[test]
    fn truncation_preserves_volume_guarantee() {
        let u = universe(4, 10);
        let e = ExtremalRect::new(u, vec![1023, 513, 700, 999]).unwrap();
        for &eps in &[0.3, 0.1, 0.05, 0.01] {
            let m = e.truncation_bits(eps).unwrap();
            let t = e.truncate(m);
            let frac = e.volume_fraction_of(&t);
            assert!(frac >= 1.0 - eps - 1e-12, "eps={eps} m={m} frac={frac}");
            assert!(frac <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn truncate_is_contained_in_original() {
        let u = universe(3, 8);
        let e = ExtremalRect::new(u, vec![255, 100, 37]).unwrap();
        let t = e.truncate(2);
        assert!(e.to_rect().contains_rect(&t.to_rect()));
        // Truncating with m >= bit length is the identity.
        assert_eq!(e.truncate(8), e);
    }

    #[test]
    fn keep_bits_from_matches_paper_s_i() {
        let u = universe(2, 8);
        let e = ExtremalRect::new(u, vec![0b1011_0110, 0b0110_1011]).unwrap();
        let s4 = e.keep_bits_from(4).unwrap();
        assert_eq!(s4.lengths(), &[0b1011_0000, 0b0110_0000]);
        // High enough i empties the rectangle.
        assert!(e.keep_bits_from(8).is_none());
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let u = universe(2, 4);
        let e = ExtremalRect::new(u, vec![3, 3]).unwrap();
        assert!(matches!(
            e.truncation_bits(0.0),
            Err(SfcError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            e.truncation_bits(1.0),
            Err(SfcError::InvalidEpsilon { .. })
        ));
    }
}
