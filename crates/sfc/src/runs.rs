//! Runs: maximal contiguous segments of the SFC key order.
//!
//! A query region decomposed into standard cubes maps to a set of key ranges
//! (one per cube, by Fact 2.1). Cubes that happen to be adjacent in key order
//! merge into a single *run*; the cost of probing the SFC array is
//! proportional to the number of runs, not cubes, which is why
//! `runs(T) ≤ cubes(T)` (Lemma 3.1). This module converts cube sets into
//! runs and counts them — used both by the index and by the experiments that
//! reproduce the paper's Figure 1 and Figure 2 run counts.

use crate::cube::StandardCube;
use crate::curve::SpaceFillingCurve;
use crate::decompose::CubeStream;
use crate::key::{Key, KeyRange};
use crate::rect::Rect;
use crate::universe::Universe;
use crate::Result;

/// A run: a maximal contiguous key range produced by merging adjacent cube
/// ranges, remembering how many cubes it absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    range: KeyRange,
    cubes: usize,
}

impl Run {
    /// A run over `range` that absorbed `cubes` standard cubes.
    pub fn new(range: KeyRange, cubes: usize) -> Self {
        Run { range, cubes }
    }

    /// The merged key range.
    pub fn range(&self) -> &KeyRange {
        &self.range
    }

    /// How many standard cubes were merged into this run.
    pub fn cubes(&self) -> usize {
        self.cubes
    }
}

/// Merges the key ranges of `cubes` (under `curve`) into maximal runs,
/// returned in increasing key order.
///
/// # Errors
///
/// Returns an error if any cube does not belong to the curve's universe.
pub fn runs_of_cubes(curve: &dyn SpaceFillingCurve, cubes: &[StandardCube]) -> Result<Vec<Run>> {
    let mut ranges = Vec::with_capacity(cubes.len());
    for cube in cubes {
        ranges.push(curve.cube_key_range(cube)?);
    }
    Ok(merge_ranges(ranges))
}

/// Merges a set of disjoint key ranges into maximal runs, returned in
/// increasing key order.
pub fn merge_ranges(mut ranges: Vec<KeyRange>) -> Vec<Run> {
    ranges.sort_by(|a, b| a.lo().cmp(b.lo()));
    let mut out: Vec<Run> = Vec::new();
    for range in ranges {
        match out.last_mut() {
            Some(last) if last.range.is_adjacent_to(&range) || last.range.overlaps(&range) => {
                last.range = last.range.merge(&range);
                last.cubes += 1;
            }
            _ => out.push(Run { range, cubes: 1 }),
        }
    }
    out
}

/// The minimum number of runs covering a rectangle on the given curve: the
/// paper's `runs(T)`, computed by decomposing the rectangle into its greedy
/// minimum cube partition and merging adjacent ranges.
///
/// # Errors
///
/// Returns an error if the rectangle does not lie inside the curve's universe.
///
/// # Complexity
///
/// Enumerates the full cube decomposition; intended for the analysis and
/// experiment paths, not for the query hot path (the index merges lazily).
pub fn count_runs_of_rect(
    curve: &dyn SpaceFillingCurve,
    universe: &Universe,
    rect: &Rect,
) -> Result<u64> {
    let cubes = crate::decompose::decompose_rect(universe, rect)?;
    let runs = runs_of_cubes(curve, &cubes)?;
    Ok(runs.len() as u64)
}

/// A lazy stream of the [`Run`]s covering a rectangle, in increasing key
/// order, merged on the fly from a [`CubeStream`] and seekable past
/// arbitrarily large stretches of the decomposition.
///
/// This is the region-side cursor of the populated-key query sweep: the
/// dominance query gallops through the *stored* keys and asks this stream,
/// for each populated key, for the first run ending at-or-after it —
/// everything in between is skipped without being enumerated, merged or
/// probed.
///
/// `peek` returns the run the stream is positioned on. Note that after a
/// [`seek`](RunStream::seek) lands inside a run, the run reported may be a
/// *suffix* of the maximal run (cubes merged before the seek point are not
/// reconstructed); its end is always the maximal run's true end, which is
/// what the probe needs.
///
/// # Example
///
/// ```
/// use acd_sfc::{Key, Rect, RunStream, Universe, ZCurve};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let u = Universe::new(2, 10)?;
/// let curve = ZCurve::new(u.clone());
/// // The paper's 257x257 extremal square: 385 runs in total, but a stream
/// // seeked near the end enumerates only the tail.
/// let rect = Rect::new(vec![767, 767], vec![1023, 1023])?;
/// let mut runs = RunStream::new(&curve, &rect)?;
/// runs.seek(&Key::from_u128((1 << 20) - 10, 20));
/// let last = runs.peek().cloned();
/// assert!(runs.cubes_pulled() < 20);
/// assert_eq!(last.unwrap().range().hi().to_u128(), Some((1 << 20) - 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RunStream<'a, C: SpaceFillingCurve + ?Sized> {
    cubes: CubeStream<'a, C>,
    /// The fully merged run the stream is positioned on, if already computed.
    current: Option<Run>,
    /// The first cube range after `current`, pulled while detecting the end
    /// of the current run.
    lookahead: Option<KeyRange>,
    cubes_pulled: usize,
}

impl<'a, C: SpaceFillingCurve + ?Sized> RunStream<'a, C> {
    /// Creates a run stream over the decomposition of `rect` in the key
    /// order of `curve`.
    ///
    /// # Errors
    ///
    /// Returns an error if the rectangle does not lie inside the curve's
    /// universe.
    pub fn new(curve: &'a C, rect: &'a Rect) -> Result<Self> {
        Ok(RunStream {
            cubes: CubeStream::new(curve, rect)?,
            current: None,
            lookahead: None,
            cubes_pulled: 0,
        })
    }

    /// Number of cubes pulled from the underlying [`CubeStream`] so far — the
    /// decomposition work actually performed (skipped stretches pull none).
    pub fn cubes_pulled(&self) -> usize {
        self.cubes_pulled
    }

    fn pull(&mut self) -> Option<KeyRange> {
        let range = self.cubes.next_cube().map(|(_, range)| range)?;
        self.cubes_pulled += 1;
        Some(range)
    }

    /// The run the stream is positioned on, computing it if necessary, or
    /// `None` when the decomposition is exhausted.
    pub fn peek(&mut self) -> Option<&Run> {
        if self.current.is_none() {
            let start = match self.lookahead.take() {
                Some(range) => range,
                None => self.pull()?,
            };
            let mut range = start;
            let mut merged = 1usize;
            while let Some(next) = self.pull() {
                if range.is_adjacent_to(&next) {
                    range = range.merge(&next);
                    merged += 1;
                } else {
                    self.lookahead = Some(next);
                    break;
                }
            }
            self.current = Some(Run::new(range, merged));
        }
        self.current.as_ref()
    }

    /// The starting key of the run the stream is positioned on, *without*
    /// merging the run to its end — at most one cube is pulled. Merging only
    /// ever extends a run's end, so this equals `peek().range().lo()` at a
    /// fraction of the cost; it is what the populated-key sweep uses, since
    /// a gap jump only needs to know where the next run starts.
    pub fn peek_start(&mut self) -> Option<&Key> {
        if self.current.is_none() && self.lookahead.is_none() {
            self.lookahead = self.pull();
        }
        match (&self.current, &self.lookahead) {
            (Some(run), _) => Some(run.range().lo()),
            (None, Some(range)) => Some(range.lo()),
            (None, None) => None,
        }
    }

    /// Consumes and returns the run the stream is positioned on.
    pub fn next_run(&mut self) -> Option<Run> {
        self.peek()?;
        self.current.take()
    }

    /// Advances the stream so that [`peek`](RunStream::peek) returns the
    /// first run whose range ends at-or-after `key`, discarding everything
    /// before it (whether already materialized or still unenumerated inside
    /// the cube stream). Seeking backwards is a no-op.
    pub fn seek(&mut self, key: &Key) {
        if let Some(run) = &self.current {
            if run.range().hi() < key {
                self.current = None;
            }
        }
        if self.current.is_none() {
            if let Some(range) = &self.lookahead {
                if range.hi() < key {
                    self.lookahead = None;
                }
            }
            if self.lookahead.is_none() {
                self.cubes.seek(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gray::GrayCurve;
    use crate::hilbert::HilbertCurve;
    use crate::key::Key;
    use crate::zorder::ZCurve;

    fn universe(d: usize, k: u32) -> Universe {
        Universe::new(d, k).unwrap()
    }

    #[test]
    fn merge_ranges_merges_adjacent_and_keeps_gaps() {
        let r = |lo: u128, hi: u128| {
            KeyRange::new(Key::from_u128(lo, 16), Key::from_u128(hi, 16)).unwrap()
        };
        let runs = merge_ranges(vec![r(8, 11), r(0, 3), r(4, 7), r(13, 13)]);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].range().lo().to_u128(), Some(0));
        assert_eq!(runs[0].range().hi().to_u128(), Some(11));
        assert_eq!(runs[0].cubes(), 3);
        assert_eq!(runs[1].range().lo().to_u128(), Some(13));
        assert_eq!(runs[1].cubes(), 1);
    }

    #[test]
    fn runs_never_exceed_cubes_lemma_3_1() {
        let u = universe(2, 6);
        let z = ZCurve::new(u.clone());
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 64
        };
        for _ in 0..30 {
            let (a, b, c, d) = (next(), next(), next(), next());
            let rect = Rect::new(vec![a.min(b), c.min(d)], vec![a.max(b), c.max(d)]).unwrap();
            let cubes = crate::decompose::decompose_rect(&u, &rect).unwrap();
            let runs = runs_of_cubes(&z, &cubes).unwrap();
            assert!(runs.len() <= cubes.len());
            let merged: usize = runs.iter().map(|r| r.cubes()).sum();
            assert_eq!(merged, cubes.len());
        }
    }

    #[test]
    fn figure_1_hilbert_needs_no_more_runs_than_z() {
        // Figure 1 of the paper: the same rectangle needs 2 runs on the
        // Hilbert curve and 3 on the Z curve. We reproduce the phenomenon
        // with the canonical example: the 2x4 rectangle straddling the
        // universe's vertical midline.
        let u = universe(2, 3);
        let z = ZCurve::new(u.clone());
        let h = HilbertCurve::new(u.clone());
        let rect = Rect::new(vec![2, 0], vec![5, 1]).unwrap();
        let z_runs = count_runs_of_rect(&z, &u, &rect).unwrap();
        let h_runs = count_runs_of_rect(&h, &u, &rect).unwrap();
        assert!(h_runs <= z_runs, "hilbert {h_runs} vs z {z_runs}");
        assert!(z_runs >= 2);
    }

    #[test]
    fn figure_2_run_counts() {
        let u = universe(2, 10);
        let z = ZCurve::new(u.clone());
        // First query region: an aligned 256x256 extremal square is a single
        // run.
        let aligned = Rect::new(vec![768, 768], vec![1023, 1023]).unwrap();
        assert_eq!(count_runs_of_rect(&z, &u, &aligned).unwrap(), 1);
        // Second query region: the 257x257 extremal square needs 385 runs on
        // the Z curve, exactly as the paper reports.
        let off = Rect::new(vec![767, 767], vec![1023, 1023]).unwrap();
        assert_eq!(count_runs_of_rect(&z, &u, &off).unwrap(), 385);
    }

    #[test]
    fn single_cube_regions_are_single_runs_on_all_curves() {
        let u = universe(3, 3);
        let curves: Vec<Box<dyn SpaceFillingCurve>> = vec![
            Box::new(ZCurve::new(u.clone())),
            Box::new(HilbertCurve::new(u.clone())),
            Box::new(GrayCurve::new(u.clone())),
        ];
        for curve in &curves {
            for exp in 0..=3u32 {
                let side = 1u64 << exp;
                let cube = StandardCube::new(&u, vec![8 - side, 0, 8 - side], exp).unwrap();
                let runs = runs_of_cubes(curve.as_ref(), std::slice::from_ref(&cube)).unwrap();
                assert_eq!(runs.len(), 1, "{} cube {cube}", curve.name());
                assert_eq!(runs[0].range().len(), Some(cube.volume().unwrap()));
            }
        }
    }

    #[test]
    fn run_stream_matches_eager_runs_on_all_curves() {
        let u = universe(2, 5);
        let curves: Vec<Box<dyn SpaceFillingCurve>> = vec![
            Box::new(ZCurve::new(u.clone())),
            Box::new(HilbertCurve::new(u.clone())),
            Box::new(GrayCurve::new(u.clone())),
        ];
        let mut state = 77u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 32
        };
        for curve in &curves {
            for _ in 0..15 {
                let (a, b, c, d) = (next(), next(), next(), next());
                let rect = Rect::new(vec![a.min(b), c.min(d)], vec![a.max(b), c.max(d)]).unwrap();
                let cubes = crate::decompose::decompose_rect(&u, &rect).unwrap();
                let eager = runs_of_cubes(curve.as_ref(), &cubes).unwrap();
                let mut stream = RunStream::new(curve.as_ref(), &rect).unwrap();
                let mut streamed = Vec::new();
                while let Some(run) = stream.next_run() {
                    streamed.push(run);
                }
                assert_eq!(streamed, eager, "{} {rect}", curve.name());
                assert_eq!(stream.cubes_pulled(), cubes.len());
            }
        }
    }

    #[test]
    fn run_stream_seek_lands_on_the_first_run_ending_at_or_after_the_key() {
        let u = universe(2, 6);
        let z = ZCurve::new(u.clone());
        let rect = Rect::new(vec![5, 3], vec![60, 47]).unwrap();
        let cubes = crate::decompose::decompose_rect(&u, &rect).unwrap();
        let eager = runs_of_cubes(&z, &cubes).unwrap();
        assert!(eager.len() > 5);
        for target in &eager {
            // Seek to the start of each run: peek_start must land on it with
            // at most one cube pulled past the seek point, and peek must
            // report a run ending exactly where the maximal run ends.
            let mut stream = RunStream::new(&z, &rect).unwrap();
            stream.seek(target.range().lo());
            let pulled_before = stream.cubes_pulled();
            assert_eq!(stream.peek_start(), Some(target.range().lo()));
            assert!(stream.cubes_pulled() <= pulled_before + 1);
            let got = stream.peek().unwrap().clone();
            assert_eq!(got.range().hi(), target.range().hi());
            assert!(got.range().lo() >= target.range().lo());
            assert_eq!(stream.peek_start(), Some(got.range().lo()));
            // A fresh stream seeked just past the run lands on the next one.
            if let Some(after) = target.range().hi().successor() {
                let mut stream = RunStream::new(&z, &rect).unwrap();
                stream.seek(&after);
                let expected = eager.iter().find(|r| r.range().hi() >= &after);
                match (stream.peek(), expected) {
                    (Some(got), Some(want)) => {
                        assert_eq!(got.range().hi(), want.range().hi());
                    }
                    (None, None) => {}
                    (got, want) => panic!("mismatch: {got:?} vs {want:?}"),
                }
            }
        }
        // Seeking straight to the last run's end reaches it without pulling
        // the whole decomposition; seeking past it exhausts the stream.
        let last_hi = eager.last().unwrap().range().hi().clone();
        let mut stream = RunStream::new(&z, &rect).unwrap();
        stream.seek(&last_hi);
        let last = stream.peek().cloned().unwrap();
        assert_eq!(last.range().hi(), &last_hi);
        assert!(stream.cubes_pulled() < cubes.len());
        stream.seek(&Key::max_value(12));
        assert!(stream.peek().is_none());
    }

    #[test]
    fn interleaved_seek_and_next_run_skips_without_losing_runs() {
        let u = universe(2, 6);
        let z = ZCurve::new(u.clone());
        let rect = Rect::new(vec![1, 1], vec![62, 61]).unwrap();
        let cubes = crate::decompose::decompose_rect(&u, &rect).unwrap();
        let eager = runs_of_cubes(&z, &cubes).unwrap();
        let mut stream = RunStream::new(&z, &rect).unwrap();
        // Visit every third run by seeking to its lo, consuming it, and
        // asserting we saw the right ends in order.
        let mut seen = Vec::new();
        for target in eager.iter().step_by(3) {
            stream.seek(target.range().lo());
            let run = stream.next_run().unwrap();
            seen.push(run.range().hi().clone());
        }
        let expected: Vec<Key> = eager
            .iter()
            .step_by(3)
            .map(|r| r.range().hi().clone())
            .collect();
        assert_eq!(seen, expected);
        assert!(stream.cubes_pulled() <= cubes.len());
    }

    #[test]
    fn run_counting_is_consistent_with_brute_force() {
        // Brute force: sort all cell keys in the rectangle and count
        // discontinuities. Must equal the cube-merge computation.
        let u = universe(2, 4);
        let z = ZCurve::new(u.clone());
        let rect = Rect::new(vec![3, 5], vec![12, 11]).unwrap();
        let mut keys: Vec<u128> = Vec::new();
        for x in 3..=12u64 {
            for y in 5..=11u64 {
                keys.push(
                    z.key_of_point(&crate::universe::Point::new(vec![x, y]).unwrap())
                        .unwrap()
                        .to_u128()
                        .unwrap(),
                );
            }
        }
        keys.sort_unstable();
        let mut brute_runs = 1u64;
        for w in keys.windows(2) {
            if w[1] != w[0] + 1 {
                brute_runs += 1;
            }
        }
        assert_eq!(count_runs_of_rect(&z, &u, &rect).unwrap(), brute_runs);
    }
}
