//! Runs: maximal contiguous segments of the SFC key order.
//!
//! A query region decomposed into standard cubes maps to a set of key ranges
//! (one per cube, by Fact 2.1). Cubes that happen to be adjacent in key order
//! merge into a single *run*; the cost of probing the SFC array is
//! proportional to the number of runs, not cubes, which is why
//! `runs(T) ≤ cubes(T)` (Lemma 3.1). This module converts cube sets into
//! runs and counts them — used both by the index and by the experiments that
//! reproduce the paper's Figure 1 and Figure 2 run counts.

use crate::cube::StandardCube;
use crate::curve::SpaceFillingCurve;
use crate::key::KeyRange;
use crate::rect::Rect;
use crate::universe::Universe;
use crate::Result;

/// A run: a maximal contiguous key range produced by merging adjacent cube
/// ranges, remembering how many cubes it absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    range: KeyRange,
    cubes: usize,
}

impl Run {
    /// The merged key range.
    pub fn range(&self) -> &KeyRange {
        &self.range
    }

    /// How many standard cubes were merged into this run.
    pub fn cubes(&self) -> usize {
        self.cubes
    }
}

/// Merges the key ranges of `cubes` (under `curve`) into maximal runs,
/// returned in increasing key order.
///
/// # Errors
///
/// Returns an error if any cube does not belong to the curve's universe.
pub fn runs_of_cubes(curve: &dyn SpaceFillingCurve, cubes: &[StandardCube]) -> Result<Vec<Run>> {
    let mut ranges = Vec::with_capacity(cubes.len());
    for cube in cubes {
        ranges.push(curve.cube_key_range(cube)?);
    }
    Ok(merge_ranges(ranges))
}

/// Merges a set of disjoint key ranges into maximal runs, returned in
/// increasing key order.
pub fn merge_ranges(mut ranges: Vec<KeyRange>) -> Vec<Run> {
    ranges.sort_by(|a, b| a.lo().cmp(b.lo()));
    let mut out: Vec<Run> = Vec::new();
    for range in ranges {
        match out.last_mut() {
            Some(last) if last.range.is_adjacent_to(&range) || last.range.overlaps(&range) => {
                last.range = last.range.merge(&range);
                last.cubes += 1;
            }
            _ => out.push(Run { range, cubes: 1 }),
        }
    }
    out
}

/// The minimum number of runs covering a rectangle on the given curve: the
/// paper's `runs(T)`, computed by decomposing the rectangle into its greedy
/// minimum cube partition and merging adjacent ranges.
///
/// # Errors
///
/// Returns an error if the rectangle does not lie inside the curve's universe.
///
/// # Complexity
///
/// Enumerates the full cube decomposition; intended for the analysis and
/// experiment paths, not for the query hot path (the index merges lazily).
pub fn count_runs_of_rect(
    curve: &dyn SpaceFillingCurve,
    universe: &Universe,
    rect: &Rect,
) -> Result<u64> {
    let cubes = crate::decompose::decompose_rect(universe, rect)?;
    let runs = runs_of_cubes(curve, &cubes)?;
    Ok(runs.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gray::GrayCurve;
    use crate::hilbert::HilbertCurve;
    use crate::key::Key;
    use crate::zorder::ZCurve;

    fn universe(d: usize, k: u32) -> Universe {
        Universe::new(d, k).unwrap()
    }

    #[test]
    fn merge_ranges_merges_adjacent_and_keeps_gaps() {
        let r = |lo: u128, hi: u128| {
            KeyRange::new(Key::from_u128(lo, 16), Key::from_u128(hi, 16)).unwrap()
        };
        let runs = merge_ranges(vec![r(8, 11), r(0, 3), r(4, 7), r(13, 13)]);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].range().lo().to_u128(), Some(0));
        assert_eq!(runs[0].range().hi().to_u128(), Some(11));
        assert_eq!(runs[0].cubes(), 3);
        assert_eq!(runs[1].range().lo().to_u128(), Some(13));
        assert_eq!(runs[1].cubes(), 1);
    }

    #[test]
    fn runs_never_exceed_cubes_lemma_3_1() {
        let u = universe(2, 6);
        let z = ZCurve::new(u.clone());
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) % 64
        };
        for _ in 0..30 {
            let (a, b, c, d) = (next(), next(), next(), next());
            let rect = Rect::new(vec![a.min(b), c.min(d)], vec![a.max(b), c.max(d)]).unwrap();
            let cubes = crate::decompose::decompose_rect(&u, &rect).unwrap();
            let runs = runs_of_cubes(&z, &cubes).unwrap();
            assert!(runs.len() <= cubes.len());
            let merged: usize = runs.iter().map(|r| r.cubes()).sum();
            assert_eq!(merged, cubes.len());
        }
    }

    #[test]
    fn figure_1_hilbert_needs_no_more_runs_than_z() {
        // Figure 1 of the paper: the same rectangle needs 2 runs on the
        // Hilbert curve and 3 on the Z curve. We reproduce the phenomenon
        // with the canonical example: the 2x4 rectangle straddling the
        // universe's vertical midline.
        let u = universe(2, 3);
        let z = ZCurve::new(u.clone());
        let h = HilbertCurve::new(u.clone());
        let rect = Rect::new(vec![2, 0], vec![5, 1]).unwrap();
        let z_runs = count_runs_of_rect(&z, &u, &rect).unwrap();
        let h_runs = count_runs_of_rect(&h, &u, &rect).unwrap();
        assert!(h_runs <= z_runs, "hilbert {h_runs} vs z {z_runs}");
        assert!(z_runs >= 2);
    }

    #[test]
    fn figure_2_run_counts() {
        let u = universe(2, 10);
        let z = ZCurve::new(u.clone());
        // First query region: an aligned 256x256 extremal square is a single
        // run.
        let aligned = Rect::new(vec![768, 768], vec![1023, 1023]).unwrap();
        assert_eq!(count_runs_of_rect(&z, &u, &aligned).unwrap(), 1);
        // Second query region: the 257x257 extremal square needs 385 runs on
        // the Z curve, exactly as the paper reports.
        let off = Rect::new(vec![767, 767], vec![1023, 1023]).unwrap();
        assert_eq!(count_runs_of_rect(&z, &u, &off).unwrap(), 385);
    }

    #[test]
    fn single_cube_regions_are_single_runs_on_all_curves() {
        let u = universe(3, 3);
        let curves: Vec<Box<dyn SpaceFillingCurve>> = vec![
            Box::new(ZCurve::new(u.clone())),
            Box::new(HilbertCurve::new(u.clone())),
            Box::new(GrayCurve::new(u.clone())),
        ];
        for curve in &curves {
            for exp in 0..=3u32 {
                let side = 1u64 << exp;
                let cube = StandardCube::new(&u, vec![8 - side, 0, 8 - side], exp).unwrap();
                let runs = runs_of_cubes(curve.as_ref(), std::slice::from_ref(&cube)).unwrap();
                assert_eq!(runs.len(), 1, "{} cube {cube}", curve.name());
                assert_eq!(runs[0].range().len(), Some(cube.volume().unwrap()));
            }
        }
    }

    #[test]
    fn run_counting_is_consistent_with_brute_force() {
        // Brute force: sort all cell keys in the rectangle and count
        // discontinuities. Must equal the cube-merge computation.
        let u = universe(2, 4);
        let z = ZCurve::new(u.clone());
        let rect = Rect::new(vec![3, 5], vec![12, 11]).unwrap();
        let mut keys: Vec<u128> = Vec::new();
        for x in 3..=12u64 {
            for y in 5..=11u64 {
                keys.push(
                    z.key_of_point(&crate::universe::Point::new(vec![x, y]).unwrap())
                        .unwrap()
                        .to_u128()
                        .unwrap(),
                );
            }
        }
        keys.sort_unstable();
        let mut brute_runs = 1u64;
        for w in keys.windows(2) {
            if w[1] != w[0] + 1 {
                brute_runs += 1;
            }
        }
        assert_eq!(count_runs_of_rect(&z, &u, &rect).unwrap(), brute_runs);
    }
}
