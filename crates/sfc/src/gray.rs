//! The Gray-code space filling curve.
//!
//! Faloutsos proposed ordering multi-attribute data by treating the
//! bit-interleaved coordinates as a reflected Gray code: the position of a
//! cell on the curve is the rank of its interleaved bit string in Gray-code
//! order. Converting between the two is a prefix-XOR, which is
//! prefix-preserving, so the Gray-code curve is also a recursive curve and
//! standard cubes remain single runs (Fact 2.1).

use crate::curve::{CurveKind, SpaceFillingCurve};
use crate::key::Key;
use crate::universe::{Point, Universe};
use crate::zorder::ZCurve;
use crate::Result;

/// The Gray-code space filling curve over a fixed universe.
///
/// # Example
///
/// ```
/// use acd_sfc::{Universe, Point, GrayCurve, ZCurve, SpaceFillingCurve};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let u = Universe::new(2, 2)?;
/// let gray = GrayCurve::new(u.clone());
/// let z = ZCurve::new(u);
/// let p = Point::new(vec![1, 2])?;
/// // The Gray-code rank generally differs from the Morton rank...
/// let gk = gray.key_of_point(&p)?;
/// let zk = z.key_of_point(&p)?;
/// assert_ne!(gk, zk);
/// // ...but both decode back to the same cell.
/// assert_eq!(gray.point_of_key(&gk)?, z.point_of_key(&zk)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayCurve {
    universe: Universe,
}

impl GrayCurve {
    /// Creates a Gray-code curve over `universe`.
    pub fn new(universe: Universe) -> Self {
        GrayCurve { universe }
    }

    /// Gray-code decode (rank of a Gray codeword): `b_i = g_i ⊕ b_{i+1}`,
    /// scanning from the most significant bit. Keys that fit 128 bits use
    /// the logarithmic XOR-shift cascade on the inline value — no per-bit
    /// walk, no allocation.
    fn gray_rank(key: &Key) -> Key {
        let bits = key.bits();
        if bits <= 128 {
            let mut v = key.to_u128().expect("≤128-bit keys always fit a u128");
            let mut shift = 1u32;
            while shift < 128 {
                v ^= v >> shift;
                shift <<= 1;
            }
            return Key::from_u128(v, bits);
        }
        let mut out = Key::zero(bits);
        let mut acc = false;
        for i in (0..bits).rev() {
            acc ^= key.bit(i);
            out.set_bit(i, acc);
        }
        out
    }

    /// Gray-code encode (codeword of a rank): `g = b ⊕ (b >> 1)`.
    fn gray_codeword(rank: &Key) -> Key {
        let bits = rank.bits();
        if bits <= 128 {
            let v = rank.to_u128().expect("≤128-bit keys always fit a u128");
            return Key::from_u128(v ^ (v >> 1), bits);
        }
        let mut out = Key::zero(bits);
        for i in 0..bits {
            let hi = if i + 1 < bits { rank.bit(i + 1) } else { false };
            out.set_bit(i, rank.bit(i) ^ hi);
        }
        out
    }
}

impl SpaceFillingCurve for GrayCurve {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn kind(&self) -> CurveKind {
        CurveKind::Gray
    }

    fn key_of_point(&self, point: &Point) -> Result<Key> {
        self.universe.validate_point(point)?;
        let interleaved = ZCurve::interleave(&self.universe, point.coords());
        Ok(Self::gray_rank(&interleaved))
    }

    fn point_of_key(&self, key: &Key) -> Result<Point> {
        key.expect_bits(self.universe.key_bits())?;
        let interleaved = Self::gray_codeword(key);
        Ok(Point::from_vec(ZCurve::deinterleave(
            &self.universe,
            &interleaved,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::StandardCube;

    fn curve(d: usize, k: u32) -> GrayCurve {
        GrayCurve::new(Universe::new(d, k).unwrap())
    }

    fn all_points(d: usize, k: u32) -> Vec<Point> {
        let side = 1u64 << k;
        let total = side.pow(d as u32);
        (0..total)
            .map(|idx| {
                let mut coords = vec![0u64; d];
                let mut rem = idx;
                for coord in coords.iter_mut() {
                    *coord = rem % side;
                    rem /= side;
                }
                Point::new(coords).unwrap()
            })
            .collect()
    }

    #[test]
    fn gray_rank_and_codeword_are_inverses() {
        for v in 0u128..256 {
            let key = Key::from_u128(v, 8);
            let rank = GrayCurve::gray_rank(&key);
            assert_eq!(GrayCurve::gray_codeword(&rank), key);
        }
    }

    #[test]
    fn gray_rank_matches_scalar_formula() {
        // For small widths, compare against the classic u64 formulation.
        fn scalar_rank(mut g: u64) -> u64 {
            let mut mask = g >> 1;
            while mask != 0 {
                g ^= mask;
                mask >>= 1;
            }
            g
        }
        for v in 0u64..512 {
            let key = Key::from_u128(v as u128, 10);
            assert_eq!(
                GrayCurve::gray_rank(&key).to_u128(),
                Some(scalar_rank(v) as u128)
            );
        }
    }

    #[test]
    fn encode_decode_round_trip_and_bijection() {
        for (d, k) in [(2usize, 3u32), (3, 2)] {
            let c = curve(d, k);
            let mut seen = std::collections::BTreeSet::new();
            for p in all_points(d, k) {
                let key = c.key_of_point(&p).unwrap();
                assert_eq!(c.point_of_key(&key).unwrap(), p);
                seen.insert(key.to_u128().unwrap());
            }
            let side = 1u64 << k;
            assert_eq!(seen.len() as u64, side.pow(d as u32));
        }
    }

    #[test]
    fn consecutive_keys_differ_in_one_coordinate_bit() {
        // The Gray-code curve's locality property: consecutive ranks have
        // codewords differing in exactly one bit, i.e. consecutive cells
        // differ in exactly one coordinate, by a power of two.
        let c = curve(2, 3);
        let total = 64u128;
        let mut prev = c.point_of_key(&Key::from_u128(0, 6)).unwrap();
        for i in 1..total {
            let p = c.point_of_key(&Key::from_u128(i, 6)).unwrap();
            let differing: Vec<usize> = (0..2).filter(|&d| p.coord(d) != prev.coord(d)).collect();
            assert_eq!(differing.len(), 1, "rank {i}");
            let d = differing[0];
            let diff = p.coord(d).abs_diff(prev.coord(d));
            assert!(diff.is_power_of_two());
            prev = p;
        }
    }

    #[test]
    fn standard_cubes_are_single_runs() {
        let u = Universe::new(2, 3).unwrap();
        let c = GrayCurve::new(u.clone());
        for exp in 0..=3u32 {
            let side = 1u64 << exp;
            let mut x = 0;
            while x < 8 {
                let mut y = 0;
                while y < 8 {
                    let cube = StandardCube::new(&u, vec![x, y], exp).unwrap();
                    let mut keys: Vec<u128> = all_points(2, 3)
                        .into_iter()
                        .filter(|p| cube.contains_coords(p.coords()))
                        .map(|p| c.key_of_point(&p).unwrap().to_u128().unwrap())
                        .collect();
                    keys.sort_unstable();
                    assert_eq!(
                        keys.last().unwrap() - keys.first().unwrap() + 1,
                        keys.len() as u128
                    );
                    let range = c.cube_key_range(&cube).unwrap();
                    assert_eq!(range.lo().to_u128(), Some(*keys.first().unwrap()));
                    assert_eq!(range.hi().to_u128(), Some(*keys.last().unwrap()));
                    y += side;
                }
                x += side;
            }
        }
    }

    #[test]
    fn multi_word_keys_round_trip() {
        let u = Universe::new(18, 8).unwrap(); // 144-bit keys
        let c = GrayCurve::new(u);
        let p = Point::new((0..18).map(|i| (i * 29 + 11) % 256).collect()).unwrap();
        let key = c.key_of_point(&p).unwrap();
        assert_eq!(c.point_of_key(&key).unwrap(), p);
    }
}
