//! The Hilbert space filling curve in arbitrary dimension.
//!
//! The implementation follows the classic "transpose" formulation
//! (Skilling-style bit manipulation): coordinates are first converted into a
//! transposed Hilbert representation with the same number of bits, and the
//! final key is the bit interleaving of the transposed coordinates. The
//! inverse applies the steps in reverse. Like the Z curve, the Hilbert curve
//! recursively bisects the universe, so standard cubes are contiguous key
//! ranges (Fact 2.1) and the generic
//! [`cube_key_range`](crate::SpaceFillingCurve::cube_key_range) applies.

use crate::curve::{CurveKind, SpaceFillingCurve};
use crate::key::Key;
use crate::universe::{Point, Universe};
use crate::zorder::ZCurve;
use crate::Result;

/// The Hilbert space filling curve over a fixed universe.
///
/// # Example
///
/// ```
/// use acd_sfc::{Universe, Point, HilbertCurve, SpaceFillingCurve};
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let curve = HilbertCurve::new(Universe::new(2, 2)?);
/// // The 4x4 Hilbert curve starts at (0,0) and ends at (3,0).
/// let first = curve.point_of_key(&acd_sfc::Key::from_u128(0, 4))?;
/// let last = curve.point_of_key(&acd_sfc::Key::from_u128(15, 4))?;
/// assert_eq!(first.coords(), &[0, 0]);
/// assert_eq!(last.coords(), &[3, 0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HilbertCurve {
    universe: Universe,
}

impl HilbertCurve {
    /// Creates a Hilbert curve over `universe`.
    pub fn new(universe: Universe) -> Self {
        HilbertCurve { universe }
    }

    /// Converts axis coordinates into the transposed Hilbert representation.
    fn axes_to_transpose(coords: &mut [u64], bits: u32) {
        let n = coords.len();
        if bits == 0 || n == 0 {
            return;
        }
        let m = 1u64 << (bits - 1);

        // Inverse undo excess work.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if coords[i] & q != 0 {
                    coords[0] ^= p;
                } else {
                    let t = (coords[0] ^ coords[i]) & p;
                    coords[0] ^= t;
                    coords[i] ^= t;
                }
            }
            q >>= 1;
        }

        // Gray encode.
        for i in 1..n {
            coords[i] ^= coords[i - 1];
        }
        let mut t = 0u64;
        let mut q = m;
        while q > 1 {
            if coords[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for c in coords.iter_mut() {
            *c ^= t;
        }
    }

    /// Converts the transposed Hilbert representation back into axis
    /// coordinates.
    fn transpose_to_axes(coords: &mut [u64], bits: u32) {
        let n = coords.len();
        if bits == 0 || n == 0 {
            return;
        }
        let top = 1u64 << (bits - 1);

        // Gray decode by H ^ (H/2).
        let t = coords[n - 1] >> 1;
        for i in (1..n).rev() {
            coords[i] ^= coords[i - 1];
        }
        coords[0] ^= t;

        // Undo excess work.
        let mut q = 2u64;
        while q <= top {
            let p = q - 1;
            for i in (0..n).rev() {
                if coords[i] & q != 0 {
                    coords[0] ^= p;
                } else {
                    let t = (coords[0] ^ coords[i]) & p;
                    coords[0] ^= t;
                    coords[i] ^= t;
                }
            }
            q <<= 1;
        }
    }
}

impl SpaceFillingCurve for HilbertCurve {
    fn universe(&self) -> &Universe {
        &self.universe
    }

    fn kind(&self) -> CurveKind {
        CurveKind::Hilbert
    }

    fn key_of_point(&self, point: &Point) -> Result<Key> {
        self.universe.validate_point(point)?;
        let d = self.universe.dims();
        let k = self.universe.bits_per_dim();
        if d <= crate::universe::POINT_INLINE_DIMS {
            // Transpose in a stack buffer: no allocation for the common
            // low-dimensional dominance shapes.
            let mut buf = [0u64; crate::universe::POINT_INLINE_DIMS];
            buf[..d].copy_from_slice(point.coords());
            Self::axes_to_transpose(&mut buf[..d], k);
            return Ok(ZCurve::interleave(&self.universe, &buf[..d]));
        }
        let mut coords = point.coords().to_vec();
        Self::axes_to_transpose(&mut coords, k);
        Ok(ZCurve::interleave(&self.universe, &coords))
    }

    fn point_of_key(&self, key: &Key) -> Result<Point> {
        key.expect_bits(self.universe.key_bits())?;
        let mut coords = ZCurve::deinterleave(&self.universe, key);
        Self::transpose_to_axes(&mut coords, self.universe.bits_per_dim());
        Ok(Point::from_vec(coords))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::StandardCube;
    use crate::SpaceFillingCurve;

    fn curve(d: usize, k: u32) -> HilbertCurve {
        HilbertCurve::new(Universe::new(d, k).unwrap())
    }

    fn all_points(d: usize, k: u32) -> Vec<Point> {
        let side = 1u64 << k;
        let total = side.pow(d as u32);
        (0..total)
            .map(|idx| {
                let mut coords = vec![0u64; d];
                let mut rem = idx;
                for coord in coords.iter_mut() {
                    *coord = rem % side;
                    rem /= side;
                }
                Point::new(coords).unwrap()
            })
            .collect()
    }

    #[test]
    fn two_by_two_order_is_the_u_shape() {
        let c = curve(2, 1);
        let order: Vec<Vec<u64>> = (0..4u128)
            .map(|i| {
                c.point_of_key(&Key::from_u128(i, 2))
                    .unwrap()
                    .coords()
                    .to_vec()
            })
            .collect();
        // The first-order 2D Hilbert curve is a U: (0,0) (0,1) (1,1) (1,0).
        assert_eq!(order, vec![vec![0, 0], vec![0, 1], vec![1, 1], vec![1, 0]]);
    }

    #[test]
    fn encode_decode_round_trip_and_bijection() {
        for (d, k) in [(2usize, 3u32), (3, 2), (4, 2)] {
            let c = curve(d, k);
            let mut seen = std::collections::BTreeSet::new();
            for p in all_points(d, k) {
                let key = c.key_of_point(&p).unwrap();
                assert_eq!(c.point_of_key(&key).unwrap(), p, "round trip for {p}");
                seen.insert(format!("{key:b}"));
            }
            let side = 1u64 << k;
            assert_eq!(seen.len() as u64, side.pow(d as u32));
        }
    }

    #[test]
    fn consecutive_keys_are_adjacent_cells() {
        // The defining locality property of the Hilbert curve: consecutive
        // keys differ in exactly one coordinate by exactly one.
        for (d, k) in [(2usize, 4u32), (3, 3)] {
            let c = curve(d, k);
            let total: u128 = 1u128 << (d as u32 * k);
            let mut prev = c.point_of_key(&Key::from_u128(0, d as u32 * k)).unwrap();
            for i in 1..total {
                let p = c.point_of_key(&Key::from_u128(i, d as u32 * k)).unwrap();
                let dist: u64 = p
                    .coords()
                    .iter()
                    .zip(prev.coords())
                    .map(|(&a, &b)| a.abs_diff(b))
                    .sum();
                assert_eq!(dist, 1, "keys {i} and {} are not adjacent", i - 1);
                prev = p;
            }
        }
    }

    #[test]
    fn standard_cubes_are_single_runs() {
        // Fact 2.1 for the Hilbert curve: the keys of the cells of any
        // standard cube form a contiguous range.
        let u = Universe::new(2, 3).unwrap();
        let c = HilbertCurve::new(u.clone());
        for exp in 0..=3u32 {
            let side = 1u64 << exp;
            let mut x = 0;
            while x < 8 {
                let mut y = 0;
                while y < 8 {
                    let cube = StandardCube::new(&u, vec![x, y], exp).unwrap();
                    let mut keys: Vec<u128> = vec![];
                    for p in all_points(2, 3) {
                        if cube.contains_coords(p.coords()) {
                            keys.push(c.key_of_point(&p).unwrap().to_u128().unwrap());
                        }
                    }
                    keys.sort_unstable();
                    assert_eq!(
                        keys.last().unwrap() - keys.first().unwrap() + 1,
                        keys.len() as u128,
                        "cube {cube} is not contiguous"
                    );
                    // And the generic cube_key_range matches.
                    let range = c.cube_key_range(&cube).unwrap();
                    assert_eq!(range.lo().to_u128(), Some(*keys.first().unwrap()));
                    assert_eq!(range.hi().to_u128(), Some(*keys.last().unwrap()));
                    y += side;
                }
                x += side;
            }
        }
    }

    #[test]
    fn rejects_out_of_universe_points() {
        let c = curve(2, 2);
        assert!(c.key_of_point(&Point::new(vec![4, 0]).unwrap()).is_err());
        assert!(c.point_of_key(&Key::zero(5)).is_err());
    }

    #[test]
    fn high_dimensional_round_trip() {
        let u = Universe::new(12, 6).unwrap(); // 72-bit keys
        let c = HilbertCurve::new(u);
        let p = Point::new((0..12).map(|i| (i * 7 + 3) % 64).collect()).unwrap();
        let key = c.key_of_point(&p).unwrap();
        assert_eq!(c.point_of_key(&key).unwrap(), p);
    }

    #[test]
    fn single_bit_universe_round_trips() {
        let c = curve(3, 1);
        for p in all_points(3, 1) {
            let key = c.key_of_point(&p).unwrap();
            assert_eq!(c.point_of_key(&key).unwrap(), p);
        }
    }
}
