//! A literal transcription of the paper's Appendix A (Algorithms 1–3).
//!
//! The paper's implementation sketch enumerates the standard cubes of `D_i`
//! (the level-`i` cubes of the greedy decomposition of an extremal rectangle)
//! by choosing, per dimension, one set bit of the side length — the chosen
//! bit names the "slab" of offsets the cube lies in — and then filling in the
//! free coordinate bits per Equation 1. The module exists for fidelity and
//! cross-validation: [`crate::extremal::ExtremalCubes`] produces the same
//! cubes through a box-based enumeration that is lazier and is what the index
//! uses at run time; the tests confirm the two agree exactly.

use crate::bits;
use crate::cube::StandardCube;
use crate::rect::ExtremalRect;

/// Enumerates the standard cubes of `D_i` — the cubes of side `2^i` in the
/// greedy decomposition of `rect` — following Algorithms 1–3 of the paper.
///
/// The enumeration is eager; for the huge levels of large query regions
/// prefer [`crate::extremal::ExtremalCubes`], which enumerates lazily.
pub fn cubes_at_level(rect: &ExtremalRect, i: u32) -> Vec<StandardCube> {
    let lengths = rect.lengths();
    let d = lengths.len();
    let mut out = Vec::new();
    // Algorithm 1: one pass per dimension s whose length has bit i set; that
    // dimension's slab is pinned to size exactly 2^i.
    for (s, &length) in lengths.iter().enumerate() {
        if bits::bit_of(length, i) != 1 {
            continue;
        }
        let mut selection = vec![0u32; d];
        enum_rectangles(rect, i, s, 0, &mut selection, &mut out);
    }
    out
}

/// Algorithm 3 (`EnumRectangles`): choose, for every dimension `t`, the set
/// bit of `ℓ_t` that names the slab the rectangle occupies. Dimensions before
/// `s` must choose a bit strictly above `i` (so each cube is enumerated
/// exactly once: `s` is the *first* dimension pinned at `i`), dimension `s`
/// chooses exactly `i`, and dimensions after `s` choose any bit `≥ i`.
fn enum_rectangles(
    rect: &ExtremalRect,
    i: u32,
    s: usize,
    t: usize,
    selection: &mut Vec<u32>,
    out: &mut Vec<StandardCube>,
) {
    let lengths = rect.lengths();
    let d = lengths.len();
    if t == d {
        comp_keys(rect, i, selection, out);
        return;
    }
    if t == s {
        selection[t] = i;
        enum_rectangles(rect, i, s, t + 1, selection, out);
        return;
    }
    let min_bit = if t < s { i + 1 } else { i };
    let b = bits::bit_length(lengths[t]);
    let mut j = b;
    while j > min_bit {
        j -= 1;
        if bits::bit_of(lengths[t], j) == 1 {
            selection[t] = j;
            enum_rectangles(rect, i, s, t + 1, selection, out);
        }
    }
}

/// Algorithm 2 (`CompKeys`) together with Equation 1: given the per-dimension
/// slab selection, produce every standard cube of the rectangle by filling in
/// the free coordinate bits.
///
/// Equation 1, adapted to a top-anchored extremal rectangle in an unsigned
/// universe: writing the cube's lower-corner coordinate along dimension `x`
/// bit by bit (positions `k−1 … 0`),
///
/// * positions above the selected bit `P_x` carry the *complement* of the
///   corresponding bits of `ℓ_x`;
/// * position `P_x` carries the bit of `ℓ_x` itself (which is 1);
/// * positions in `[i, P_x)` are free — each assignment yields one cube;
/// * positions below `i` are zero (they address cells inside the cube).
fn comp_keys(rect: &ExtremalRect, i: u32, selection: &[u32], out: &mut Vec<StandardCube>) {
    let universe = rect.universe();
    let lengths = rect.lengths();
    let d = lengths.len();
    let k = universe.bits_per_dim();

    // Fixed part of each coordinate plus the list of free bit positions.
    let mut fixed = vec![0u64; d];
    let mut free_bits: Vec<(usize, u32)> = Vec::new();
    for x in 0..d {
        let p = selection[x];
        for y in (i..k).rev() {
            let bit = if y > p {
                1 - bits::bit_of(lengths[x], y)
            } else if y == p {
                bits::bit_of(lengths[x], y)
            } else {
                free_bits.push((x, y));
                0
            };
            fixed[x] |= bit << y;
        }
    }

    let combinations: u64 = 1u64 << free_bits.len();
    for mask in 0..combinations {
        let mut corner = fixed.clone();
        for (bit_index, &(x, y)) in free_bits.iter().enumerate() {
            if (mask >> bit_index) & 1 == 1 {
                corner[x] |= 1 << y;
            }
        }
        out.push(
            StandardCube::new(universe, corner, i)
                .expect("appendix A enumeration produces aligned cubes"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extremal::ExtremalCubes;
    use crate::universe::Universe;
    use std::collections::BTreeSet;

    fn corners(cubes: &[StandardCube]) -> BTreeSet<Vec<u64>> {
        cubes.iter().map(|c| c.corner().to_vec()).collect()
    }

    #[test]
    fn agrees_with_the_level_decomposition_on_small_rectangles() {
        let universe = Universe::new(2, 5).unwrap();
        for lengths in [
            vec![13u64, 21],
            vec![7, 32],
            vec![1, 1],
            vec![31, 29],
            vec![16, 8],
        ] {
            let rect = ExtremalRect::new(universe.clone(), lengths.clone()).unwrap();
            let reference = ExtremalCubes::new(&rect);
            for level in reference.levels() {
                let i = level.side_exp();
                let expected: Vec<StandardCube> = level.iter().collect();
                let got = cubes_at_level(&rect, i);
                assert_eq!(
                    corners(&got),
                    corners(&expected),
                    "lengths {lengths:?} level {i}"
                );
                assert_eq!(got.len() as u128, level.count().unwrap());
            }
            // Levels with no set bit produce no cubes.
            for i in 0..5u32 {
                if !crate::bits::any_bit_set(rect.lengths(), i) {
                    assert!(cubes_at_level(&rect, i).is_empty());
                }
            }
        }
    }

    #[test]
    fn agrees_in_three_dimensions() {
        let universe = Universe::new(3, 4).unwrap();
        for lengths in [
            vec![5u64, 9, 3],
            vec![15, 15, 15],
            vec![2, 4, 8],
            vec![11, 1, 6],
        ] {
            let rect = ExtremalRect::new(universe.clone(), lengths.clone()).unwrap();
            let reference = ExtremalCubes::new(&rect);
            for level in reference.levels() {
                let got = cubes_at_level(&rect, level.side_exp());
                let expected: Vec<StandardCube> = level.iter().collect();
                assert_eq!(
                    corners(&got),
                    corners(&expected),
                    "lengths {lengths:?} level {}",
                    level.side_exp()
                );
            }
        }
    }

    #[test]
    fn every_enumerated_cube_lies_inside_the_rectangle() {
        let universe = Universe::new(2, 6).unwrap();
        let rect = ExtremalRect::new(universe, vec![45, 37]).unwrap();
        let outer = rect.to_rect();
        for i in 0..6u32 {
            for cube in cubes_at_level(&rect, i) {
                assert!(
                    outer.contains_rect(&cube.to_rect()),
                    "level {i} cube {cube}"
                );
                assert_eq!(cube.side_exp(), i);
            }
        }
    }
}
