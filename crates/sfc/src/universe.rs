//! The discrete universe in which subscriptions and events live, and points
//! within it.
//!
//! The paper models the indexed space as a `d`-dimensional grid
//! `2^k × 2^k × … × 2^k`; every element of the grid is a *cell*. Both `d`
//! (which is twice the number of subscription attributes) and `k` (bits of
//! precision per dimension) are parameters of the [`Universe`].

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::SfcError;
use crate::Result;

/// Shape of the indexed space: `dims` dimensions, each with `2^bits_per_dim`
/// discrete values.
///
/// A `Universe` is cheap to clone (its description is a pair of integers
/// wrapped in an [`Arc`] internally is unnecessary — it is plain data) and is
/// carried by every curve, rectangle and index that needs to validate its
/// inputs.
///
/// # Example
///
/// ```
/// use acd_sfc::Universe;
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let u = Universe::new(4, 10)?;
/// assert_eq!(u.dims(), 4);
/// assert_eq!(u.side(), 1024);
/// assert_eq!(u.max_coord(), 1023);
/// assert_eq!(u.key_bits(), 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Universe {
    dims: usize,
    bits_per_dim: u32,
}

/// Maximum number of dimensions supported by the substrate.
///
/// The limit is generous: a subscription with 16 attributes maps to a
/// 32-dimensional dominance problem, well below this cap.
pub const MAX_DIMS: usize = 64;

/// Maximum number of bits per dimension supported by the substrate.
pub const MAX_BITS_PER_DIM: u32 = 62;

impl Universe {
    /// Creates a universe with `dims` dimensions and `bits_per_dim` bits of
    /// precision per dimension (so each dimension ranges over
    /// `0..2^bits_per_dim`).
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::InvalidUniverse`] if `dims` is zero or larger than
    /// [`MAX_DIMS`], or if `bits_per_dim` is zero or larger than
    /// [`MAX_BITS_PER_DIM`].
    pub fn new(dims: usize, bits_per_dim: u32) -> Result<Self> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(SfcError::InvalidUniverse {
                dims,
                bits_per_dim,
                reason: "number of dimensions must be between 1 and 64",
            });
        }
        if bits_per_dim == 0 || bits_per_dim > MAX_BITS_PER_DIM {
            return Err(SfcError::InvalidUniverse {
                dims,
                bits_per_dim,
                reason: "bits per dimension must be between 1 and 62",
            });
        }
        Ok(Universe { dims, bits_per_dim })
    }

    /// Number of dimensions `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Bits of precision per dimension (`k` in the paper).
    pub fn bits_per_dim(&self) -> u32 {
        self.bits_per_dim
    }

    /// Number of cells along each dimension, i.e. `2^k`.
    pub fn side(&self) -> u64 {
        1u64 << self.bits_per_dim
    }

    /// Largest valid coordinate along any dimension, i.e. `2^k − 1`.
    pub fn max_coord(&self) -> u64 {
        self.side() - 1
    }

    /// Total number of bits in an SFC key for this universe (`d·k`).
    pub fn key_bits(&self) -> u32 {
        self.dims as u32 * self.bits_per_dim
    }

    /// Natural logarithm of the total number of cells, `ln(2^{d·k})`.
    ///
    /// Volumes in this crate are tracked in log-space because `2^{d·k}` can
    /// easily overflow even a `u128`.
    pub fn ln_volume(&self) -> f64 {
        self.key_bits() as f64 * std::f64::consts::LN_2
    }

    /// Total number of cells if it fits in a `u128`.
    pub fn volume(&self) -> Option<u128> {
        if self.key_bits() <= 127 {
            Some(1u128 << self.key_bits())
        } else {
            None
        }
    }

    /// Returns `true` if `value` is a valid coordinate in this universe.
    pub fn contains_coord(&self, value: u64) -> bool {
        value <= self.max_coord()
    }

    /// Validates that `point` belongs to this universe.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::DimensionMismatch`] or
    /// [`SfcError::CoordinateOutOfRange`].
    pub fn validate_point(&self, point: &Point) -> Result<()> {
        if point.dims() != self.dims {
            return Err(SfcError::DimensionMismatch {
                expected: self.dims,
                actual: point.dims(),
            });
        }
        for (dim, &c) in point.coords().iter().enumerate() {
            if !self.contains_coord(c) {
                return Err(SfcError::CoordinateOutOfRange {
                    dim,
                    value: c,
                    bound: self.side(),
                });
            }
        }
        Ok(())
    }

    /// The point at the origin `(0, 0, …, 0)`.
    pub fn origin(&self) -> Point {
        Point::from_fn(self.dims, |_| 0)
    }

    /// The point at the far corner `(2^k − 1, …, 2^k − 1)`.
    pub fn top_corner(&self) -> Point {
        let max = self.max_coord();
        Point::from_fn(self.dims, |_| max)
    }
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}^{}", self.side(), self.dims)
    }
}

/// The number of coordinates a [`Point`] stores inline (without heap
/// allocation). Covers the common dominance shapes: up to 4 subscription
/// attributes map to `d = 2β ≤ 8` dimensions.
pub const POINT_INLINE_DIMS: usize = 8;

/// The coordinate storage of a [`Point`]: a fixed inline buffer for the
/// common low-dimensional case, an `Arc`-shared vector for wider points
/// (which stay cheap to clone).
#[derive(Debug, Clone)]
enum Coords {
    Inline {
        len: u8,
        buf: [u64; POINT_INLINE_DIMS],
    },
    Spill(Arc<Vec<u64>>),
}

/// A cell of the universe: a `d`-dimensional point with `u64` coordinates.
///
/// Points are immutable and cheap to clone: up to [`POINT_INLINE_DIMS`]
/// coordinates are stored inline (construction and cloning never allocate),
/// wider points share their coordinate vector behind an [`Arc`].
/// Construction validates nothing beyond non-emptiness; range validation
/// against a particular universe is performed by
/// [`Universe::validate_point`] or by the curve that encodes the point.
///
/// # Example
///
/// ```
/// use acd_sfc::Point;
/// # fn main() -> Result<(), acd_sfc::SfcError> {
/// let p = Point::new(vec![1, 2, 3])?;
/// assert_eq!(p.dims(), 3);
/// assert_eq!(p.coord(1), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Point {
    coords: Coords,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`SfcError::Empty`] if `coords` is empty.
    pub fn new(coords: Vec<u64>) -> Result<Self> {
        if coords.is_empty() {
            return Err(SfcError::Empty);
        }
        Ok(Self::from_vec(coords))
    }

    /// Creates a point without validating that the coordinate vector is
    /// non-empty. Intended for internal use where the invariant is known.
    pub(crate) fn from_vec(coords: Vec<u64>) -> Self {
        debug_assert!(!coords.is_empty());
        if coords.len() <= POINT_INLINE_DIMS {
            Self::from_slice(&coords)
        } else {
            Point {
                coords: Coords::Spill(Arc::new(coords)),
            }
        }
    }

    /// Creates a point by copying a coordinate slice — allocation-free when
    /// the slice fits the inline buffer.
    pub(crate) fn from_slice(coords: &[u64]) -> Self {
        debug_assert!(!coords.is_empty());
        if coords.len() <= POINT_INLINE_DIMS {
            let mut buf = [0u64; POINT_INLINE_DIMS];
            buf[..coords.len()].copy_from_slice(coords);
            Point {
                coords: Coords::Inline {
                    len: coords.len() as u8,
                    buf,
                },
            }
        } else {
            Point {
                coords: Coords::Spill(Arc::new(coords.to_vec())),
            }
        }
    }

    /// Creates a point whose coordinate along dimension `i` is `f(i)` —
    /// allocation-free when `dims` fits the inline buffer. The hot-path
    /// constructor for derived points (dominance transforms, mirrors).
    ///
    /// `f` is called exactly once per dimension, in ascending order —
    /// callers may drive a stateful iterator from it (the segment decoder
    /// streams coordinates off a column slice this way).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dims` is zero.
    pub fn build(dims: usize, f: impl FnMut(usize) -> u64) -> Self {
        Self::from_fn(dims, f)
    }

    /// Creates a point whose coordinate along dimension `i` is `f(i)` —
    /// allocation-free when `dims` fits the inline buffer.
    pub(crate) fn from_fn(dims: usize, mut f: impl FnMut(usize) -> u64) -> Self {
        debug_assert!(dims > 0);
        if dims <= POINT_INLINE_DIMS {
            let mut buf = [0u64; POINT_INLINE_DIMS];
            for (i, c) in buf[..dims].iter_mut().enumerate() {
                *c = f(i);
            }
            Point {
                coords: Coords::Inline {
                    len: dims as u8,
                    buf,
                },
            }
        } else {
            Point {
                coords: Coords::Spill(Arc::new((0..dims).map(f).collect())),
            }
        }
    }

    /// Number of dimensions of this point.
    pub fn dims(&self) -> usize {
        self.coords().len()
    }

    /// The coordinate along dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.dims()`.
    pub fn coord(&self, dim: usize) -> u64 {
        self.coords()[dim]
    }

    /// All coordinates as a slice.
    pub fn coords(&self) -> &[u64] {
        match &self.coords {
            Coords::Inline { len, buf } => &buf[..*len as usize],
            Coords::Spill(v) => v,
        }
    }

    /// Whether this point uses the inline (allocation-free) coordinate
    /// buffer. Exposed for the representation property tests.
    #[doc(hidden)]
    pub fn repr_is_inline(&self) -> bool {
        matches!(self.coords, Coords::Inline { .. })
    }

    /// Returns `true` if every coordinate of `self` is greater than or equal
    /// to the corresponding coordinate of `other`.
    ///
    /// This is exactly the *dominance* relation of the paper's Problem 1: a
    /// point `p(s1)` dominating `p(s2)` corresponds to subscription `s1`
    /// covering `s2`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the two points have different dimensions.
    pub fn dominates(&self, other: &Point) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.coords()
            .iter()
            .zip(other.coords().iter())
            .all(|(a, b)| a >= b)
    }

    /// Component-wise mirror of the point inside `universe`:
    /// each coordinate `x` becomes `2^k − 1 − x`.
    ///
    /// Mirroring converts a "find a point dominating q" query into a
    /// "find a point dominated by q" query on the mirrored data, which the
    /// covering index uses for reverse (covered-by) queries.
    ///
    /// # Errors
    ///
    /// Returns an error if the point does not belong to `universe`.
    pub fn mirrored(&self, universe: &Universe) -> Result<Point> {
        universe.validate_point(self)?;
        let max = universe.max_coord();
        let coords = self.coords();
        Ok(Point::from_fn(coords.len(), |i| max - coords[i]))
    }
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        self.coords() == other.coords()
    }
}

impl Eq for Point {}

impl std::hash::Hash for Point {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the coordinate slice so both storage layouts of the same
        // point hash identically (matches the derived `Vec<u64>` hashing).
        self.coords().hash(state);
    }
}

impl PartialOrd for Point {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Point {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.coords().cmp(other.coords())
    }
}

/// Points serialize as `{coords: [...]}` regardless of storage layout
/// (matching the historical shared-vector wire format).
impl Serialize for Point {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![(
            "coords".to_string(),
            serde::Value::Seq(
                self.coords()
                    .iter()
                    .map(|&c| serde::Value::U64(c))
                    .collect(),
            ),
        )])
    }
}

impl Deserialize for Point {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a point map"))?;
        let coords = Vec::<u64>::from_value(serde::get_field(entries, "coords"))?;
        if coords.is_empty() {
            return Err(serde::Error::custom(
                "point must have at least one coordinate",
            ));
        }
        Ok(Point::from_vec(coords))
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<Point> for Vec<u64> {
    fn from(p: Point) -> Vec<u64> {
        match p.coords {
            Coords::Inline { len, buf } => buf[..len as usize].to_vec(),
            Coords::Spill(v) => Arc::try_unwrap(v).unwrap_or_else(|arc| arc.as_ref().clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_basic_accessors() {
        let u = Universe::new(3, 4).unwrap();
        assert_eq!(u.dims(), 3);
        assert_eq!(u.bits_per_dim(), 4);
        assert_eq!(u.side(), 16);
        assert_eq!(u.max_coord(), 15);
        assert_eq!(u.key_bits(), 12);
        assert_eq!(u.volume(), Some(4096));
        assert_eq!(u.to_string(), "16^3");
    }

    #[test]
    fn universe_rejects_bad_shapes() {
        assert!(Universe::new(0, 4).is_err());
        assert!(Universe::new(4, 0).is_err());
        assert!(Universe::new(65, 4).is_err());
        assert!(Universe::new(4, 63).is_err());
        assert!(Universe::new(64, 62).is_ok());
    }

    #[test]
    fn huge_universe_volume_overflows_to_none() {
        let u = Universe::new(16, 16).unwrap(); // 256-bit keys
        assert_eq!(u.volume(), None);
        assert!(u.ln_volume() > 0.0);
    }

    #[test]
    fn ln_volume_matches_exact_volume_when_small() {
        let u = Universe::new(2, 8).unwrap();
        let exact = (u.volume().unwrap() as f64).ln();
        assert!((u.ln_volume() - exact).abs() < 1e-9);
    }

    #[test]
    fn point_validation() {
        let u = Universe::new(2, 4).unwrap();
        let ok = Point::new(vec![0, 15]).unwrap();
        assert!(u.validate_point(&ok).is_ok());

        let wrong_dims = Point::new(vec![0, 1, 2]).unwrap();
        assert!(matches!(
            u.validate_point(&wrong_dims),
            Err(SfcError::DimensionMismatch { .. })
        ));

        let out_of_range = Point::new(vec![0, 16]).unwrap();
        assert!(matches!(
            u.validate_point(&out_of_range),
            Err(SfcError::CoordinateOutOfRange { dim: 1, .. })
        ));
    }

    #[test]
    fn empty_point_rejected() {
        assert!(matches!(Point::new(vec![]), Err(SfcError::Empty)));
    }

    #[test]
    fn dominance_relation() {
        let a = Point::new(vec![5, 5]).unwrap();
        let b = Point::new(vec![3, 5]).unwrap();
        let c = Point::new(vec![6, 4]).unwrap();
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a), "dominance is reflexive");
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
    }

    #[test]
    fn mirroring_is_an_involution() {
        let u = Universe::new(3, 5).unwrap();
        let p = Point::new(vec![0, 13, 31]).unwrap();
        let m = p.mirrored(&u).unwrap();
        assert_eq!(m.coords(), &[31, 18, 0]);
        assert_eq!(m.mirrored(&u).unwrap(), p);
    }

    #[test]
    fn mirroring_reverses_dominance() {
        let u = Universe::new(2, 4).unwrap();
        let a = Point::new(vec![9, 7]).unwrap();
        let b = Point::new(vec![4, 2]).unwrap();
        assert!(a.dominates(&b));
        let (ma, mb) = (a.mirrored(&u).unwrap(), b.mirrored(&u).unwrap());
        assert!(mb.dominates(&ma));
    }

    #[test]
    fn origin_and_top_corner() {
        let u = Universe::new(3, 3).unwrap();
        assert_eq!(u.origin().coords(), &[0, 0, 0]);
        assert_eq!(u.top_corner().coords(), &[7, 7, 7]);
        assert!(u.top_corner().dominates(&u.origin()));
    }

    #[test]
    fn point_display_and_conversion() {
        let p = Point::new(vec![1, 2]).unwrap();
        assert_eq!(p.to_string(), "(1, 2)");
        let v: Vec<u64> = p.into();
        assert_eq!(v, vec![1, 2]);
    }
}
