//! Property-based tests of the flat two-level [`SfcArray`] against a
//! straightforward `BTreeMap<Key, Vec<entry>>` reference model — the
//! ordered-map semantics the paper assumes — over random sequences of
//! inserts, removals and probes (long enough to force staging merges), plus
//! bulk-build and mirrored-pair equivalence.

use std::collections::BTreeMap;

use proptest::prelude::*;

use acd_sfc::{Key, KeyRange, Point, SfcArray, SpaceFillingCurve, Universe, ZCurve};

/// The reference model: a BTreeMap from key to the values stored at that
/// cell in insertion order.
struct Model {
    curve: ZCurve,
    cells: BTreeMap<Key, Vec<(Point, u32)>>,
    len: usize,
}

impl Model {
    fn new(curve: ZCurve) -> Self {
        Model {
            curve,
            cells: BTreeMap::new(),
            len: 0,
        }
    }

    fn insert(&mut self, point: Point, value: u32) {
        let key = self.curve.key_of_point(&point).unwrap();
        self.cells.entry(key).or_default().push((point, value));
        self.len += 1;
    }

    fn remove_if_even(&mut self, point: &Point) -> Option<u32> {
        let key = self.curve.key_of_point(point).unwrap();
        let bucket = self.cells.get_mut(&key)?;
        let pos = bucket.iter().position(|(_, v)| v % 2 == 0)?;
        let (_, value) = bucket.remove(pos);
        if bucket.is_empty() {
            self.cells.remove(&key);
        }
        self.len -= 1;
        Some(value)
    }

    fn entries(&self) -> Vec<(Point, u32)> {
        self.cells.values().flatten().cloned().collect()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    RemoveEven(u64, u64),
    ProbeAtOrAfter(u64),
    CountRange(u64, u64),
}

fn op_strategy(side: u64) -> impl Strategy<Value = Op> {
    // The union samples arms uniformly; inserts are listed three times to
    // bias sequences toward growth (so staging merges actually trigger).
    prop_oneof![
        (0..side, 0..side).prop_map(|(x, y)| Op::Insert(x, y)),
        (0..side, 0..side).prop_map(|(x, y)| Op::Insert(x, y)),
        (0..side, 0..side).prop_map(|(x, y)| Op::Insert(x, y)),
        (0..side, 0..side).prop_map(|(x, y)| Op::RemoveEven(x, y)),
        (0u64..side * side).prop_map(Op::ProbeAtOrAfter),
        (0u64..side * side, 0u64..side * side).prop_map(|(a, b)| Op::CountRange(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random op sequences: the flat array and the BTreeMap model must
    /// agree on every probe, count, length and full iteration. Sequences
    /// are long enough (up to 400 inserts) to cross the staging-merge
    /// threshold several times.
    #[test]
    fn flat_array_matches_btreemap_model(
        ops in proptest::collection::vec(op_strategy(32), 1..400),
    ) {
        let universe = Universe::new(2, 5).unwrap();
        let curve = ZCurve::new(universe.clone());
        let total_bits = universe.key_bits();
        let mut array: SfcArray<u32, ZCurve> = SfcArray::new(curve.clone());
        let mut model = Model::new(curve.clone());
        let mut counter = 0u32;

        for op in ops {
            match op {
                Op::Insert(x, y) => {
                    let point = Point::new(vec![x, y]).unwrap();
                    array.insert(point.clone(), counter).unwrap();
                    model.insert(point, counter);
                    counter += 1;
                }
                Op::RemoveEven(x, y) => {
                    let point = Point::new(vec![x, y]).unwrap();
                    let got = array.remove_if(&point, |v| v % 2 == 0).unwrap();
                    let want = model.remove_if_even(&point);
                    prop_assert_eq!(got, want);
                }
                Op::ProbeAtOrAfter(raw) => {
                    let key = Key::from_u128(raw as u128, total_bits);
                    let got = array
                        .first_key_at_or_after(&key)
                        .map(|(k, bucket)| {
                            (k.clone(), bucket.iter().map(|e| e.value).collect::<Vec<_>>())
                        });
                    let want = model
                        .cells
                        .range(key..)
                        .next()
                        .map(|(k, bucket)| {
                            (k.clone(), bucket.iter().map(|(_, v)| *v).collect::<Vec<_>>())
                        });
                    prop_assert_eq!(got, want);
                }
                Op::CountRange(a, b) => {
                    let (lo, hi) = (a.min(b), a.max(b));
                    let range = KeyRange::new(
                        Key::from_u128(lo as u128, total_bits),
                        Key::from_u128(hi as u128, total_bits),
                    )
                    .unwrap();
                    let want: usize = model
                        .cells
                        .range(range.lo().clone()..=range.hi().clone())
                        .map(|(_, bucket)| bucket.len())
                        .sum();
                    prop_assert_eq!(array.count_in_range(&range), want);
                    prop_assert_eq!(array.any_in_range(&range), want > 0);
                    let iterated: Vec<u32> =
                        array.iter_range(&range).map(|e| e.value).collect();
                    let model_iterated: Vec<u32> = model
                        .cells
                        .range(range.lo().clone()..=range.hi().clone())
                        .flat_map(|(_, bucket)| bucket.iter().map(|(_, v)| *v))
                        .collect();
                    prop_assert_eq!(iterated, model_iterated);
                }
            }
            prop_assert_eq!(array.len(), model.len);
        }

        // Final full-state agreement, in key order.
        let got: Vec<(Point, u32)> = array
            .iter()
            .map(|e| (e.point.clone(), e.value))
            .collect();
        prop_assert_eq!(got, model.entries());
    }

    /// Bulk building and the Z mirrored-pair bulk build agree with
    /// incremental insertion of the same batch (and of the mirrored batch).
    #[test]
    fn bulk_builds_match_incremental(
        points in proptest::collection::vec((0u64..32, 0u64..32), 0..300),
    ) {
        let universe = Universe::new(2, 5).unwrap();
        let curve = ZCurve::new(universe.clone());
        let batch: Vec<(Point, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::new(vec![x, y]).unwrap(), i as u32))
            .collect();

        let mut incremental: SfcArray<u32, ZCurve> = SfcArray::new(curve.clone());
        let mut incremental_mirror: SfcArray<u32, ZCurve> = SfcArray::new(curve.clone());
        for (point, v) in &batch {
            incremental.insert(point.clone(), *v).unwrap();
            incremental_mirror
                .insert(point.mirrored(&universe).unwrap(), *v)
                .unwrap();
        }

        let bulk = SfcArray::from_sorted(curve.clone(), batch.clone()).unwrap();
        let (pair_fwd, pair_mir) = SfcArray::from_sorted_mirrored(curve, batch).unwrap();

        let dump = |a: &SfcArray<u32, ZCurve>| -> Vec<(Point, u32)> {
            a.iter().map(|e| (e.point.clone(), e.value)).collect()
        };
        prop_assert_eq!(dump(&bulk), dump(&incremental));
        prop_assert_eq!(dump(&pair_fwd), dump(&incremental));
        prop_assert_eq!(dump(&pair_mir), dump(&incremental_mirror));
    }
}
