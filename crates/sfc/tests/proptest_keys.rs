//! Property-based tests of the [`Key`] representations: the inline `u128`
//! layout and the spilled word-vector layout must be observationally
//! identical on every operation, across random widths — including the
//! 127/128-bit boundary where the layout switches — and the BIGMIN region
//! seek built on inline keys must agree with a brute-force scan.

use proptest::prelude::*;

use acd_sfc::{Key, Point, Rect, SpaceFillingCurve, Universe, ZCurve};

/// Builds a key of arbitrary width from up to 192 random value bits: the
/// low 128 via `from_u128`, bits 128.. via `set_bit`.
fn key_from_parts(lo: u128, hi: u64, bits: u32) -> Key {
    let masked_lo = if bits >= 128 {
        lo
    } else {
        lo & ((1u128 << bits) - 1)
    };
    let mut key = Key::from_u128(masked_lo, bits);
    for b in 128..bits.min(192) {
        if (hi >> (b - 128)) & 1 == 1 {
            key.set_bit(b, true);
        }
    }
    key
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All unary operations agree between the inline and spilled layouts,
    /// and mixed-layout comparison, equality and formatting are coherent.
    #[test]
    fn inline_and_spilled_layouts_agree(
        bits in 1u32..=192,
        lo in any::<u128>(),
        hi in any::<u64>(),
        low_bits in 0u32..=200,
    ) {
        let key = key_from_parts(lo, hi, bits);
        let spill = key.with_spilled_repr();
        prop_assert_eq!(key.repr_is_inline(), bits <= 128);
        prop_assert!(!spill.repr_is_inline());

        // Identity and ordering across layouts.
        prop_assert_eq!(&key, &spill);
        prop_assert_eq!(key.cmp(&spill), std::cmp::Ordering::Equal);
        prop_assert_eq!(key.is_zero(), spill.is_zero());
        prop_assert_eq!(key.to_u128(), spill.to_u128());

        // Bit accessors.
        for b in 0..bits {
            prop_assert_eq!(key.bit(b), spill.bit(b));
        }

        // Increment / decrement.
        prop_assert_eq!(key.successor(), spill.successor());
        prop_assert_eq!(key.predecessor(), spill.predecessor());

        // Low-bit masking.
        prop_assert_eq!(
            key.with_low_bits_cleared(low_bits),
            spill.with_low_bits_cleared(low_bits)
        );
        prop_assert_eq!(
            key.with_low_bits_set(low_bits),
            spill.with_low_bits_set(low_bits)
        );

        // Formatting.
        prop_assert_eq!(format!("{key}"), format!("{spill}"));
        prop_assert_eq!(format!("{key:b}"), format!("{spill:b}"));

        // Serde round trip through the shared wire format.
        use serde::{Deserialize as _, Serialize as _};
        prop_assert_eq!(key.to_value(), spill.to_value());
        let back = Key::from_value(&key.to_value()).unwrap();
        prop_assert_eq!(&back, &key);
        prop_assert_eq!(back.bits(), key.bits());
    }

    /// Ordering of keys matches the numeric order of their bit patterns
    /// regardless of layout mixture.
    #[test]
    fn ordering_matches_numeric_order_across_layouts(
        bits in 1u32..=192,
        a_lo in any::<u128>(),
        a_hi in any::<u64>(),
        b_lo in any::<u128>(),
        b_hi in any::<u64>(),
        spill_a in any::<bool>(),
        spill_b in any::<bool>(),
    ) {
        let a = key_from_parts(a_lo, a_hi, bits);
        let b = key_from_parts(b_lo, b_hi, bits);
        // Reference order: compare the binary expansions.
        let expected = format!("{a:b}").cmp(&format!("{b:b}"));
        let a = if spill_a { a.with_spilled_repr() } else { a };
        let b = if spill_b { b.with_spilled_repr() } else { b };
        prop_assert_eq!(a.cmp(&b), expected);
    }

    /// `from_u128` round-trips through `to_u128` at every width, including
    /// the 127/128-bit boundary, and the width assertion accepts exactly
    /// the values that fit.
    #[test]
    fn from_u128_round_trip_and_bounds(bits in 1u32..=192, value in any::<u128>()) {
        let masked = if bits >= 128 { value } else { value & ((1u128 << bits) - 1) };
        let key = Key::from_u128(masked, bits);
        prop_assert_eq!(key.to_u128(), Some(masked));
        prop_assert_eq!(key.bits(), bits);
        // One bit past the width must be rejected (when representable).
        if bits < 128 {
            let too_big = masked | (1u128 << bits);
            let res = std::panic::catch_unwind(|| Key::from_u128(too_big, bits));
            prop_assert!(res.is_err());
        }
    }

    /// Successor and predecessor are inverses and respect numeric order, on
    /// both layouts.
    #[test]
    fn successor_predecessor_inverse(
        bits in 1u32..=192,
        lo in any::<u128>(),
        hi in any::<u64>(),
        spilled in any::<bool>(),
    ) {
        let key = key_from_parts(lo, hi, bits);
        let key = if spilled { key.with_spilled_repr() } else { key };
        if let Some(next) = key.successor() {
            prop_assert!(next > key);
            prop_assert_eq!(next.predecessor().as_ref(), Some(&key));
        } else {
            prop_assert_eq!(&key, &Key::max_value(bits));
        }
        if let Some(prev) = key.predecessor() {
            prop_assert!(prev < key);
            prop_assert_eq!(prev.successor().as_ref(), Some(&key));
        } else {
            prop_assert!(key.is_zero());
        }
    }

    /// The Z curve's BIGMIN seek agrees with a brute-force scan over every
    /// cell of a random small universe, for random rectangles and probe
    /// keys.
    #[test]
    fn bigmin_seek_matches_brute_force(
        (dims, bits) in (1usize..=3, 1u32..=3),
        seed in any::<u64>(),
    ) {
        let universe = Universe::new(dims, bits).unwrap();
        let curve = ZCurve::new(universe.clone());
        let side = universe.side();
        let total_bits = universe.key_bits();
        let total_cells = side.pow(dims as u32);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4 {
            let (mut lo, mut hi) = (Vec::new(), Vec::new());
            for _ in 0..dims {
                let (a, b) = (next() % side, next() % side);
                lo.push(a.min(b));
                hi.push(a.max(b));
            }
            let rect = Rect::new(lo, hi).unwrap();
            let mut in_rect: Vec<u128> = Vec::new();
            for idx in 0..total_cells {
                let mut coords = vec![0u64; dims];
                let mut rem = idx;
                for c in coords.iter_mut() {
                    *c = rem % side;
                    rem /= side;
                }
                if rect.contains_coords(&coords) {
                    let key = curve.key_of_point(&Point::new(coords).unwrap()).unwrap();
                    in_rect.push(key.to_u128().unwrap());
                }
            }
            in_rect.sort_unstable();
            let seeker = curve.region_seeker(&rect).unwrap();
            for probe in 0..(1u128 << total_bits) {
                let got = seeker
                    .seek(&Key::from_u128(probe, total_bits))
                    .map(|k| k.to_u128().unwrap());
                let expected = in_rect.iter().copied().find(|&v| v >= probe);
                prop_assert_eq!(got, expected, "rect {} probe {}", rect, probe);
            }
        }
    }
}
