//! Deterministic churn-model test: long random insert/remove interleavings
//! (value-exact removals, far heavier on removals than the proptest suite)
//! checked against a `BTreeMap` model, on both the packed (<=128-bit keys)
//! and the non-packed (wide-key) staging layouts. This is the workload that
//! would surface a staged cell resurrecting across a merge or a slab hole
//! leaking back into a view.

use std::collections::BTreeMap;

use acd_sfc::{Point, SfcArray, SpaceFillingCurve, Universe, ZCurve};

#[test]
fn churn_matches_model_on_packed_keys() {
    run_churn(Universe::new(2, 5).unwrap(), 32, 60);
}

#[test]
fn churn_matches_model_on_wide_keys() {
    // 3 x 44 = 132 bits > 128: exercises the non-packed staging paths.
    run_churn(Universe::new(3, 44).unwrap(), 8, 16);
}

fn run_churn(universe: Universe, side: u64, seeds: u64) {
    let curve = ZCurve::new(universe.clone());
    let dims = universe.dims();
    for seed in 0..seeds {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut array: SfcArray<u32, ZCurve> = SfcArray::new(curve.clone());
        let mut model: BTreeMap<Vec<u64>, Vec<u32>> = BTreeMap::new();
        let mut counter = 0u32;
        let mut live: Vec<(Vec<u64>, u32)> = Vec::new();
        for op in 0..4000u64 {
            let r = next();
            let coords: Vec<u64> = (0..dims).map(|_| next() % side).collect();
            if r % 100 < 55 || live.is_empty() {
                let p = Point::new(coords.clone()).unwrap();
                array.insert(p, counter).unwrap();
                model.entry(coords.clone()).or_default().push(counter);
                live.push((coords, counter));
                counter += 1;
            } else {
                let i = (next() as usize) % live.len();
                let (rc, v) = live.swap_remove(i);
                let p = Point::new(rc.clone()).unwrap();
                let got = array.remove_if(&p, |&val| val == v).unwrap();
                assert_eq!(got, Some(v), "seed {seed} op {op}: remove lost value");
                let bucket = model.get_mut(&rc).unwrap();
                let pos = bucket.iter().position(|&b| b == v).unwrap();
                bucket.remove(pos);
                if bucket.is_empty() {
                    model.remove(&rc);
                }
            }
            if op % 64 == 0 {
                let got: Vec<(Vec<u64>, u32)> = array
                    .iter()
                    .map(|e| (e.point.coords().to_vec(), e.value))
                    .collect();
                let mut keyed: Vec<_> = model
                    .iter()
                    .map(|(c, vs)| {
                        let k = curve.key_of_point(&Point::new(c.clone()).unwrap()).unwrap();
                        (k, c.clone(), vs.clone())
                    })
                    .collect();
                keyed.sort_by(|a, b| a.0.cmp(&b.0));
                let mut want: Vec<(Vec<u64>, u32)> = Vec::new();
                for (_, c, vs) in keyed {
                    for v in vs {
                        want.push((c.clone(), v));
                    }
                }
                assert_eq!(got, want, "seed {seed} op {op}: state diverged");
                assert_eq!(array.len(), model.values().map(|v| v.len()).sum::<usize>());
            }
        }
    }
}
