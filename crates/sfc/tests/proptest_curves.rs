//! Property-based tests of the space-filling-curve substrate.

use proptest::prelude::*;

use acd_sfc::bits;
use acd_sfc::decompose::{count_cubes, decompose_rect};
use acd_sfc::runs::runs_of_cubes;
use acd_sfc::{CurveKind, ExtremalCubes, ExtremalRect, Point, Rect, Universe};

/// Strategy: a universe shape (dims, bits) small enough for exhaustive
/// cross-checks.
fn universe_shape() -> impl Strategy<Value = (usize, u32)> {
    (1usize..=4, 1u32..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding then decoding any in-universe point is the identity, for all
    /// three curves, including multi-word key sizes.
    #[test]
    fn encode_decode_round_trip(
        (dims, bits) in universe_shape(),
        seed in any::<u64>(),
    ) {
        let universe = Universe::new(dims, bits).unwrap();
        let side = universe.side();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for kind in CurveKind::all() {
            let curve = kind.build(universe.clone());
            for _ in 0..16 {
                let p = Point::new((0..dims).map(|_| next() % side).collect()).unwrap();
                let key = curve.key_of_point(&p).unwrap();
                prop_assert_eq!(curve.point_of_key(&key).unwrap(), p);
            }
        }
    }

    /// The greedy decomposition of a rectangle exactly tiles it (volumes add
    /// up, cubes stay inside) and never needs fewer runs than Lemma 3.1
    /// allows.
    #[test]
    fn decomposition_tiles_and_runs_bounded(
        (dims, bits) in (2usize..=3, 2u32..=4),
        seed in any::<u64>(),
    ) {
        let universe = Universe::new(dims, bits).unwrap();
        let side = universe.side();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % side
        };
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        for _ in 0..dims {
            let a = next();
            let b = next();
            lo.push(a.min(b));
            hi.push(a.max(b));
        }
        let rect = Rect::new(lo, hi).unwrap();
        let cubes = decompose_rect(&universe, &rect).unwrap();
        let total: u128 = cubes.iter().map(|c| c.volume().unwrap()).sum();
        prop_assert_eq!(total, rect.volume().unwrap());
        for c in &cubes {
            prop_assert!(rect.contains_rect(&c.to_rect()));
        }
        prop_assert_eq!(cubes.len() as u64, count_cubes(&universe, &rect).unwrap());
        for kind in CurveKind::all() {
            let curve = kind.build(universe.clone());
            let runs = runs_of_cubes(curve.as_ref(), &cubes).unwrap();
            prop_assert!(runs.len() <= cubes.len(), "lemma 3.1 violated");
            let merged: usize = runs.iter().map(|r| r.cubes()).sum();
            prop_assert_eq!(merged, cubes.len());
        }
    }

    /// The specialized extremal decomposition agrees with the generic one on
    /// the count of cubes per level.
    #[test]
    fn extremal_decomposition_matches_generic(
        (dims, bits) in (1usize..=3, 1u32..=5),
        seed in any::<u64>(),
    ) {
        let universe = Universe::new(dims, bits).unwrap();
        let side = universe.side();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            1 + state % side
        };
        let lengths: Vec<u64> = (0..dims).map(|_| next()).collect();
        let rect = ExtremalRect::new(universe.clone(), lengths).unwrap();
        let specialized = ExtremalCubes::new(&rect);
        let generic = decompose_rect(&universe, &rect.to_rect()).unwrap();
        prop_assert_eq!(
            specialized.count_cubes().unwrap(),
            generic.len() as u128
        );
        // And the lazily enumerated cubes tile the same volume.
        let enumerated: u128 = specialized.iter().map(|c| c.volume().unwrap()).sum();
        prop_assert_eq!(enumerated, rect.volume().unwrap());
    }

    /// Lemma 3.2: truncating side lengths to m = ceil(log2(2d/eps)) bits keeps
    /// at least a (1 - eps) fraction of the volume.
    #[test]
    fn truncation_volume_guarantee(
        dims in 1usize..=8,
        eps_percent in 1u32..=50,
        seed in any::<u64>(),
    ) {
        let eps = eps_percent as f64 / 100.0;
        let bits = 16u32;
        let universe = Universe::new(dims, bits).unwrap();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            1 + state % (1u64 << bits)
        };
        let lengths: Vec<u64> = (0..dims).map(|_| next()).collect();
        let rect = ExtremalRect::new(universe, lengths).unwrap();
        let m = bits::truncation_bits_for_epsilon(dims, eps);
        let truncated = rect.truncate(m);
        let fraction = rect.volume_fraction_of(&truncated);
        prop_assert!(fraction >= 1.0 - eps - 1e-9, "fraction {} < 1 - {}", fraction, eps);
        prop_assert!(fraction <= 1.0 + 1e-9);
    }

    /// Fact 2.1: the key range of any standard cube contains exactly the keys
    /// of the cube's cells.
    #[test]
    fn cube_key_ranges_are_exact(
        bits in 1u32..=3,
        seed in any::<u64>(),
    ) {
        let dims = 2usize;
        let universe = Universe::new(dims, bits).unwrap();
        let side = universe.side();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let exp = (next() % (bits as u64 + 1)) as u32;
        let cube_side = 1u64 << exp;
        let corner: Vec<u64> = (0..dims)
            .map(|_| (next() % (side / cube_side)) * cube_side)
            .collect();
        let cube = acd_sfc::StandardCube::new(&universe, corner, exp).unwrap();
        for kind in CurveKind::all() {
            let curve = kind.build(universe.clone());
            let range = curve.cube_key_range(&cube).unwrap();
            for x in 0..side {
                for y in 0..side {
                    let p = Point::new(vec![x, y]).unwrap();
                    let key = curve.key_of_point(&p).unwrap();
                    prop_assert_eq!(
                        range.contains(&key),
                        cube.contains_coords(&[x, y]),
                        "curve {} cell ({}, {})", kind.name(), x, y
                    );
                }
            }
        }
    }
}
