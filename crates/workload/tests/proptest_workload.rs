//! Property-based tests of the workload generators: every generated
//! subscription and event is valid for its schema, generation is a pure
//! function of the seed, and the width models hit their targets.

use proptest::prelude::*;

use acd_workload::{
    CenterDistribution, EventWorkload, SubscriptionWorkload, WidthModel, WorkloadConfig,
};

fn distribution_strategy() -> impl Strategy<Value = CenterDistribution> {
    prop_oneof![
        Just(CenterDistribution::Uniform),
        (0.5f64..2.5).prop_map(|exponent| CenterDistribution::Zipf { exponent }),
        (1usize..10, 0.01f64..0.3)
            .prop_map(|(clusters, spread)| { CenterDistribution::Clustered { clusters, spread } }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated subscription has non-empty, in-domain bounds on every
    /// attribute and a strictly positive selectivity.
    #[test]
    fn generated_subscriptions_are_valid(
        attributes in 1usize..=5,
        bits in 4u32..=12,
        distribution in distribution_strategy(),
        seed in any::<u64>(),
    ) {
        let config = WorkloadConfig::builder()
            .attributes(attributes)
            .bits_per_attribute(bits)
            .center_distribution(distribution)
            .seed(seed)
            .build()
            .unwrap();
        let mut workload = SubscriptionWorkload::new(&config).unwrap();
        for s in workload.take(50) {
            prop_assert_eq!(s.raw_bounds().len(), attributes);
            for &(lo, hi) in s.raw_bounds() {
                prop_assert!(lo <= hi);
                prop_assert!(lo >= 0.0 && hi <= WorkloadConfig::DOMAIN_MAX);
            }
            prop_assert!(s.selectivity() > 0.0 && s.selectivity() <= 1.0);
        }
    }

    /// Generation is deterministic in the seed: equal seeds give equal
    /// populations, different seeds eventually diverge.
    #[test]
    fn generation_is_a_pure_function_of_the_seed(
        seed in any::<u64>(),
        distribution in distribution_strategy(),
    ) {
        let build = |s: u64| {
            WorkloadConfig::builder()
                .attributes(3)
                .center_distribution(distribution)
                .seed(s)
                .build()
                .unwrap()
        };
        let a: Vec<_> = SubscriptionWorkload::new(&build(seed)).unwrap().take(20);
        let b: Vec<_> = SubscriptionWorkload::new(&build(seed)).unwrap().take(20);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.grid_bounds(), y.grid_bounds());
        }
        let events_a = EventWorkload::new(&build(seed)).unwrap().take(20);
        let events_b = EventWorkload::new(&build(seed)).unwrap().take(20);
        for (x, y) in events_a.iter().zip(&events_b) {
            prop_assert_eq!(x.values(), y.values());
        }
    }

    /// Events generated for a workload always validate against the workload's
    /// schema and quantize onto its grid.
    #[test]
    fn generated_events_are_valid(
        attributes in 1usize..=4,
        distribution in distribution_strategy(),
        seed in any::<u64>(),
    ) {
        let config = WorkloadConfig::builder()
            .attributes(attributes)
            .center_distribution(distribution)
            .seed(seed)
            .build()
            .unwrap();
        let mut events = EventWorkload::new(&config).unwrap();
        for e in events.take(50) {
            prop_assert_eq!(e.values().len(), attributes);
            let p = e.grid_point().unwrap();
            prop_assert_eq!(p.dims(), attributes);
        }
    }

    /// The equal-sides width model produces subscriptions whose aspect ratio
    /// stays small (0 or 1 after boundary clipping).
    #[test]
    fn equal_sides_width_model_controls_aspect_ratio(
        seed in any::<u64>(),
        fraction in 0.05f64..0.45,
    ) {
        let config = WorkloadConfig::builder()
            .attributes(3)
            .bits_per_attribute(10)
            .width_model(WidthModel::EqualSides { min: fraction, max: fraction })
            .seed(seed)
            .build()
            .unwrap();
        let mut workload = SubscriptionWorkload::new(&config).unwrap();
        for s in workload.take(30) {
            prop_assert!(s.aspect_ratio() <= 1, "aspect ratio {}", s.aspect_ratio());
        }
    }
}
