//! The subscription population generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use acd_subscription::{RangePredicate, Schema, SubId, Subscription};

use crate::config::{CenterDistribution, WidthModel, WorkloadConfig};
use crate::distributions::{sample_clamped_gaussian, Zipf};
use crate::Result;

/// A reproducible stream of synthetic subscriptions following a
/// [`WorkloadConfig`].
///
/// The generator is an iterator-like source: [`next_subscription`] draws the
/// next subscription, [`take`] draws a batch. Identifiers start at 1 and
/// increase monotonically.
///
/// [`next_subscription`]: SubscriptionWorkload::next_subscription
/// [`take`]: SubscriptionWorkload::take
#[derive(Debug)]
pub struct SubscriptionWorkload {
    config: WorkloadConfig,
    schema: Schema,
    rng: StdRng,
    zipf: Option<Zipf>,
    cluster_centers: Vec<Vec<f64>>,
    next_id: SubId,
    /// Additive center drift in raw domain units, wrapped modulo the
    /// domain. See [`SubscriptionWorkload::set_center_offset`].
    center_offset: f64,
}

impl SubscriptionWorkload {
    /// Creates a generator for `config`, building the schema it implies.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: &WorkloadConfig) -> Result<Self> {
        config.validate()?;
        let schema = build_schema(config)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let zipf = match config.center_distribution {
            CenterDistribution::Zipf { exponent } => Some(Zipf::new(4096, exponent)),
            _ => None,
        };
        let cluster_centers = match config.center_distribution {
            CenterDistribution::Clustered { clusters, .. } => (0..clusters)
                .map(|_| {
                    (0..config.attributes)
                        .map(|_| rng.gen_range(0.0..WorkloadConfig::DOMAIN_MAX))
                        .collect()
                })
                .collect(),
            _ => Vec::new(),
        };
        Ok(SubscriptionWorkload {
            config: config.clone(),
            schema,
            rng,
            zipf,
            cluster_centers,
            next_id: 1,
            center_offset: 0.0,
        })
    }

    /// Shifts every subsequently drawn center by `fraction` of the domain
    /// (wrapping around its upper end). This models a *drifting* hot
    /// region: a Zipf or clustered workload whose popular values migrate
    /// over time — exactly the stream that erodes a frozen shard layout
    /// and motivates online rebalancing. The fraction is taken modulo 1;
    /// `0.0` restores the stationary distribution.
    pub fn set_center_offset(&mut self, fraction: f64) {
        self.center_offset = fraction.rem_euclid(1.0) * WorkloadConfig::DOMAIN_MAX;
    }

    /// The current center drift as a fraction of the domain.
    pub fn center_offset(&self) -> f64 {
        self.center_offset / WorkloadConfig::DOMAIN_MAX
    }

    /// The schema the generated subscriptions are built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configuration this workload follows.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Draws one center coordinate for attribute `attr`, applying the
    /// current drift offset (wrapped modulo the domain).
    fn sample_center(&mut self, attr: usize) -> f64 {
        let max = WorkloadConfig::DOMAIN_MAX;
        let raw = match self.config.center_distribution {
            CenterDistribution::Uniform => self.rng.gen_range(0.0..max),
            CenterDistribution::Zipf { .. } => {
                let z = self.zipf.as_ref().expect("zipf sampler exists");
                let bucket = z.sample(&mut self.rng);
                let bucket_width = max / z.buckets() as f64;
                bucket as f64 * bucket_width + self.rng.gen_range(0.0..bucket_width)
            }
            CenterDistribution::Clustered { spread, .. } => {
                let c = self.rng.gen_range(0..self.cluster_centers.len());
                let mean = self.cluster_centers[c][attr];
                sample_clamped_gaussian(&mut self.rng, mean, spread * max, 0.0, max)
            }
        };
        (raw + self.center_offset).rem_euclid(max)
    }

    /// Draws the width (in raw units) of every attribute of one
    /// subscription.
    fn sample_widths(&mut self) -> Vec<f64> {
        let max = WorkloadConfig::DOMAIN_MAX;
        let d = self.config.attributes;
        match self.config.width_model {
            WidthModel::UniformFraction { min, max: maxf } => (0..d)
                .map(|_| self.rng.gen_range(min..=maxf) * max)
                .collect(),
            WidthModel::EqualSides { min, max: maxf } => {
                let f = self.rng.gen_range(min..=maxf);
                vec![f * max; d]
            }
            WidthModel::SkewedAspect {
                wide_fraction,
                alpha_bits,
            } => {
                let wide = wide_fraction * max;
                let narrow = wide / 2f64.powi(alpha_bits as i32);
                let mut widths = vec![wide; d];
                // The last attribute is the narrow one, matching the paper's
                // lower-bound construction.
                widths[d - 1] = narrow.max(max / self.schema.grid_size() as f64);
                widths
            }
        }
    }

    /// Draws the next subscription.
    pub fn next_subscription(&mut self) -> Subscription {
        let max = WorkloadConfig::DOMAIN_MAX;
        let d = self.config.attributes;
        let widths = self.sample_widths();
        let mut predicates = Vec::with_capacity(d);
        for (attr, &width) in widths.iter().enumerate() {
            let center = self.sample_center(attr);
            let half = width / 2.0;
            let lo = (center - half).max(0.0);
            let hi = (center + half).min(max);
            predicates.push(
                RangePredicate::between(self.schema.attributes()[attr].name(), lo, hi)
                    .expect("generated ranges are non-empty"),
            );
        }
        let id = self.next_id;
        self.next_id += 1;
        Subscription::from_predicates(&self.schema, id, &predicates)
            .expect("generated subscriptions are valid")
    }

    /// Draws a batch of `n` subscriptions.
    pub fn take(&mut self, n: usize) -> Vec<Subscription> {
        (0..n).map(|_| self.next_subscription()).collect()
    }
}

/// Builds the schema implied by a workload configuration: attributes named
/// `attr0..attrN` over `[0, DOMAIN_MAX]`.
pub fn build_schema(config: &WorkloadConfig) -> Result<Schema> {
    let mut builder = Schema::builder().bits_per_attribute(config.bits_per_attribute);
    for i in 0..config.attributes {
        builder = builder.attribute(format!("attr{i}"), 0.0, WorkloadConfig::DOMAIN_MAX);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CenterDistribution, WidthModel};

    fn base_config() -> WorkloadConfig {
        WorkloadConfig::builder()
            .attributes(3)
            .bits_per_attribute(10)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn generation_is_reproducible_for_equal_seeds() {
        let c = base_config();
        let a: Vec<_> = SubscriptionWorkload::new(&c).unwrap().take(50);
        let b: Vec<_> = SubscriptionWorkload::new(&c).unwrap().take(50);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.grid_bounds(), y.grid_bounds());
            assert_eq!(x.id(), y.id());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let c1 = base_config();
        let mut c2 = base_config();
        c2.seed = 12;
        let a = SubscriptionWorkload::new(&c1).unwrap().take(20);
        let b = SubscriptionWorkload::new(&c2).unwrap().take(20);
        assert!(a
            .iter()
            .zip(&b)
            .any(|(x, y)| x.grid_bounds() != y.grid_bounds()));
    }

    #[test]
    fn ids_are_monotone_and_start_at_one() {
        let mut w = SubscriptionWorkload::new(&base_config()).unwrap();
        let subs = w.take(10);
        for (i, s) in subs.iter().enumerate() {
            assert_eq!(s.id(), i as u64 + 1);
        }
    }

    #[test]
    fn subscriptions_stay_inside_the_domain() {
        for dist in [
            CenterDistribution::Uniform,
            CenterDistribution::Zipf { exponent: 1.2 },
            CenterDistribution::Clustered {
                clusters: 4,
                spread: 0.05,
            },
        ] {
            let c = WorkloadConfig::builder()
                .attributes(2)
                .center_distribution(dist)
                .seed(5)
                .build()
                .unwrap();
            let mut w = SubscriptionWorkload::new(&c).unwrap();
            for s in w.take(200) {
                for &(lo, hi) in s.raw_bounds() {
                    assert!(lo >= 0.0 && hi <= WorkloadConfig::DOMAIN_MAX && lo <= hi);
                }
            }
        }
    }

    #[test]
    fn equal_sides_model_produces_small_aspect_ratio() {
        let c = WorkloadConfig::builder()
            .attributes(3)
            .bits_per_attribute(12)
            .width_model(WidthModel::EqualSides { min: 0.2, max: 0.2 })
            .seed(9)
            .build()
            .unwrap();
        let mut w = SubscriptionWorkload::new(&c).unwrap();
        for s in w.take(50) {
            // Clipping at the domain boundary can shave a bit off, so allow
            // aspect ratio 1.
            assert!(s.aspect_ratio() <= 1, "aspect ratio {}", s.aspect_ratio());
        }
    }

    #[test]
    fn skewed_aspect_model_hits_the_requested_ratio() {
        let alpha = 4u32;
        let c = WorkloadConfig::builder()
            .attributes(3)
            .bits_per_attribute(12)
            .width_model(WidthModel::SkewedAspect {
                wide_fraction: 0.5,
                alpha_bits: alpha,
            })
            .seed(3)
            .build()
            .unwrap();
        let mut w = SubscriptionWorkload::new(&c).unwrap();
        let mut ratios = Vec::new();
        for s in w.take(50) {
            ratios.push(s.aspect_ratio());
        }
        let mean: f64 = ratios.iter().map(|&r| r as f64).sum::<f64>() / ratios.len() as f64;
        assert!(
            (mean - alpha as f64).abs() <= 1.5,
            "mean aspect ratio {mean} vs requested {alpha}"
        );
    }

    #[test]
    fn zipf_centers_are_skewed_toward_low_values() {
        let c = WorkloadConfig::builder()
            .attributes(1)
            .center_distribution(CenterDistribution::Zipf { exponent: 1.5 })
            .width_model(WidthModel::UniformFraction {
                min: 0.01,
                max: 0.02,
            })
            .seed(21)
            .build()
            .unwrap();
        let mut w = SubscriptionWorkload::new(&c).unwrap();
        let subs = w.take(500);
        let low_half = subs
            .iter()
            .filter(|s| s.raw_bounds()[0].0 < WorkloadConfig::DOMAIN_MAX / 2.0)
            .count();
        assert!(
            low_half > 400,
            "zipf workload should concentrate in the low half, got {low_half}/500"
        );
    }
}
