//! Workload configuration: what the subscription and event populations look
//! like.

use serde::{Deserialize, Serialize};

use crate::error::WorkloadError;
use crate::Result;

/// How subscription (and event) centers are distributed over the attribute
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CenterDistribution {
    /// Centers are uniform over the whole domain of every attribute.
    Uniform,
    /// Centers follow a Zipf distribution per attribute: low attribute values
    /// are much more popular than high ones (models skewed interest, e.g. a
    /// few hot stock symbols).
    Zipf {
        /// The Zipf exponent (`s > 0`); larger means more skew.
        exponent: f64,
    },
    /// Centers are drawn around `clusters` randomly-placed hot spots with the
    /// given relative spread (fraction of the domain used as the standard
    /// deviation of a rounded Gaussian).
    Clustered {
        /// Number of hot spots.
        clusters: usize,
        /// Spread of each cluster as a fraction of the domain width.
        spread: f64,
    },
}

/// How subscription widths (one per attribute) are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WidthModel {
    /// Every attribute's width is a uniform fraction of its domain drawn from
    /// `[min, max]`.
    UniformFraction {
        /// Minimum width as a fraction of the domain, in `(0, 1]`.
        min: f64,
        /// Maximum width as a fraction of the domain, in `(0, 1]`.
        max: f64,
    },
    /// All attributes share the same width fraction per subscription
    /// (aspect ratio ≈ 0), drawn uniformly from `[min, max]`.
    EqualSides {
        /// Minimum width as a fraction of the domain, in `(0, 1]`.
        min: f64,
        /// Maximum width as a fraction of the domain, in `(0, 1]`.
        max: f64,
    },
    /// One designated attribute is `2^alpha_bits` times narrower than the
    /// others, producing query rectangles with a controlled aspect ratio
    /// (used by the aspect-ratio experiment, E9).
    SkewedAspect {
        /// Width fraction of the wide attributes, in `(0, 1]`.
        wide_fraction: f64,
        /// Aspect ratio in bits: the narrow attribute is `2^alpha_bits`
        /// narrower.
        alpha_bits: u32,
    },
}

/// Full description of a synthetic workload.
///
/// Build one through [`WorkloadConfig::builder`]; the generated schema has
/// `attributes` attributes named `attr0`, `attr1`, … each with domain
/// `[0, 1_000_000]` and `bits_per_attribute` bits of quantization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of subscription attributes β.
    pub attributes: usize,
    /// Quantization precision per attribute.
    pub bits_per_attribute: u32,
    /// Distribution of subscription/event centers.
    pub center_distribution: CenterDistribution,
    /// Model for subscription widths.
    pub width_model: WidthModel,
    /// RNG seed; the same seed always reproduces the same workload.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Starts building a configuration.
    pub fn builder() -> WorkloadConfigBuilder {
        WorkloadConfigBuilder::default()
    }

    /// The upper end of every attribute's domain.
    pub const DOMAIN_MAX: f64 = 1_000_000.0;

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<()> {
        if self.attributes == 0 || self.attributes > 16 {
            return Err(WorkloadError::InvalidConfig {
                reason: format!("attributes must be in 1..=16, got {}", self.attributes),
            });
        }
        if self.bits_per_attribute == 0 || self.bits_per_attribute > 20 {
            return Err(WorkloadError::InvalidConfig {
                reason: format!(
                    "bits_per_attribute must be in 1..=20, got {}",
                    self.bits_per_attribute
                ),
            });
        }
        match self.center_distribution {
            CenterDistribution::Zipf { exponent } if exponent <= 0.0 => {
                return Err(WorkloadError::InvalidConfig {
                    reason: format!("zipf exponent must be positive, got {exponent}"),
                });
            }
            CenterDistribution::Clustered { clusters, spread } => {
                if clusters == 0 {
                    return Err(WorkloadError::InvalidConfig {
                        reason: "clustered distribution needs at least one cluster".into(),
                    });
                }
                if !(spread > 0.0 && spread <= 1.0) {
                    return Err(WorkloadError::InvalidConfig {
                        reason: format!("cluster spread must be in (0, 1], got {spread}"),
                    });
                }
            }
            _ => {}
        }
        let check_fraction = |name: &str, v: f64| -> Result<()> {
            if !(v > 0.0 && v <= 1.0) {
                return Err(WorkloadError::InvalidConfig {
                    reason: format!("{name} must be in (0, 1], got {v}"),
                });
            }
            Ok(())
        };
        match self.width_model {
            WidthModel::UniformFraction { min, max } | WidthModel::EqualSides { min, max } => {
                check_fraction("width min", min)?;
                check_fraction("width max", max)?;
                if min > max {
                    return Err(WorkloadError::InvalidConfig {
                        reason: format!("width min {min} exceeds max {max}"),
                    });
                }
            }
            WidthModel::SkewedAspect {
                wide_fraction,
                alpha_bits,
            } => {
                check_fraction("wide_fraction", wide_fraction)?;
                if alpha_bits >= self.bits_per_attribute {
                    return Err(WorkloadError::InvalidConfig {
                        reason: format!(
                            "alpha_bits {alpha_bits} must be smaller than bits_per_attribute {}",
                            self.bits_per_attribute
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Builder for [`WorkloadConfig`].
#[derive(Debug, Clone)]
pub struct WorkloadConfigBuilder {
    attributes: usize,
    bits_per_attribute: u32,
    center_distribution: CenterDistribution,
    width_model: WidthModel,
    seed: u64,
}

impl Default for WorkloadConfigBuilder {
    fn default() -> Self {
        WorkloadConfigBuilder {
            attributes: 2,
            bits_per_attribute: 10,
            center_distribution: CenterDistribution::Uniform,
            width_model: WidthModel::UniformFraction {
                min: 0.05,
                max: 0.5,
            },
            seed: 42,
        }
    }
}

impl WorkloadConfigBuilder {
    /// Sets the number of attributes β.
    pub fn attributes(mut self, attributes: usize) -> Self {
        self.attributes = attributes;
        self
    }

    /// Sets the quantization precision per attribute.
    pub fn bits_per_attribute(mut self, bits: u32) -> Self {
        self.bits_per_attribute = bits;
        self
    }

    /// Sets the center distribution.
    pub fn center_distribution(mut self, d: CenterDistribution) -> Self {
        self.center_distribution = d;
        self
    }

    /// Sets the width model.
    pub fn width_model(mut self, w: WidthModel) -> Self {
        self.width_model = w;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn build(self) -> Result<WorkloadConfig> {
        let config = WorkloadConfig {
            attributes: self.attributes,
            bits_per_attribute: self.bits_per_attribute,
            center_distribution: self.center_distribution,
            width_model: self.width_model,
            seed: self.seed,
        };
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let c = WorkloadConfig::builder().build().unwrap();
        assert_eq!(c.attributes, 2);
        assert_eq!(c.bits_per_attribute, 10);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(WorkloadConfig::builder().attributes(0).build().is_err());
        assert!(WorkloadConfig::builder().attributes(17).build().is_err());
        assert!(WorkloadConfig::builder()
            .bits_per_attribute(0)
            .build()
            .is_err());
        assert!(WorkloadConfig::builder()
            .bits_per_attribute(21)
            .build()
            .is_err());
        assert!(WorkloadConfig::builder()
            .center_distribution(CenterDistribution::Zipf { exponent: 0.0 })
            .build()
            .is_err());
        assert!(WorkloadConfig::builder()
            .center_distribution(CenterDistribution::Clustered {
                clusters: 0,
                spread: 0.1
            })
            .build()
            .is_err());
        assert!(WorkloadConfig::builder()
            .width_model(WidthModel::UniformFraction { min: 0.5, max: 0.1 })
            .build()
            .is_err());
        assert!(WorkloadConfig::builder()
            .width_model(WidthModel::UniformFraction { min: 0.0, max: 0.1 })
            .build()
            .is_err());
        assert!(WorkloadConfig::builder()
            .bits_per_attribute(8)
            .width_model(WidthModel::SkewedAspect {
                wide_fraction: 0.5,
                alpha_bits: 8
            })
            .build()
            .is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = WorkloadConfig::builder()
            .attributes(4)
            .center_distribution(CenterDistribution::Clustered {
                clusters: 5,
                spread: 0.02,
            })
            .width_model(WidthModel::SkewedAspect {
                wide_fraction: 0.3,
                alpha_bits: 3,
            })
            .build()
            .unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: WorkloadConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
