//! Named application scenarios used by the examples and the broker
//! experiments.
//!
//! Each scenario bundles a realistic schema with a workload configuration
//! whose distributions mimic the application the paper's introduction
//! motivates (financial tickers, wide-area sensor monitoring).

use serde::{Deserialize, Serialize};

use acd_subscription::Schema;

use crate::churn::ChurnConfig;
use crate::config::{CenterDistribution, WidthModel, WorkloadConfig};
use crate::Result;

/// A named application scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// A stock-ticker feed: subscriptions constrain symbol rank, traded
    /// volume and price; interest is heavily skewed toward a few hot
    /// symbols.
    StockTicker,
    /// A wide-area sensor network: subscriptions constrain temperature,
    /// humidity and battery level; interest clusters around a few geographic
    /// hot spots.
    SensorNetwork,
    /// A synthetic uniform workload with moderate selectivity, useful as a
    /// neutral baseline.
    UniformBaseline,
    /// A churn-heavy deployment: Zipf-skewed interest (a few hot topics
    /// dominate) with subscriptions continuously arriving and leaving while
    /// events flow. Use [`Scenario::churn_config`] to obtain the mixed
    /// operation stream; the plain [`Scenario::workload_config`] exposes the
    /// same content model for insert-only comparisons.
    Churn,
    /// A churn-heavy deployment whose hot region *moves*: interest is
    /// sharply Zipf-skewed and narrow, and the driver is expected to advance
    /// the generator's center offset over time
    /// ([`crate::SubscriptionWorkload::set_center_offset`] /
    /// [`crate::ChurnWorkload::set_center_offset`]). Under a key-range
    /// sharded index this is the adversarial stream: a shard layout frozen
    /// at build time ends up funnelling every new subscription into one
    /// shard — the workload online rebalancing exists for.
    SkewedDrift,
}

impl Scenario {
    /// All built-in scenarios.
    pub fn all() -> [Scenario; 5] {
        [
            Scenario::StockTicker,
            Scenario::SensorNetwork,
            Scenario::UniformBaseline,
            Scenario::Churn,
            Scenario::SkewedDrift,
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::StockTicker => "stock-ticker",
            Scenario::SensorNetwork => "sensor-network",
            Scenario::UniformBaseline => "uniform",
            Scenario::Churn => "churn",
            Scenario::SkewedDrift => "skewed-drift",
        }
    }

    /// The application-flavoured schema of this scenario.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in scenarios; the `Result` mirrors the
    /// schema builder's signature.
    pub fn schema(self) -> Result<Schema> {
        let schema = match self {
            Scenario::StockTicker => Schema::builder()
                .attribute("symbol_rank", 0.0, 5000.0)
                .attribute("volume", 0.0, 1_000_000.0)
                .attribute("price", 0.0, 10_000.0)
                .bits_per_attribute(10)
                .build()?,
            Scenario::SensorNetwork => Schema::builder()
                .attribute("temperature", -40.0, 60.0)
                .attribute("humidity", 0.0, 100.0)
                .attribute("battery", 0.0, 100.0)
                .bits_per_attribute(10)
                .build()?,
            Scenario::UniformBaseline => Schema::builder()
                .attribute("attr0", 0.0, WorkloadConfig::DOMAIN_MAX)
                .attribute("attr1", 0.0, WorkloadConfig::DOMAIN_MAX)
                .attribute("attr2", 0.0, WorkloadConfig::DOMAIN_MAX)
                .bits_per_attribute(10)
                .build()?,
            Scenario::Churn | Scenario::SkewedDrift => Schema::builder()
                .attribute("topic_rank", 0.0, 10_000.0)
                .attribute("priority", 0.0, 100.0)
                .attribute("size", 0.0, 1_000_000.0)
                .bits_per_attribute(10)
                .build()?,
        };
        Ok(schema)
    }

    /// The workload configuration of this scenario (3 attributes, 10 bits).
    ///
    /// The generated subscriptions use the generic `attr0..attr2` schema of
    /// the workload crate; the scenario-specific [`Scenario::schema`] is
    /// intended for the hand-written examples. Both have the same shape
    /// (3 × 10 bits), so measured costs are directly comparable.
    pub fn workload_config(self, seed: u64) -> WorkloadConfig {
        let builder = WorkloadConfig::builder()
            .attributes(3)
            .bits_per_attribute(10)
            .seed(seed);
        let builder = match self {
            Scenario::StockTicker => builder
                .center_distribution(CenterDistribution::Zipf { exponent: 1.1 })
                .width_model(WidthModel::UniformFraction {
                    min: 0.02,
                    max: 0.3,
                }),
            Scenario::SensorNetwork => builder
                .center_distribution(CenterDistribution::Clustered {
                    clusters: 8,
                    spread: 0.05,
                })
                .width_model(WidthModel::UniformFraction {
                    min: 0.05,
                    max: 0.25,
                }),
            Scenario::UniformBaseline => builder
                .center_distribution(CenterDistribution::Uniform)
                .width_model(WidthModel::UniformFraction {
                    min: 0.05,
                    max: 0.5,
                }),
            Scenario::Churn => builder
                .center_distribution(CenterDistribution::Zipf { exponent: 1.2 })
                .width_model(WidthModel::UniformFraction {
                    min: 0.02,
                    max: 0.35,
                }),
            // Sharper skew and narrower widths than `Churn`: the hot region
            // is compact enough that drifting it really does concentrate
            // keys into one shard's range.
            Scenario::SkewedDrift => builder
                .center_distribution(CenterDistribution::Zipf { exponent: 1.4 })
                .width_model(WidthModel::UniformFraction {
                    min: 0.01,
                    max: 0.2,
                }),
        };
        builder.build().expect("built-in scenarios are valid")
    }

    /// The mixed subscribe/unsubscribe/publish stream of this scenario: the
    /// balanced operation ratios of [`ChurnConfig::balanced`] over the
    /// scenario's content model. Defined for every scenario (churn over a
    /// sensor-network population is meaningful), with [`Scenario::Churn`]
    /// as the canonical churn-heavy shape.
    pub fn churn_config(self, seed: u64) -> ChurnConfig {
        ChurnConfig::balanced(self.workload_config(seed))
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscriptions::SubscriptionWorkload;

    #[test]
    fn all_scenarios_produce_valid_schemas_and_configs() {
        for s in Scenario::all() {
            let schema = s.schema().unwrap();
            assert_eq!(schema.arity(), 3);
            let config = s.workload_config(1);
            assert!(config.validate().is_ok());
            let mut w = SubscriptionWorkload::new(&config).unwrap();
            assert_eq!(w.take(10).len(), 10);
            assert!(!s.label().is_empty());
            assert_eq!(s.to_string(), s.label());
        }
    }

    #[test]
    fn stock_ticker_is_skewed_sensor_network_is_clustered() {
        assert!(matches!(
            Scenario::StockTicker.workload_config(1).center_distribution,
            CenterDistribution::Zipf { .. }
        ));
        assert!(matches!(
            Scenario::SensorNetwork
                .workload_config(1)
                .center_distribution,
            CenterDistribution::Clustered { .. }
        ));
        assert!(matches!(
            Scenario::UniformBaseline
                .workload_config(1)
                .center_distribution,
            CenterDistribution::Uniform
        ));
        assert!(matches!(
            Scenario::Churn.workload_config(1).center_distribution,
            CenterDistribution::Zipf { .. }
        ));
        assert!(matches!(
            Scenario::SkewedDrift.workload_config(1).center_distribution,
            CenterDistribution::Zipf { exponent } if exponent > 1.2
        ));
    }

    #[test]
    fn skewed_drift_shifts_its_hot_region_with_the_offset() {
        let config = Scenario::SkewedDrift.workload_config(7);
        let mut workload = SubscriptionWorkload::new(&config).unwrap();
        let mean_center = |subs: &[acd_subscription::Subscription]| -> f64 {
            let grid = subs[0].schema().grid_size() as f64;
            subs.iter()
                .map(|s| {
                    let (lo, hi) = s.grid_bounds()[0];
                    (lo as f64 + hi as f64) / 2.0 / grid
                })
                .sum::<f64>()
                / subs.len() as f64
        };
        let stationary = workload.take(300);
        workload.set_center_offset(0.5);
        assert!((workload.center_offset() - 0.5).abs() < 1e-12);
        let drifted = workload.take(300);
        let (before, after) = (mean_center(&stationary), mean_center(&drifted));
        // Zipf mass sits near the low end; a half-domain shift moves it to
        // the middle of the domain.
        assert!(
            after > before + 0.25,
            "drift did not move the hot region: {before} -> {after}"
        );
    }

    #[test]
    fn every_scenario_yields_a_runnable_churn_stream() {
        use crate::churn::{ChurnOp, ChurnWorkload};
        for s in Scenario::all() {
            let config = s.churn_config(3);
            assert!(config.validate().is_ok());
            let mut churn = ChurnWorkload::new(&config).unwrap();
            let ops = churn.take(200);
            assert!(ops.iter().any(|op| matches!(op, ChurnOp::Subscribe(_))));
            assert!(
                ops.iter().any(|op| matches!(op, ChurnOp::Publish(_))),
                "scenario {s} produced no publishes"
            );
        }
    }
}
