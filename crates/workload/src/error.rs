use std::error::Error;
use std::fmt;

use acd_subscription::SubscriptionError;

/// Error type for workload generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The workload configuration is internally inconsistent.
    InvalidConfig {
        /// Human readable reason.
        reason: String,
    },
    /// An error bubbled up from the subscription data model.
    Subscription(SubscriptionError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig { reason } => {
                write!(f, "invalid workload configuration: {reason}")
            }
            WorkloadError::Subscription(e) => write!(f, "subscription error: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Subscription(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SubscriptionError> for WorkloadError {
    fn from(e: SubscriptionError) -> Self {
        WorkloadError::Subscription(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WorkloadError::InvalidConfig {
            reason: "zero attributes".into(),
        };
        assert!(e.to_string().contains("zero attributes"));
        assert!(Error::source(&e).is_none());
        let e: WorkloadError = SubscriptionError::SchemaMismatch.into();
        assert!(Error::source(&e).is_some());
    }
}
