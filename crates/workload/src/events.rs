//! The event (published message) generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use acd_subscription::{Event, Schema};

use crate::config::{CenterDistribution, WorkloadConfig};
use crate::distributions::{sample_clamped_gaussian, Zipf};
use crate::subscriptions::build_schema;
use crate::Result;

/// A reproducible stream of synthetic events following the same center
/// distribution as the subscription workload, so that skewed subscription
/// populations see correspondingly skewed traffic.
#[derive(Debug)]
pub struct EventWorkload {
    config: WorkloadConfig,
    schema: Schema,
    rng: StdRng,
    zipf: Option<Zipf>,
    cluster_centers: Vec<Vec<f64>>,
}

impl EventWorkload {
    /// Creates a generator for `config`. The RNG stream is independent of
    /// the subscription generator's (the seed is offset), so subscriptions
    /// and events can be drawn in any interleaving.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: &WorkloadConfig) -> Result<Self> {
        config.validate()?;
        let schema = build_schema(config)?;
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x9e3779b97f4a7c15));
        let zipf = match config.center_distribution {
            CenterDistribution::Zipf { exponent } => Some(Zipf::new(4096, exponent)),
            _ => None,
        };
        let cluster_centers = match config.center_distribution {
            CenterDistribution::Clustered { clusters, .. } => (0..clusters)
                .map(|_| {
                    (0..config.attributes)
                        .map(|_| rng.gen_range(0.0..WorkloadConfig::DOMAIN_MAX))
                        .collect()
                })
                .collect(),
            _ => Vec::new(),
        };
        Ok(EventWorkload {
            config: config.clone(),
            schema,
            rng,
            zipf,
            cluster_centers,
        })
    }

    /// Creates a generator that shares `schema` (e.g. the one the
    /// subscription workload built) instead of rebuilding it.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn with_schema(config: &WorkloadConfig, schema: &Schema) -> Result<Self> {
        let mut w = Self::new(config)?;
        w.schema = schema.clone();
        Ok(w)
    }

    /// The schema the generated events are built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn sample_value(&mut self, attr: usize) -> f64 {
        let max = WorkloadConfig::DOMAIN_MAX;
        match self.config.center_distribution {
            CenterDistribution::Uniform => self.rng.gen_range(0.0..max),
            CenterDistribution::Zipf { .. } => {
                let z = self.zipf.as_ref().expect("zipf sampler exists");
                let bucket = z.sample(&mut self.rng);
                let bucket_width = max / z.buckets() as f64;
                bucket as f64 * bucket_width + self.rng.gen_range(0.0..bucket_width)
            }
            CenterDistribution::Clustered { spread, .. } => {
                let c = self.rng.gen_range(0..self.cluster_centers.len());
                let mean = self.cluster_centers[c][attr];
                sample_clamped_gaussian(&mut self.rng, mean, spread * max, 0.0, max)
            }
        }
    }

    /// Draws the next event.
    pub fn next_event(&mut self) -> Event {
        let values: Vec<f64> = (0..self.config.attributes)
            .map(|attr| self.sample_value(attr))
            .collect();
        Event::new(&self.schema, values).expect("generated events are valid")
    }

    /// Draws a batch of `n` events.
    pub fn take(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.next_event()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CenterDistribution;
    use crate::subscriptions::SubscriptionWorkload;

    fn config() -> WorkloadConfig {
        WorkloadConfig::builder()
            .attributes(2)
            .bits_per_attribute(8)
            .seed(77)
            .build()
            .unwrap()
    }

    #[test]
    fn events_are_reproducible_and_in_domain() {
        let c = config();
        let a = EventWorkload::new(&c).unwrap().take(100);
        let b = EventWorkload::new(&c).unwrap().take(100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.values(), y.values());
            for &v in x.values() {
                assert!((0.0..=WorkloadConfig::DOMAIN_MAX).contains(&v));
            }
        }
    }

    #[test]
    fn events_share_the_subscription_schema() {
        let c = config();
        let subs = SubscriptionWorkload::new(&c).unwrap();
        let mut events = EventWorkload::with_schema(&c, subs.schema()).unwrap();
        let e = events.next_event();
        assert_eq!(e.schema(), subs.schema());
    }

    #[test]
    fn clustered_events_concentrate_near_cluster_centers() {
        let c = WorkloadConfig::builder()
            .attributes(2)
            .center_distribution(CenterDistribution::Clustered {
                clusters: 1,
                spread: 0.01,
            })
            .seed(123)
            .build()
            .unwrap();
        let mut w = EventWorkload::new(&c).unwrap();
        let events = w.take(300);
        // With a single tight cluster, the spread of values should be small.
        let xs: Vec<f64> = events.iter().map(|e| e.value(0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let spread = xs
            .iter()
            .map(|x| (x - mean).abs())
            .fold(0.0f64, |a, b| a.max(b));
        assert!(
            spread < WorkloadConfig::DOMAIN_MAX * 0.1,
            "events should cluster tightly, spread {spread}"
        );
    }
}
