//! # acd-workload — synthetic workloads for covering-detection experiments
//!
//! The paper evaluates covering detection on synthetic populations of
//! multi-attribute subscriptions. This crate generates those populations in a
//! reproducible (seeded) way:
//!
//! * [`SubscriptionWorkload`] draws subscriptions whose *centers* follow a
//!   configurable distribution (uniform, Zipf-skewed per attribute, or
//!   clustered around hot spots) and whose *widths* follow a configurable
//!   width model, including direct control of the aspect ratio that drives
//!   the paper's bounds.
//! * [`EventWorkload`] draws events matching the same distributions.
//! * [`ChurnWorkload`] interleaves the two into a mixed
//!   subscribe/unsubscribe/publish stream with configurable operation
//!   ratios — the dynamic workload the sharded index and the broker
//!   unsubscription path are built for.
//! * [`scenarios`] bundles named application scenarios (stock ticker, sensor
//!   network, churn) used by the examples and the broker experiments.
//!
//! ## Example
//!
//! ```
//! use acd_workload::{SubscriptionWorkload, WorkloadConfig, CenterDistribution, WidthModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = WorkloadConfig::builder()
//!     .attributes(3)
//!     .bits_per_attribute(10)
//!     .center_distribution(CenterDistribution::Uniform)
//!     .width_model(WidthModel::UniformFraction { min: 0.05, max: 0.4 })
//!     .seed(7)
//!     .build()?;
//! let mut workload = SubscriptionWorkload::new(&config)?;
//! let subs = workload.take(1000);
//! assert_eq!(subs.len(), 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod churn;
pub mod config;
pub mod distributions;
mod error;
pub mod events;
pub mod scenarios;
pub mod subscriptions;

pub use churn::{ChurnConfig, ChurnOp, ChurnWorkload};
pub use config::{CenterDistribution, WidthModel, WorkloadConfig, WorkloadConfigBuilder};
pub use error::WorkloadError;
pub use events::EventWorkload;
pub use scenarios::Scenario;
pub use subscriptions::SubscriptionWorkload;

/// Convenience result alias used throughout the crate.
pub type Result<T, E = WorkloadError> = std::result::Result<T, E>;
