//! The churn workload: a mixed, reproducible stream of subscribe,
//! unsubscribe and publish operations.
//!
//! Everything before this module generated insert-once/query-many
//! populations; a production broker instead sees *churn* — subscriptions
//! arriving and leaving continuously while events flow. [`ChurnWorkload`]
//! draws that stream: operation kinds follow configurable weights,
//! subscription and event content follows the embedded [`WorkloadConfig`]
//! (so Zipf-skewed interest produces correspondingly skewed churn), and
//! unsubscriptions pick a uniformly random live subscription. The same seed
//! always reproduces the same operation stream.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use acd_subscription::{Event, Schema, SubId, Subscription};

use crate::config::WorkloadConfig;
use crate::error::WorkloadError;
use crate::events::EventWorkload;
use crate::subscriptions::SubscriptionWorkload;
use crate::Result;

/// Configuration of a churn stream: the content model plus the operation
/// mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Content model (distributions, schema shape, seed) shared by the
    /// subscription and event generators.
    pub workload: WorkloadConfig,
    /// Relative weight of subscribe operations.
    pub subscribe_weight: u32,
    /// Relative weight of unsubscribe operations (fall back to subscribes
    /// while no subscription is live).
    pub unsubscribe_weight: u32,
    /// Relative weight of publish operations.
    pub publish_weight: u32,
    /// Number of unconditional subscribes emitted before the mixed stream
    /// starts, so unsubscribe and publish operations have a live population
    /// to work against.
    pub warmup_subscriptions: usize,
}

impl ChurnConfig {
    /// A balanced mix over the given content model: slightly more
    /// subscribes than unsubscribes (the live set drifts upward, as a
    /// growing deployment's would) and a steady publish stream.
    pub fn balanced(workload: WorkloadConfig) -> Self {
        ChurnConfig {
            workload,
            subscribe_weight: 45,
            unsubscribe_weight: 35,
            publish_weight: 20,
            warmup_subscriptions: 64,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if the content model is
    /// invalid or every operation weight is zero.
    pub fn validate(&self) -> Result<()> {
        self.workload.validate()?;
        if self.subscribe_weight == 0 && self.unsubscribe_weight == 0 && self.publish_weight == 0 {
            return Err(WorkloadError::InvalidConfig {
                reason: "at least one churn operation weight must be positive".into(),
            });
        }
        Ok(())
    }
}

/// One operation of a churn stream.
#[derive(Debug, Clone)]
pub enum ChurnOp {
    /// Register a new subscription.
    Subscribe(Subscription),
    /// Unregister the subscription with this identifier (always one that an
    /// earlier [`ChurnOp::Subscribe`] of the same stream introduced and that
    /// no earlier unsubscribe removed).
    Unsubscribe(SubId),
    /// Publish an event.
    Publish(Event),
}

/// A reproducible stream of mixed subscribe/unsubscribe/publish operations
/// (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use acd_workload::{ChurnConfig, ChurnOp, ChurnWorkload, WorkloadConfig};
///
/// # fn main() -> Result<(), acd_workload::WorkloadError> {
/// let config = ChurnConfig::balanced(WorkloadConfig::builder().seed(7).build()?);
/// let mut churn = ChurnWorkload::new(&config)?;
/// let ops = churn.take(100);
/// assert_eq!(ops.len(), 100);
/// assert!(ops.iter().any(|op| matches!(op, ChurnOp::Subscribe(_))));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ChurnWorkload {
    config: ChurnConfig,
    subscriptions: SubscriptionWorkload,
    events: EventWorkload,
    /// Operation-kind stream, independent of the content streams (offset
    /// seed) so the mix can change without re-rolling the content.
    rng: StdRng,
    live: Vec<SubId>,
    warmup_left: usize,
}

impl ChurnWorkload {
    /// Creates a generator for `config`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(config: &ChurnConfig) -> Result<Self> {
        config.validate()?;
        let subscriptions = SubscriptionWorkload::new(&config.workload)?;
        let events = EventWorkload::with_schema(&config.workload, subscriptions.schema())?;
        let rng = StdRng::seed_from_u64(config.workload.seed.wrapping_add(0x517cc1b727220a95));
        Ok(ChurnWorkload {
            config: config.clone(),
            subscriptions,
            events,
            rng,
            live: Vec::new(),
            warmup_left: config.warmup_subscriptions,
        })
    }

    /// The schema all generated subscriptions and events follow.
    pub fn schema(&self) -> &Schema {
        self.subscriptions.schema()
    }

    /// The configuration this stream follows.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Identifiers currently live in the stream (subscribed and not yet
    /// unsubscribed), in no particular order.
    pub fn live(&self) -> &[SubId] {
        &self.live
    }

    /// Shifts the centers of every subsequently generated subscription by
    /// `fraction` of the domain (see
    /// [`SubscriptionWorkload::set_center_offset`]): the churn stream's hot
    /// region drifts mid-stream, which is the workload shape that forces a
    /// frozen shard layout out of balance.
    pub fn set_center_offset(&mut self, fraction: f64) {
        self.subscriptions.set_center_offset(fraction);
    }

    fn subscribe(&mut self) -> ChurnOp {
        let subscription = self.subscriptions.next_subscription();
        self.live.push(subscription.id());
        ChurnOp::Subscribe(subscription)
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> ChurnOp {
        if self.warmup_left > 0 {
            self.warmup_left -= 1;
            return self.subscribe();
        }
        let weights = [
            self.config.subscribe_weight,
            self.config.unsubscribe_weight,
            self.config.publish_weight,
        ];
        let total: u32 = weights.iter().sum();
        let mut roll = (self.rng.gen_range(0..total as usize)) as u32;
        if roll < weights[0] {
            return self.subscribe();
        }
        roll -= weights[0];
        if roll < weights[1] {
            if self.live.is_empty() {
                // Nothing to remove yet: keep the stream flowing.
                return self.subscribe();
            }
            let victim = self.rng.gen_range(0..self.live.len());
            let id = self.live.swap_remove(victim);
            return ChurnOp::Unsubscribe(id);
        }
        ChurnOp::Publish(self.events.next_event())
    }

    /// Draws a batch of `n` operations.
    pub fn take(&mut self, n: usize) -> Vec<ChurnOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CenterDistribution;

    fn config() -> ChurnConfig {
        ChurnConfig::balanced(
            WorkloadConfig::builder()
                .attributes(2)
                .bits_per_attribute(8)
                .center_distribution(CenterDistribution::Zipf { exponent: 1.1 })
                .seed(5)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn streams_are_reproducible_and_well_formed() {
        let c = config();
        let a = ChurnWorkload::new(&c).unwrap().take(500);
        let b = ChurnWorkload::new(&c).unwrap().take(500);
        assert_eq!(a.len(), b.len());
        let mut live = std::collections::HashSet::new();
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (ChurnOp::Subscribe(s1), ChurnOp::Subscribe(s2)) => {
                    assert_eq!(s1.id(), s2.id());
                    assert_eq!(s1.grid_bounds(), s2.grid_bounds());
                    // Fresh identifier, never seen before.
                    assert!(live.insert(s1.id()));
                }
                (ChurnOp::Unsubscribe(i1), ChurnOp::Unsubscribe(i2)) => {
                    assert_eq!(i1, i2);
                    // Always removes a currently-live subscription.
                    assert!(live.remove(i1));
                }
                (ChurnOp::Publish(e1), ChurnOp::Publish(e2)) => {
                    assert_eq!(e1.values(), e2.values());
                }
                other => panic!("streams diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn warmup_emits_only_subscribes_and_mix_contains_all_kinds() {
        let c = config();
        let mut churn = ChurnWorkload::new(&c).unwrap();
        let warmup = churn.take(c.warmup_subscriptions);
        assert!(warmup.iter().all(|op| matches!(op, ChurnOp::Subscribe(_))));
        assert_eq!(churn.live().len(), c.warmup_subscriptions);
        let mixed = churn.take(600);
        let subs = mixed
            .iter()
            .filter(|op| matches!(op, ChurnOp::Subscribe(_)))
            .count();
        let unsubs = mixed
            .iter()
            .filter(|op| matches!(op, ChurnOp::Unsubscribe(_)))
            .count();
        let pubs = mixed
            .iter()
            .filter(|op| matches!(op, ChurnOp::Publish(_)))
            .count();
        assert!(subs > 0 && unsubs > 0 && pubs > 0, "{subs}/{unsubs}/{pubs}");
        // The balanced mix keeps the live set near warmup + drift, far from
        // either extinction or one-sided growth.
        assert_eq!(churn.live().len(), c.warmup_subscriptions + subs - unsubs);
    }

    #[test]
    fn rejects_all_zero_weights() {
        let mut c = config();
        c.subscribe_weight = 0;
        c.unsubscribe_weight = 0;
        c.publish_weight = 0;
        assert!(ChurnWorkload::new(&c).is_err());
    }

    #[test]
    fn unsubscribe_only_mix_falls_back_to_subscribes_when_empty() {
        let mut c = config();
        c.warmup_subscriptions = 0;
        c.subscribe_weight = 0;
        c.unsubscribe_weight = 1;
        c.publish_weight = 0;
        let mut churn = ChurnWorkload::new(&c).unwrap();
        // First op has nothing to remove — must fall back to a subscribe.
        assert!(matches!(churn.next_op(), ChurnOp::Subscribe(_)));
        assert!(matches!(churn.next_op(), ChurnOp::Unsubscribe(_)));
        assert!(churn.live().is_empty());
    }
}
