//! Small, self-contained random distributions used by the generators.
//!
//! Only the distributions the experiments actually need are implemented
//! (uniform, bounded Zipf, rounded Gaussian), keeping the dependency
//! footprint to the `rand` crate alone.

use rand::rngs::StdRng;
use rand::Rng;

/// A bounded Zipf sampler over `{0, 1, …, n−1}` with exponent `s`:
/// `P(i) ∝ 1 / (i + 1)^s`.
///
/// Sampling uses the classic rejection-inversion-free approach of
/// precomputing the cumulative distribution, which is perfectly adequate for
/// the domain sizes the workloads use (a few thousand buckets).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` buckets with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one bucket");
        assert!(s > 0.0, "zipf exponent must be positive");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws a bucket index in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf values are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Draws from a Gaussian with the given mean and standard deviation using the
/// Box–Muller transform.
pub fn sample_gaussian(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Draws a Gaussian sample and clamps it into `[lo, hi]`.
pub fn sample_clamped_gaussian(rng: &mut StdRng, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
    sample_gaussian(rng, mean, std_dev).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zipf_prefers_low_buckets() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[50] * 5);
        assert_eq!(z.buckets(), 100);
    }

    #[test]
    fn zipf_with_tiny_exponent_is_nearly_uniform() {
        let z = Zipf::new(10, 0.01);
        let mut r = rng(2);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.3, "min {min} max {max}");
    }

    #[test]
    fn zipf_samples_are_in_range() {
        let z = Zipf::new(7, 2.0);
        let mut r = rng(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 7);
        }
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_zero_buckets() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn gaussian_has_roughly_correct_moments() {
        let mut r = rng(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_gaussian(&mut r, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn clamped_gaussian_respects_bounds() {
        let mut r = rng(5);
        for _ in 0..1000 {
            let v = sample_clamped_gaussian(&mut r, 0.0, 100.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}
