//! Workspace-level smoke test: the whole experiment suite runs at
//! `RunScale::quick()` and every experiment yields at least one non-empty,
//! renderable table.

use acd_bench::experiments::{self, catalog};
use acd_bench::RunScale;

#[test]
fn every_experiment_produces_tables_at_quick_scale() {
    let scale = RunScale::quick();
    for info in catalog() {
        let tables = experiments::run(info.id, scale);
        assert!(
            !tables.is_empty(),
            "experiment {} produced no tables",
            info.id
        );
        for table in &tables {
            assert!(
                table.row_count() > 0,
                "experiment {} produced an empty table `{}`",
                info.id,
                table.title()
            );
            assert!(
                table.column_count() > 0,
                "experiment {} produced a table `{}` with no columns",
                info.id,
                table.title()
            );
            let rendered = table.render();
            assert!(rendered.contains(table.title()));
            let csv = table.to_csv();
            assert_eq!(csv.lines().count(), table.row_count() + 1);
        }
    }
}
