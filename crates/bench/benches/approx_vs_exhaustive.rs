//! Criterion bench for E5: per-query latency of the three covering-detection
//! strategies (linear scan, exhaustive SFC, ε-approximate SFC) on the same
//! population.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use acd_covering::{ApproxConfig, CoveringIndex, LinearScanIndex, SfcCoveringIndex};
use acd_workload::{SubscriptionWorkload, WorkloadConfig};

fn bench_strategies(c: &mut Criterion) {
    let config = WorkloadConfig::builder()
        .attributes(3)
        .bits_per_attribute(10)
        .seed(2)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(10_000);
    let queries = workload.take(64);

    let mut group = c.benchmark_group("covering_strategies");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));

    let mut linear = LinearScanIndex::new(&schema);
    let mut exhaustive = SfcCoveringIndex::exhaustive(&schema).unwrap();
    let mut approximate =
        SfcCoveringIndex::approximate(&schema, ApproxConfig::with_epsilon(0.05).unwrap()).unwrap();
    for s in &population {
        linear.insert(s).unwrap();
        exhaustive.insert(s).unwrap();
        approximate.insert(s).unwrap();
    }

    let mut cases: Vec<(&str, &mut dyn CoveringIndex)> = vec![
        ("linear-scan", &mut linear),
        ("sfc-exhaustive", &mut exhaustive),
        ("sfc-approx-0.05", &mut approximate),
    ];
    for (name, index) in cases.iter_mut() {
        group.bench_function(*name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                std::hint::black_box(index.find_covering(q).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
