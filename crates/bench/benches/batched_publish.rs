//! Criterion bench for the batched publish path: the same event stream
//! delivered through `BrokerNetwork::publish` one event at a time and
//! through `BrokerNetwork::publish_batch` in one call. The batched kernel
//! walks the overlay once per burst and matches subscription-outer /
//! event-inner, so the win grows with the standing population.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acd_broker::{BrokerConfig, BrokerNetwork, Topology};
use acd_covering::CoveringPolicy;
use acd_workload::{EventWorkload, Scenario, SubscriptionWorkload};

/// A populated overlay plus an event burst, shared by both publish shapes.
fn build(subscriptions: usize, events: usize) -> (BrokerNetwork, Vec<acd_subscription::Event>) {
    let config = Scenario::StockTicker.workload_config(17);
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(subscriptions);
    let stream = EventWorkload::with_schema(&config, &schema)
        .unwrap()
        .take(events);
    let topology = Topology::balanced_tree(2, 3).unwrap(); // 15 brokers
    let net = BrokerConfig::new(topology, &schema)
        .policy(CoveringPolicy::ExactSfc)
        .build()
        .unwrap();
    for (i, s) in population.iter().enumerate() {
        let at = (i * 7) % net.topology().brokers();
        net.subscribe(at, i as u64 + 1, s).unwrap();
    }
    (net, stream)
}

fn bench_batched_publish(c: &mut Criterion) {
    const EVENTS: usize = 64;

    let mut group = c.benchmark_group("batched_publish");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for subscriptions in [500usize, 2_000] {
        let (net, events) = build(subscriptions, EVENTS);
        group.bench_with_input(
            BenchmarkId::new("serial", subscriptions),
            &subscriptions,
            |b, _| {
                b.iter(|| {
                    let mut delivered = 0usize;
                    for e in &events {
                        delivered += net.publish(3, e).unwrap().len();
                    }
                    std::hint::black_box(delivered)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", subscriptions),
            &subscriptions,
            |b, _| {
                b.iter(|| {
                    let lists = net.publish_batch(3, &events).unwrap();
                    std::hint::black_box(lists.iter().map(Vec::len).sum::<usize>())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batched_publish);
criterion_main!(benches);
