//! Criterion bench for E9: covering-query latency as the workload's aspect
//! ratio grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acd_covering::{ApproxConfig, CoveringIndex, SfcCoveringIndex};
use acd_workload::{SubscriptionWorkload, WidthModel, WorkloadConfig};

fn bench_aspect_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("aspect_ratio");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for &alpha in &[0u32, 2, 4, 6] {
        let config = WorkloadConfig::builder()
            .attributes(3)
            .bits_per_attribute(10)
            .width_model(WidthModel::SkewedAspect {
                wide_fraction: 0.4,
                alpha_bits: alpha,
            })
            .seed(4)
            .build()
            .unwrap();
        let mut workload = SubscriptionWorkload::new(&config).unwrap();
        let schema = workload.schema().clone();
        let population = workload.take(5_000);
        let queries = workload.take(64);
        let mut index =
            SfcCoveringIndex::approximate(&schema, ApproxConfig::with_epsilon(0.05).unwrap())
                .unwrap();
        for s in &population {
            index.insert(s).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                std::hint::black_box(index.find_covering(q).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aspect_ratio);
criterion_main!(benches);
