//! Criterion bench for E3/E5: covering-query latency as a function of the
//! approximation parameter ε.
//!
//! Regenerates the timing series behind the paper's claim that an
//! ε-approximate query is much cheaper than an exhaustive one, on a realistic
//! subscription population.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acd_covering::{ApproxConfig, CoveringIndex, SfcCoveringIndex};
use acd_workload::{SubscriptionWorkload, WorkloadConfig};

fn bench_epsilon_sweep(c: &mut Criterion) {
    let config = WorkloadConfig::builder()
        .attributes(3)
        .bits_per_attribute(10)
        .seed(1)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(10_000);
    let queries = workload.take(64);

    let mut group = c.benchmark_group("approx_query_epsilon");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for &eps in &[0.3f64, 0.1, 0.05, 0.01] {
        let mut index =
            SfcCoveringIndex::approximate(&schema, ApproxConfig::with_epsilon(eps).unwrap())
                .unwrap();
        for s in &population {
            index.insert(s).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                std::hint::black_box(index.find_covering(q).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_epsilon_sweep);
criterion_main!(benches);
