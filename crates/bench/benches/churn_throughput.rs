//! Criterion bench: sharded covering-index throughput under churn, at 1, 2
//! and 4 key-range shards over an n = 10k population.
//!
//! Three measurements per shard count:
//!
//! * `queries` — serial covering-query latency through the sequential shard
//!   sweep (shows the cost of visiting multiple shards when there is no
//!   concurrency to win back);
//! * `updates` — paired subscribe/unsubscribe churn (shows the algorithmic
//!   win: smaller shards mean smaller staging levels and cheaper merges);
//! * `concurrent-queries` — a reader-thread team racing a churn writer,
//!   total queries per iteration fixed (shows the lock-contention win that
//!   perf-smoke's `--assert-budget` gates at ≥1.5× for 4 vs 1 shards on
//!   multi-core machines).
//!
//! Two further groups cover the PR-5 machinery:
//!
//! * `parallel_dispatch` — one covering query per iteration through the
//!   sequential sweep, the per-call scoped-thread fan-out and the
//!   persistent worker pool (the pool must beat scoped threads at this
//!   micro-query size);
//! * `drift_updates` — paired insert/remove churn on a drifted skewed
//!   population with frozen boundaries vs the auto-rebalance policy armed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acd_bench::ci::DriftHarness;
use acd_covering::{ApproxConfig, ShardedCoveringIndex};
use acd_sfc::CurveKind;
use acd_workload::{SubscriptionWorkload, WorkloadConfig};

fn bench_churn(c: &mut Criterion) {
    let config = WorkloadConfig::builder()
        .attributes(3)
        .bits_per_attribute(10)
        .seed(404)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(10_000);
    let queries = workload.take(64);
    let churn: Vec<_> = workload.take(256);

    let readers = std::thread::available_parallelism()
        .map(|p| p.get().saturating_sub(1))
        .unwrap_or(1)
        .clamp(1, 4);

    let mut group = c.benchmark_group("churn_throughput");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        let index = ShardedCoveringIndex::build_from(
            &schema,
            ApproxConfig::exhaustive(),
            CurveKind::Z,
            shards,
            &population,
        )
        .unwrap();

        group.bench_with_input(BenchmarkId::new("queries", shards), &shards, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    hits += usize::from(index.find_covering_ref(q).unwrap().is_covered());
                }
                std::hint::black_box(hits)
            });
        });

        group.bench_with_input(BenchmarkId::new("updates", shards), &shards, |b, _| {
            b.iter(|| {
                for sub in &churn {
                    index.insert(sub).unwrap();
                }
                for sub in &churn {
                    index.remove(sub.id()).unwrap();
                }
                std::hint::black_box(ShardedCoveringIndex::len(&index))
            });
        });

        group.bench_with_input(
            BenchmarkId::new("concurrent-queries", shards),
            &shards,
            |b, _| {
                b.iter(|| {
                    // Readers drain a fixed query budget while a writer
                    // churns; the iteration ends when the queries are done.
                    let stop = AtomicBool::new(false);
                    let total: usize = std::thread::scope(|scope| {
                        let writer = scope.spawn(|| {
                            let mut i = 0usize;
                            while !stop.load(Ordering::Acquire) {
                                let sub = &churn[i % churn.len()];
                                index.insert(sub).unwrap();
                                index.remove(sub.id()).unwrap();
                                i += 1;
                            }
                        });
                        let counts: Vec<_> = (0..readers)
                            .map(|_| {
                                scope.spawn(|| {
                                    let mut n = 0usize;
                                    for _ in 0..4 {
                                        for q in &queries {
                                            std::hint::black_box(
                                                index.find_covering_ref(q).unwrap(),
                                            );
                                            n += 1;
                                        }
                                    }
                                    n
                                })
                            })
                            .collect();
                        let total = counts.into_iter().map(|h| h.join().unwrap()).sum();
                        stop.store(true, Ordering::Release);
                        writer.join().unwrap();
                        total
                    });
                    std::hint::black_box(total)
                });
            },
        );
    }
    group.finish();
}

fn bench_parallel_dispatch(c: &mut Criterion) {
    let config = WorkloadConfig::builder()
        .attributes(3)
        .bits_per_attribute(10)
        .seed(404)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(10_000);
    let queries = workload.take(64);

    let index = ShardedCoveringIndex::build_from(
        &schema,
        ApproxConfig::exhaustive(),
        CurveKind::Z,
        4,
        &population,
    )
    .unwrap();
    // Warm the pool outside the measurement.
    index.find_covering_parallel(&queries[0]).unwrap();

    let mut group = c.benchmark_group("parallel_dispatch");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            std::hint::black_box(index.find_covering_ref(q).unwrap())
        });
    });
    group.bench_function("scoped-threads", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            std::hint::black_box(index.find_covering_scoped(q).unwrap())
        });
    });
    group.bench_function("worker-pool", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            std::hint::black_box(index.find_covering_parallel(q).unwrap())
        });
    });
    group.finish();
}

fn bench_drift_updates(c: &mut Criterion) {
    let n = 10_000usize;
    let mut group = c.benchmark_group("drift_updates");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for (label, rebalance) in [("frozen", false), ("rebalanced", true)] {
        // DriftHarness drifts the hot region and replaces the population
        // once, so the frozen variant measures its concentrated steady
        // state (the same protocol as the perf-smoke gate and e13).
        let mut harness = DriftHarness::new(n, rebalance, 808);
        group.bench_with_input(BenchmarkId::new("updates", label), &label, |b, _| {
            b.iter(|| {
                for _ in 0..64 {
                    harness.paired_update();
                }
                std::hint::black_box(ShardedCoveringIndex::len(&harness.index))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_churn,
    bench_parallel_dispatch,
    bench_drift_updates
);
criterion_main!(benches);
