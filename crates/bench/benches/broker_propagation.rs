//! Criterion bench for E7: subscription-propagation throughput of the broker
//! overlay under the different covering policies, plus event-delivery
//! fan-out (which exercises the allocation-free
//! `matching_local_clients_iter` path).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use acd_broker::{BrokerConfig, Topology};
use acd_covering::CoveringPolicy;
use acd_workload::{EventWorkload, Scenario, SubscriptionWorkload};

fn bench_propagation(c: &mut Criterion) {
    let config = Scenario::StockTicker.workload_config(11);
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let subscriptions = workload.take(500);
    let topology = Topology::balanced_tree(2, 3).unwrap(); // 15 brokers

    let mut group = c.benchmark_group("broker_propagation");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for policy in [
        CoveringPolicy::None,
        CoveringPolicy::ExactLinear,
        CoveringPolicy::ExactSfc,
        CoveringPolicy::Approximate { epsilon: 0.05 },
    ] {
        group.bench_function(policy.label(), |b| {
            b.iter_batched(
                || {
                    BrokerConfig::new(topology.clone(), &schema)
                        .policy(policy)
                        .build()
                        .unwrap()
                },
                |net| {
                    for (i, s) in subscriptions.iter().enumerate() {
                        let at = (i * 7) % net.topology().brokers();
                        net.subscribe(at, i as u64, s).unwrap();
                    }
                    std::hint::black_box(net.metrics())
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Event fan-out: a populated overlay delivering a stream of events. The
/// per-event cost is dominated by local matching
/// (`matching_local_clients_iter`) and per-neighbor interest checks.
fn bench_delivery(c: &mut Criterion) {
    let config = Scenario::StockTicker.workload_config(13);
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let subscriptions = workload.take(500);
    let events = EventWorkload::with_schema(&config, &schema)
        .unwrap()
        .take(200);
    let topology = Topology::balanced_tree(2, 3).unwrap(); // 15 brokers

    let net = BrokerConfig::new(topology, &schema)
        .policy(CoveringPolicy::ExactSfc)
        .build()
        .unwrap();
    for (i, s) in subscriptions.iter().enumerate() {
        let at = (i * 7) % net.topology().brokers();
        net.subscribe(at, i as u64, s).unwrap();
    }

    let mut group = c.benchmark_group("broker_delivery");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("publish-200-events", |b| {
        b.iter(|| {
            let mut delivered = 0usize;
            for (i, e) in events.iter().enumerate() {
                delivered += net.publish(i % 15, e).unwrap().len();
            }
            std::hint::black_box(delivered)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_propagation, bench_delivery);
criterion_main!(benches);
