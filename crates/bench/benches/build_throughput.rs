//! Criterion bench: index-construction throughput — `n` incremental inserts
//! against the one-sort bulk path (`SfcCoveringIndex::build_from`), at
//! several population sizes. Companion to `scalability_n`, which measures
//! query latency on the same workload shape.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acd_covering::{ApproxConfig, CoveringIndex, SfcCoveringIndex};
use acd_sfc::CurveKind;
use acd_workload::{SubscriptionWorkload, WorkloadConfig};

fn bench_build(c: &mut Criterion) {
    let config = WorkloadConfig::builder()
        .attributes(3)
        .bits_per_attribute(10)
        .seed(404)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(10_000);

    let mut group = c.benchmark_group("build_throughput");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    for n in [1_000usize, 4_000, 10_000] {
        let subs = &population[..n];
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut index = SfcCoveringIndex::exhaustive(&schema).unwrap();
                for s in subs {
                    index.insert(s).unwrap();
                }
                std::hint::black_box(index.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("bulk", n), &n, |b, _| {
            b.iter(|| {
                let index = SfcCoveringIndex::build_from(
                    &schema,
                    ApproxConfig::exhaustive(),
                    CurveKind::Z,
                    subs,
                )
                .unwrap();
                std::hint::black_box(index.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
