//! Criterion bench comparing the Z, Hilbert and Gray-code curves as the
//! index substrate (the paper's remark, following [MJFS01], is that their
//! costs are within a constant factor of each other).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use acd_covering::{ApproxConfig, CoveringIndex, SfcCoveringIndex};
use acd_sfc::CurveKind;
use acd_workload::{SubscriptionWorkload, WorkloadConfig};

fn bench_curves(c: &mut Criterion) {
    let config = WorkloadConfig::builder()
        .attributes(3)
        .bits_per_attribute(10)
        .seed(5)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(10_000);
    let queries = workload.take(64);

    let mut group = c.benchmark_group("curve_compare");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for curve in CurveKind::all() {
        let mut index =
            SfcCoveringIndex::with_curve(&schema, ApproxConfig::with_epsilon(0.05).unwrap(), curve)
                .unwrap();
        for s in &population {
            index.insert(s).unwrap();
        }
        group.bench_function(curve.name(), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                std::hint::black_box(index.find_covering(q).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_curves);
criterion_main!(benches);
