//! Criterion bench for E8: covering-query latency as the indexed population
//! grows, for the linear baseline and the approximate SFC index.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acd_covering::{ApproxConfig, CoveringIndex, LinearScanIndex, SfcCoveringIndex};
use acd_workload::{SubscriptionWorkload, WorkloadConfig};

fn bench_scalability(c: &mut Criterion) {
    let config = WorkloadConfig::builder()
        .attributes(3)
        .bits_per_attribute(10)
        .seed(3)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(50_000);
    let queries = workload.take(64);

    let mut group = c.benchmark_group("scalability_n");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for &n in &[1_000usize, 10_000, 50_000] {
        let subset = &population[..n];

        let mut linear = LinearScanIndex::new(&schema);
        let mut approx =
            SfcCoveringIndex::approximate(&schema, ApproxConfig::with_epsilon(0.05).unwrap())
                .unwrap();
        for s in subset {
            linear.insert(s).unwrap();
            approx.insert(s).unwrap();
        }

        group.bench_with_input(BenchmarkId::new("linear-scan", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                std::hint::black_box(linear.find_covering(q).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("sfc-approx-0.05", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                std::hint::black_box(approx.find_covering(q).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
