//! Criterion bench for E8: covering-query latency as the indexed population
//! grows — the linear baseline against the exact-SFC index on the
//! populated-key skip engine (the path that must beat the scan), the
//! approximate index, and the PR-1 eager engine kept as the before/after
//! reference (capped at 10k, where it is already orders of magnitude
//! slower).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acd_covering::{ApproxConfig, CoveringIndex, LinearScanIndex, QueryEngine, SfcCoveringIndex};
use acd_workload::{SubscriptionWorkload, WorkloadConfig};

fn bench_scalability(c: &mut Criterion) {
    let config = WorkloadConfig::builder()
        .attributes(3)
        .bits_per_attribute(10)
        .seed(3)
        .build()
        .unwrap();
    let mut workload = SubscriptionWorkload::new(&config).unwrap();
    let schema = workload.schema().clone();
    let population = workload.take(50_000);
    let queries = workload.take(64);

    let mut group = c.benchmark_group("scalability_n");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    for &n in &[1_000usize, 10_000, 50_000] {
        let subset = &population[..n];

        let mut linear = LinearScanIndex::new(&schema);
        for s in subset {
            linear.insert(s).unwrap();
        }
        // SFC indexes are bulk-built (one sorted pass) — at 50k this takes
        // milliseconds where the incremental loop takes tens.
        let mut exact = SfcCoveringIndex::build_from(
            &schema,
            ApproxConfig::exhaustive(),
            acd_sfc::CurveKind::Z,
            subset,
        )
        .unwrap();
        let mut approx = SfcCoveringIndex::build_from(
            &schema,
            ApproxConfig::with_epsilon(0.05).unwrap(),
            acd_sfc::CurveKind::Z,
            subset,
        )
        .unwrap();

        let mut bench_index = |name: &str, index: &mut dyn CoveringIndex| {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    std::hint::black_box(index.find_covering(q).unwrap())
                });
            });
        };
        bench_index("linear-scan", &mut linear);
        bench_index("sfc-exact-skip", &mut exact);
        bench_index("sfc-approx-0.05", &mut approx);
        if n <= 10_000 {
            // The eager reference reuses the populated exact index — the
            // engine is a query-time knob, so switching the configuration
            // avoids building a duplicate 10k-subscription index.
            exact.set_config(ApproxConfig::exhaustive().engine(QueryEngine::EagerRuns));
            bench_index("sfc-exact-eager", &mut exact);
            exact.set_config(ApproxConfig::exhaustive());
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
