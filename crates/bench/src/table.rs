//! Plain-text experiment tables with optional CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table with a title, used for all experiment
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.headers.len()
    }

    /// Appends a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match the number of headers.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Convenience for building a row of display-able values.
    pub fn add_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut header_line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(header_line, "{:width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error encountered.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with three significant-looking decimals, trimming noise.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["longer-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("longer-name"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column_count(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.31), "42.3");
        assert_eq!(fmt_f64(1.23456), "1.235");
    }

    #[test]
    fn csv_write_round_trip() {
        let dir = std::env::temp_dir().join("acd_bench_table_test");
        let path = dir.join("t.csv");
        let mut t = Table::new("demo", &["a"]);
        t.add_row(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
