//! # acd-bench — experiment harness reproducing the paper's evaluation
//!
//! Each experiment in [`experiments`] regenerates one figure, worked example
//! or analytic claim of the paper (see `DESIGN.md` for the experiment
//! index). Experiments produce [`Table`]s that are printed to stdout by the
//! `experiments` binary and optionally written as CSV files for
//! `EXPERIMENTS.md`.
//!
//! Wall-clock measurements for the timing-sensitive experiments also exist as
//! Criterion benches under `benches/`; the harness versions report the same
//! quantities in coarse form so that a single `cargo run -p acd-bench --bin
//! experiments --release` regenerates every table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod experiments;
pub mod table;

pub use table::Table;

/// Workload sizes used by the harness; `quick` keeps the full sweep structure
/// while shrinking the populations so the whole suite finishes in seconds
/// (used by integration tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Number of subscriptions for index-population experiments.
    pub subscriptions: usize,
    /// Number of query subscriptions per measurement point.
    pub queries: usize,
    /// Number of brokers in the overlay experiment.
    pub brokers: usize,
    /// Number of events published in the overlay experiment.
    pub events: usize,
}

impl RunScale {
    /// The full scale used to produce `EXPERIMENTS.md`.
    pub fn full() -> Self {
        RunScale {
            subscriptions: 20_000,
            queries: 400,
            brokers: 31,
            events: 500,
        }
    }

    /// A reduced scale for smoke tests.
    pub fn quick() -> Self {
        RunScale {
            subscriptions: 1_500,
            queries: 60,
            brokers: 15,
            events: 50,
        }
    }
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale::full()
    }
}
